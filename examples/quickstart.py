#!/usr/bin/env python3
"""Quickstart: emulate Figure 1's topology and measure what applications see.

Builds the paper's running example — a client and two server replicas
behind two switches — from the listing-style description language, starts
the decentralized emulation over two simulated machines, and verifies the
collapsed end-to-end properties with ping (latency) and iperf (bandwidth).

Run:  python examples/quickstart.py
"""

from repro.apps import Pinger, run_iperf_pair
from repro.core import EmulationEngine, EngineConfig
from repro.topology import parse_experiment_text

DESCRIPTION = """
experiment:
  services:
    name: c1
    image: "iperf"
    name: sv
    image: "nginx"
    replicas: 2
  bridges:
    name: s1
    name: s2
  links:
    orig: c1
    dest: s1
    latency: 10
    up: 10Mbps
    down: 10Mbps
    orig: s1
    dest: s2
    latency: 20
    up: 100Mbps
    down: 100Mbps
    orig: sv
    dest: s2
    latency: 5
    up: 50Mbps
    down: 50Mbps
"""


def main() -> None:
    topology, schedule = parse_experiment_text(DESCRIPTION)
    engine = EmulationEngine(topology, schedule,
                             config=EngineConfig(machines=2, seed=42))

    print("Collapsed end-to-end paths (Figure 1, right):")
    for path in sorted(engine.current_state.collapsed.paths(),
                       key=lambda p: (p.source, p.destination)):
        print(f"  {path.source:>5} -> {path.destination:<5} "
              f"{path.bandwidth / 1e6:6.1f} Mb/s  "
              f"{path.latency * 1e3:5.1f} ms")

    # Latency check: c1 -> sv.0 should round-trip in 2 x 35 ms.
    pinger = Pinger(engine.sim, engine.dataplane, "c1", "sv.0",
                    count=100, interval=0.02).start()
    engine.run(until=5.0)
    print(f"\nping c1 -> sv.0: mean RTT {pinger.stats.mean_rtt * 1e3:.2f} ms "
          f"(expected ~70 ms)")

    # Bandwidth check: the 10 Mb/s access link caps the path.
    result = run_iperf_pair(engine, "c1", "sv.0", duration=15.0)
    print(f"iperf c1 -> sv.0: {result.mean_goodput / 1e6:.2f} Mb/s goodput "
          f"(path capacity 10 Mb/s)")

    # Server replicas talk at 50 Mb/s through their shared switch.
    result = run_iperf_pair(engine, "sv.0", "sv.1", duration=15.0)
    print(f"iperf sv.0 -> sv.1: {result.mean_goodput / 1e6:.2f} Mb/s goodput "
          f"(path capacity 50 Mb/s)")


if __name__ == "__main__":
    main()
