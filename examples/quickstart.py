#!/usr/bin/env python3
"""Quickstart: the unified Scenario API on Figure 1's topology.

One fluent chain declares the paper's running example — a client and two
server replicas behind two switches — wires the workloads that probe it,
and deploys it on two simulated machines::

    from repro.scenario import Scenario, iperf, ping

    run = (Scenario.build("figure1")
           .service("c1", image="iperf")
           .service("sv", image="nginx", replicas=2)
           .bridges("s1", "s2")
           .link("c1", "s1", latency="10ms", up="10Mbps")
           .link("s1", "s2", latency="20ms", up="100Mbps")
           .link("sv", "s2", latency="5ms", up="50Mbps")
           .workload(ping("c1", "sv.0"), iperf("c1", "sv.0", duration=15))
           .deploy(machines=2, seed=42)
           .compile()
           .run())

``compile()`` validates the whole description at once (undeclared link
endpoints, duplicate names, malformed units) and freezes it; ``run()``
returns the collected application measurements — ping RTTs matching the
collapsed 35 ms one-way path and iperf goodput matching the 10 Mb/s
bottleneck.  The same compiled scenario also yields ``describe()`` (the
paper's listing-style text form) and ``plan()`` (the §4 deployment
document).

Run:  python examples/quickstart.py
"""

from repro.scenario import Scenario, iperf, ping

SCENARIO = (Scenario.build("figure1")
            .service("c1", image="iperf")
            .service("sv", image="nginx", replicas=2)
            .bridges("s1", "s2")
            .link("c1", "s1", latency="10ms", up="10Mbps")
            .link("s1", "s2", latency="20ms", up="100Mbps")
            .link("sv", "s2", latency="5ms", up="50Mbps")
            .workload(ping("c1", "sv.0", count=100, interval=0.02))
            .workload(iperf("c1", "sv.0", duration=15, start=5))
            .workload(iperf("sv.0", "sv.1", duration=15, start=20))
            .deploy(machines=2, seed=42, duration=36.0))


def main() -> None:
    compiled = SCENARIO.compile()

    print("Collapsed end-to-end paths (Figure 1, right):")
    for line in compiled.path_table().splitlines():
        print(f"  {line}")

    run = compiled.run()

    # Latency check: c1 -> sv.0 should round-trip in 2 x 35 ms.
    stats = run["ping:c1->sv.0"]
    print(f"\nping c1 -> sv.0: mean RTT {stats.mean_rtt * 1e3:.2f} ms "
          f"(expected ~70 ms)")

    # Bandwidth check: the 10 Mb/s access link caps the path.
    result = run["iperf:c1->sv.0"]
    print(f"iperf c1 -> sv.0: {result.mean_goodput / 1e6:.2f} Mb/s goodput "
          f"(path capacity 10 Mb/s)")

    # Server replicas talk at 50 Mb/s through their shared switch.
    result = run["iperf:sv.0->sv.1"]
    print(f"iperf sv.0 -> sv.1: {result.mean_goodput / 1e6:.2f} Mb/s goodput "
          f"(path capacity 50 Mb/s)")

    # The scenario round-trips to the paper's text description language.
    reparsed = Scenario.from_text(compiled.describe()).compile()
    assert reparsed.path_table() == compiled.path_table()
    print("\ndescribe() round-trips through the text DSL: identical paths")


if __name__ == "__main__":
    main()
