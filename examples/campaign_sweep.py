#!/usr/bin/env python3
"""Campaign sweep: one scenario factory, a 24-point grid, two backends.

The evaluation of the paper is a grid — parameters × seeds × systems —
and :mod:`repro.campaign` runs such grids as parallel, resumable sweeps.
This example shapes a point-to-point bottleneck at four provisioned
rates, three seeds per rate, on both the Kollaps engine and the
bare-metal baseline: 4 × 3 × 2 = 24 points.

Run it through the CLI (the store makes interrupts resumable)::

    python -m repro.cli campaign run examples/campaign_sweep.py --jobs 4
    python -m repro.cli campaign status examples/campaign_sweep.py
    python -m repro.cli campaign report examples/campaign_sweep.py \
        --baseline baremetal

or drive it from Python::

    from examples.campaign_sweep import CAMPAIGN
    result = CAMPAIGN.run(jobs=4, store="campaigns")
    print(result.aggregate().to_markdown())

Killing the sweep mid-run loses at most the points in flight; the next
``campaign run`` picks up exactly where it stopped.
"""

from repro.campaign import Campaign
from repro.scenario import Scenario, flow

RATES = [1e6, 5e6, 25e6, 100e6]       # provisioned bottleneck rates (bits/s)
DURATION = 5.0


def shaped_pair(*, rate: float, seed: int = 0) -> Scenario:
    """A client/server pair behind one shaped switch, probed by one flow."""
    return (Scenario.build("campaign-sweep")
            .service("client", image="iperf")
            .service("server", image="iperf")
            .bridge("s0")
            .link("client", "s0", latency="1ms", up=rate)
            .link("s0", "server", latency="1ms", up=rate)
            .workload(flow("client", "server", key="bulk"))
            .deploy(machines=2, seed=seed, duration=DURATION))


CAMPAIGN = (Campaign("example-sweep")
            .scenario(shaped_pair)
            .grid(rate=RATES)
            .seeds(3)
            .backends("kollaps", "baremetal"))

# The examples smoke-check compiles every module's SCENARIO; a campaign's
# scenario is just one grid point.
SCENARIO = shaped_pair(rate=RATES[0])


def main() -> None:
    result = CAMPAIGN.run(jobs=2)
    print(result.describe())
    print(result.aggregate().to_markdown())


if __name__ == "__main__":
    main()
