#!/usr/bin/env python3
"""The what-if use-case (§5.6, Figure 11): move a datacenter, re-measure.

The paper's closing demonstration: a geo-replicated Cassandra deployment
(4 replicas in Frankfurt + 4 in Sydney, W=QUORUM / R=ONE, 50/50 mix) is
re-evaluated under the hypothetical "what if the remote replicas moved to
Seoul?" — in Kollaps a one-argument change to the scenario builder instead
of a costly real redeployment.  Update latency halves with the RTT; reads,
already local, barely move.

Run:  python examples/whatif_cassandra.py
"""

from repro.apps import CassandraCluster, YcsbClient
from repro.scenario import Scenario
from repro.scenario.topologies import aws_mesh
from repro.sim import RngRegistry

DURATION = 20.0


def build_scenario(remote_region: str) -> Scenario:
    return (aws_mesh(["frankfurt", remote_region], services_per_region=8,
                     service_prefix="cas")
            .deploy(machines=4, seed=2024, enforce_bandwidth_sharing=False,
                    duration=DURATION))


SCENARIO = build_scenario("sydney")


def benchmark_deployment(remote_region: str) -> dict:
    """Deploy Frankfurt + ``remote_region`` and run the YCSB mix."""
    engine = build_scenario(remote_region).compile().engine()
    replicas = [f"cas-{region}-{index}" for index in range(4)
                for region in ("frankfurt", remote_region)]
    cluster = CassandraCluster(engine.sim, engine.dataplane, replicas,
                               replication_factor=2, write_consistency=2,
                               read_consistency=1, service_time=2e-3)
    rng = RngRegistry(2024)
    clients = [YcsbClient(engine.sim, engine.dataplane,
                          f"cas-frankfurt-{4 + index}", cluster,
                          f"cas-frankfurt-{index}", threads=4,
                          read_fraction=0.5,
                          rng=rng.stream(f"ycsb:{remote_region}:{index}"))
               for index in range(4)]
    engine.run(until=DURATION)
    reads = [l for c in clients for l in c.stats.read_latencies]
    updates = [l for c in clients for l in c.stats.update_latencies]
    return {
        "ops": sum(c.stats.throughput(DURATION) for c in clients),
        "read_ms": 1e3 * sum(reads) / len(reads),
        "update_ms": 1e3 * sum(updates) / len(updates),
    }


def main() -> None:
    print("geo-replicated Cassandra, Frankfurt clients, W=QUORUM R=ONE\n")
    original = benchmark_deployment("sydney")
    whatif = benchmark_deployment("seoul")

    print(f"{'':>12}  {'ops/s':>8}  {'read ms':>8}  {'update ms':>10}")
    print(f"{'Sydney':>12}  {original['ops']:8.0f}  "
          f"{original['read_ms']:8.1f}  {original['update_ms']:10.1f}")
    print(f"{'Seoul':>12}  {whatif['ops']:8.0f}  "
          f"{whatif['read_ms']:8.1f}  {whatif['update_ms']:10.1f}")

    ratio = whatif["update_ms"] / original["update_ms"]
    print(f"\nupdate latency ratio (Seoul/Sydney): {ratio:.2f}"
          " — the halved RTT shows up directly in the quorum writes")
    assert 0.35 < ratio < 0.7, "what-if shape did not hold"


if __name__ == "__main__":
    main()
