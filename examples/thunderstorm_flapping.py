#!/usr/bin/env python3
"""Link flapping scripted with the THUNDERSTORM-style scenario DSL.

The paper motivates dynamic topologies with exactly this case: "the rapid
removal and insertion back into the topology of a link emulates a flapping
link" (§3).  This example parses the listing-style description into a
Scenario builder, attaches a THUNDERSTORM script (a flapping backbone plus
a scripted partition/heal of one replica) with ``.script()``, and runs a
long-lived bulk flow across it — the throughput collapses to zero during
each outage and recovers afterwards.

Run:  python examples/thunderstorm_flapping.py
"""

from repro.scenario import Scenario, flow
from repro.units import format_rate

DESCRIPTION = """
experiment:
  services:
    name: client
    image: "iperf"
    name: server
    image: "iperf"
    name: replica
    image: "nginx"
  bridges:
    name: s1
    name: s2
  links:
    orig: client
    dest: s1
    latency: 2
    up: 100Mbps
    down: 100Mbps
    orig: s1
    dest: s2
    latency: 10
    up: 50Mbps
    down: 50Mbps
    orig: s2
    dest: server
    latency: 2
    up: 100Mbps
    down: 100Mbps
    orig: s2
    dest: replica
    latency: 2
    up: 100Mbps
    down: 100Mbps
"""

# The backbone flaps every 20 s (down for 4 s each time); later the
# replica is partitioned away and healed.
SCRIPT = """
from 20 to 60 every 20 flap link s1--s2 for 4
at 70 partition replica | s2,client,server,s1
at 80 heal
"""

SCENARIO = (Scenario.from_text(DESCRIPTION)
            .script(SCRIPT)
            .workload(flow("client", "server", key="bulk"))
            .deploy(machines=2, seed=7, duration=90.0))


def main() -> None:
    run = SCENARIO.compile().run()
    engine = run.engine

    print("client -> server throughput, 5 s windows:")
    for start in range(0, 90, 5):
        mean = engine.fluid.mean_throughput("bulk", start, start + 5)
        bar = "#" * int(mean / 1e6)
        flap = " <- backbone down" if any(
            start <= t < start + 5 for t in (20.0, 40.0, 60.0)) else ""
        print(f"  {start:3d}-{start + 5:<3d}s {format_rate(mean):>10} "
              f"{bar}{flap}")

    # During the partition the replica is unreachable; afterwards it is
    # back with its original link properties.
    state = engine.current_state
    assert state.collapsed.path("client", "replica") is not None
    print("\nreplica reachable again after heal: "
          f"{state.collapsed.path('client', 'replica').latency * 1e3:.0f} ms"
          " end-to-end")


if __name__ == "__main__":
    main()
