#!/usr/bin/env python3
"""Dynamic topologies: a flapping WAN link under a live transfer.

A client streams bulk data to a server across a WAN link that degrades,
flaps (drops out and comes back, §3's flapping-link scenario) and recovers
— all driven by the declarative dynamic-event schedule, pre-computed
offline exactly like the real Emulation Manager does.  The throughput
timeline printed at the end shows the application-visible effect of every
event, and the textual dashboard snapshots the experiment mid-flap.

Run:  python examples/dynamic_topology.py
"""

from repro.core import EmulationEngine, EngineConfig
from repro.dashboard import Dashboard
from repro.topology import (
    DynamicEvent,
    EventAction,
    EventSchedule,
    LinkProperties,
)
from repro.topogen import point_to_point_topology


def main() -> None:
    topology = point_to_point_topology(50e6, latency=0.020)
    wan = topology.get_link("client", "s0").properties

    schedule = EventSchedule([
        # t=10s: background congestion halves the available bandwidth.
        DynamicEvent(time=10.0, action=EventAction.SET_LINK,
                     origin="client", destination="s0",
                     changes={"bandwidth": 25e6}),
        # t=20s: the link flaps — gone for 2 seconds, then restored.
        DynamicEvent(time=20.0, action=EventAction.LEAVE_LINK,
                     origin="client", destination="s0"),
        DynamicEvent(time=22.0, action=EventAction.JOIN_LINK,
                     origin="client", destination="s0", properties=wan),
        # t=30s: latency spikes (a route change), bandwidth recovers.
        DynamicEvent(time=30.0, action=EventAction.SET_LINK,
                     origin="client", destination="s0",
                     changes={"latency": 0.080}),
    ])

    engine = EmulationEngine(topology, schedule,
                             config=EngineConfig(machines=2, seed=7))
    dashboard = Dashboard(engine)
    engine.start_flow("transfer", "client", "server")

    dashboard.log("experiment started")
    engine.sim.at(21.0, lambda: dashboard.log(
        "link is down — dashboard snapshot:\n" + dashboard.render_flows()))
    engine.run(until=40.0)

    print("Throughput timeline (5-second windows):")
    for start in range(0, 40, 5):
        rate = engine.fluid.mean_throughput("transfer", start, start + 5)
        bar = "#" * int(rate / 1e6)
        print(f"  {start:2d}-{start + 5:2d}s  {rate / 1e6:6.2f} Mb/s  {bar}")

    print("\nEvent log:")
    for line in dashboard.events:
        print(" ", line.splitlines()[0])

    print("\nExpected shape: 50 -> 25 -> 0 (flap) -> 50 Mb/s, with the "
          "t=30s latency spike leaving bandwidth intact.")


if __name__ == "__main__":
    main()
