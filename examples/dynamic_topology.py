#!/usr/bin/env python3
"""Dynamic topologies: a flapping WAN link under a live transfer.

A client streams bulk data to a server across a WAN link that degrades,
flaps (drops out and comes back, §3's flapping-link scenario) and recovers
— all declared inline on the Scenario builder with ``.at()`` event hooks,
then pre-computed offline exactly like the real Emulation Manager does.
The throughput timeline printed at the end shows the application-visible
effect of every event, and the textual dashboard snapshots the experiment
mid-flap.

Run:  python examples/dynamic_topology.py
"""

from repro.scenario import flow, link_down, link_up, set_link
from repro.scenario.topologies import point_to_point

SCENARIO = (
    point_to_point(50e6, latency=0.020)
    # t=10s: background congestion halves the available bandwidth.
    .at(10, set_link("client", "s0", bandwidth=25e6))
    # t=20s: the link flaps — gone for 2 seconds, then restored with its
    # original half-path properties (10 ms, 50 Mb/s).
    .at(20, link_down("client", "s0"))
    .at(22, link_up("client", "s0", latency="10ms", bandwidth=50e6))
    # t=30s: latency spikes (a route change), bandwidth stays intact.
    .at(30, set_link("client", "s0", latency="80ms"))
    .workload(flow("client", "server", key="transfer"))
    .deploy(machines=2, seed=7, duration=40.0))


def main() -> None:
    from repro.dashboard import Dashboard

    compiled = SCENARIO.compile()
    engine = compiled.start()   # workloads installed, run still deferred
    dashboard = Dashboard(engine)

    dashboard.log("experiment started")
    engine.sim.at(21.0, lambda: dashboard.log(
        "link is down — dashboard snapshot:\n" + dashboard.render_flows()))
    engine.run(until=40.0)

    print("Throughput timeline (5-second windows):")
    for start in range(0, 40, 5):
        rate = engine.fluid.mean_throughput("transfer", start, start + 5)
        bar = "#" * int(rate / 1e6)
        print(f"  {start:2d}-{start + 5:2d}s  {rate / 1e6:6.2f} Mb/s  {bar}")

    print("\nEvent log:")
    for line in dashboard.events:
        print(" ", line.splitlines()[0])

    print("\nExpected shape: 50 -> 25 -> 0 (flap) -> 50 Mb/s, with the "
          "t=30s latency spike leaving bandwidth intact.")


if __name__ == "__main__":
    main()
