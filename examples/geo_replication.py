#!/usr/bin/env python3
"""What-if analysis for a geo-replicated Cassandra deployment (§5.6).

Benchmarks a Cassandra-like cluster (4 replicas in Frankfurt + 4 in
Sydney, RF=2, W=QUORUM / R=ONE, 50/50 YCSB mix) under the measured
EC2 inter-region latencies, then answers Figure 11's question — what if
the Sydney replicas moved to Seoul, halving the inter-region latency? —
by changing one argument of the scenario builder instead of redeploying
a cluster.

Run:  python examples/geo_replication.py
"""

from repro.apps import CassandraCluster, YcsbClient
from repro.scenario import Scenario
from repro.scenario.topologies import aws_mesh
from repro.sim import RngRegistry


def build_scenario(remote_region: str, rtt_scale: float = 1.0) -> Scenario:
    """One deployment configuration as a Scenario builder."""
    return (aws_mesh(["frankfurt", remote_region], services_per_region=5,
                     service_prefix="cas", rtt_scale=rtt_scale)
            .deploy(machines=4, seed=11, enforce_bandwidth_sharing=False))


SCENARIO = build_scenario("sydney")


def run_deployment(remote_region: str, rtt_scale: float = 1.0):
    """Deploy, load and measure one cluster configuration."""
    engine = build_scenario(remote_region, rtt_scale).compile().engine()
    replicas = [f"cas-{region}-{index}" for index in range(4)
                for region in ("frankfurt", remote_region)]
    cluster = CassandraCluster(engine.sim, engine.dataplane, replicas,
                               replication_factor=2, write_consistency=2,
                               read_consistency=1)
    client = YcsbClient(engine.sim, engine.dataplane, "cas-frankfurt-4",
                        cluster, "cas-frankfurt-0", threads=8,
                        read_fraction=0.5,
                        rng=RngRegistry(11).stream("ycsb"))
    engine.run(until=30.0)
    stats = client.stats

    def mean(values):
        return sum(values) / len(values) if values else float("nan")

    return {
        "throughput": stats.throughput(30.0),
        "read_ms": mean(stats.read_latencies) * 1e3,
        "update_ms": mean(stats.update_latencies) * 1e3,
    }


def main() -> None:
    print("Baseline: Frankfurt + Sydney (290 ms RTT)")
    baseline = run_deployment("sydney")
    print(f"  throughput {baseline['throughput']:7.1f} ops/s   "
          f"read {baseline['read_ms']:6.1f} ms   "
          f"update {baseline['update_ms']:6.1f} ms")

    print("What-if: move the remote replicas to Seoul (145 ms RTT)")
    whatif = run_deployment("seoul")
    print(f"  throughput {whatif['throughput']:7.1f} ops/s   "
          f"read {whatif['read_ms']:6.1f} ms   "
          f"update {whatif['update_ms']:6.1f} ms")

    speedup = whatif["throughput"] / baseline["throughput"]
    print(f"\nHalving the inter-region latency cut update latency from "
          f"{baseline['update_ms']:.0f} ms to {whatif['update_ms']:.0f} ms "
          f"and raised throughput {speedup:.2f}x — Figure 11's conclusion, "
          f"from a one-line scenario change.")


if __name__ == "__main__":
    main()
