#!/usr/bin/env python3
"""Decentralized bandwidth throttling — a live rerun of Figure 8 (§5.4).

Six clients behind two bridges, six servers behind a third.  Clients start
one stage apart (time scaled 6x versus the paper) and then leave in reverse
order; after every arrival the decentralized Emulation Managers — with no
coordination beyond their periodic usage broadcasts — re-converge to the
RTT-aware min-max shares the paper derives analytically.  The whole
experiment is one Scenario chain: the §5.4 topology from
``repro.scenario.topologies`` plus six staggered flow workloads.

Run:  python examples/decentralized_throttling.py
"""

from repro.scenario import flow
from repro.scenario.topologies import throttling

STAGE = 10.0
EXPECTED = {
    1: (50.0,),
    2: (23.08, 26.92),
    3: (18.46, 21.54, 10.0),
    4: (18.46, 21.54, 10.0, 50.0),
    5: (16.93, 19.75, 10.0, 23.70, 29.62),
    6: (15.05, 17.55, 10.0, 21.07, 26.33, 10.0),
}

SCENARIO = (throttling()
            .workload(*[flow(f"c{index}", f"s{index}", key=f"c{index}",
                             start=(index - 1) * STAGE)
                        for index in range(1, 7)])
            .deploy(machines=4, seed=91, duration=6 * STAGE))


def main() -> None:
    run = SCENARIO.compile().run()
    engine = run.engine

    print("stage  client  measured  model (== paper's analytic shares)")
    for stage in range(1, 7):
        window = ((stage - 1) * STAGE + 0.4 * STAGE, stage * STAGE)
        for index in range(1, stage + 1):
            measured = engine.fluid.mean_throughput(f"c{index}",
                                                    *window) / 1e6
            expected = EXPECTED[stage][index - 1]
            marker = "ok" if abs(measured - expected) / expected < 0.15 \
                else "DRIFT"
            print(f"  {stage}      c{index}     {measured:6.2f}    "
                  f"{expected:6.2f}   {marker}")

    stats = engine.metadata_stats()
    total = sum(s.wire_bytes_sent() for s in stats.values())
    print(f"\nMetadata exchanged across {len(stats)} machines over "
          f"{engine.sim.now:.0f}s: {total / 1e3:.1f} KB "
          f"({total / engine.sim.now:.0f} B/s) — the entire coordination "
          "cost of the decentralized emulation.")


if __name__ == "__main__":
    main()
