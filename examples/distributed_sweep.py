#!/usr/bin/env python3
"""Distributed campaign sweep: a coordinator/worker fleet over one grid.

PR 3's campaigns parallelised a sweep across processes; the distributed
layer (:mod:`repro.campaign.distributed`) spreads one across *hosts*.  A
coordinator owns the grid and the canonical result store, hands workers
*leases* (point batches with a heartbeat deadline), merges each worker's
shard file (``campaigns/<name>/shards/<worker>.jsonl``) into
``results.jsonl`` last-wins, and reassigns any lease whose worker stops
heartbeating — so the sweep survives a host loss, and distributed,
parallel and serial runs aggregate byte-identically.

Simulate the whole fleet on this machine (the workers are real threads
speaking the real shared-file control plane)::

    python -m repro.cli campaign fleet examples/distributed_sweep.py \
        --workers 4

or run it across actual hosts sharing the campaigns directory::

    python -m repro.cli campaign serve examples/distributed_sweep.py   # A
    python -m repro.cli campaign work  examples/distributed_sweep.py   # B,C

or emit the compose/k8s deployment for a container fleet::

    python -m repro.cli campaign fleet examples/distributed_sweep.py \
        --workers 4 --plan kubernetes

Afterwards, ``repro campaign compact examples/distributed_sweep.py``
drops superseded records and the merged shard files.
"""

from repro.campaign import Campaign
from repro.scenario import Scenario, flow, ping

RATES = [2e6, 10e6, 50e6]
DURATION = 5.0


def probed_pair(*, rate: float, seed: int = 0) -> Scenario:
    """A shaped pair measured by one bulk flow plus an RTT probe."""
    return (Scenario.build("distributed-sweep")
            .service("client", image="iperf")
            .service("server", image="iperf")
            .bridge("s0")
            .link("client", "s0", latency="2ms", up=rate)
            .link("s0", "server", latency="2ms", up=rate)
            .workload(flow("client", "server", key="bulk"),
                      ping("client", "server", count=20, interval=0.1,
                           key="rtt"))
            .deploy(machines=2, seed=seed, duration=DURATION))


CAMPAIGN = (Campaign("distributed-sweep")
            .scenario(probed_pair)
            .grid(rate=RATES)
            .seeds(4)
            .backends("kollaps"))           # 3 × 4 = 12 points

# The examples smoke-check compiles every module's SCENARIO; a campaign's
# scenario is just one grid point.
SCENARIO = probed_pair(rate=RATES[0])


def main() -> None:
    from repro.campaign.distributed import run_fleet
    from repro.dashboard import FleetMonitor
    import sys

    monitor = FleetMonitor(total=len(CAMPAIGN.points()), stream=sys.stderr)
    result = run_fleet(CAMPAIGN, workers=3, store="campaigns",
                       lease_size=2, progress=monitor)
    print(monitor.render(), file=sys.stderr)
    print(result.describe())
    print(result.aggregate().to_markdown())


if __name__ == "__main__":
    main()
