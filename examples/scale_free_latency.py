#!/usr/bin/env python3
"""Large scale-free topologies: collapsed RTT vs theoretical RTT (§5.5).

Generates a preferential-attachment (Barabási–Albert) scenario — the
paper's stand-in for Internet-like networks — collapses it, and compares
ping round-trip times measured through the emulation against the
theoretical shortest-path values, exactly as Table 4 does.  Also prints
the collapse cost, the paper's reason for pre-computing dynamic graphs
offline.

Run:  python examples/scale_free_latency.py
"""

import time

from repro.apps import Pinger
from repro.scenario.topologies import scale_free
from repro.sim import RngRegistry

SIZE = 400
PROBES = 12

SCENARIO = scale_free(SIZE, seed=9).deploy(
    machines=4, seed=9, enforce_bandwidth_sharing=False)


def main() -> None:
    compiled = SCENARIO.compile()
    topology = compiled.topology
    services = len(topology.services)
    print(f"scale-free topology: {SIZE} elements "
          f"({services} end nodes, {len(topology.bridges)} switches)")

    started = time.perf_counter()
    collapsed = compiled.collapsed()
    elapsed = time.perf_counter() - started
    print(f"collapse: {len(collapsed.paths())} end-to-end paths "
          f"in {elapsed * 1e3:.0f} ms "
          "(why dynamic graphs are pre-computed offline, §3)\n")

    engine = compiled.engine()
    rng = RngRegistry(9).stream("probes")
    containers = topology.container_names()
    pairs = []
    while len(pairs) < PROBES:
        a, b = rng.sample(containers, 2)
        if collapsed.path(a, b) and collapsed.path(b, a):
            pairs.append((a, b))

    pingers = {pair: Pinger(engine.sim, engine.dataplane, *pair,
                            count=25, interval=0.05).start()
               for pair in pairs}
    engine.run(until=25 * 0.05 + 2.0)

    print(f"{'pair':>24}  {'theory ms':>10}  {'measured ms':>11}  "
          f"{'error us':>9}")
    worst = 0.0
    for (a, b), pinger in pingers.items():
        theory = collapsed.rtt(a, b)
        measured = pinger.stats.mean_rtt
        error_us = abs(measured - theory) * 1e6
        worst = max(worst, error_us)
        print(f"{a + '->' + b:>24}  {theory * 1e3:10.2f}  "
              f"{measured * 1e3:11.2f}  {error_us:9.1f}")
    print(f"\nworst deviation: {worst:.1f} us "
          "(paper: sub-millisecond at all sizes, Table 4)")


if __name__ == "__main__":
    main()
