#!/usr/bin/env python3
"""Cross-system comparison: one compiled scenario, every §5 backend.

The paper's evaluation never changes the workload, only the system under
it — Kollaps vs. bare metal vs. Mininet vs. Maxinet vs. Trickle.  With
pluggable execution backends that is one fan-out over a single compiled
object::

    runs = {name: compiled.run(backend=name)
            for name in ("baremetal", "kollaps", "mininet")}
    runs["baremetal"].compare(runs["kollaps"]).deviation("cubic")

Backends declare capabilities, so incompatibilities surface before
anything runs: this scenario's 1 Gb/s links just fit Mininet's shaping
ceiling, while Trickle (no packet plane) refuses the ping probe with one
aggregated error naming every problem.

Run:  python examples/cross_system_comparison.py
"""

from repro.scenario import BackendCompatibilityError, iperf, ping
from repro.scenario.topologies import star

SYSTEMS = ("baremetal", "kollaps", "mininet", "maxinet")

SCENARIO = (star(["server", "client1", "client2"],
                 bandwidth=1e9, latency=0.0005)
            .workload(iperf("client1", "server", duration=10, warmup=3.0,
                            key="cubic"))
            .workload(ping("client2", "server", count=50, interval=0.05))
            .deploy(machines=3, seed=61, duration=10.0))


def main() -> None:
    compiled = SCENARIO.compile()

    runs = {name: compiled.run(backend=name) for name in SYSTEMS}
    baseline = runs["baremetal"]

    print("Figure-5-style fan-out (identical compiled scenario):")
    for name, run in runs.items():
        goodput = run["cubic"].mean_goodput / 1e6
        rtt = run.metric("ping:client2->server").value * 1e3
        print(f"  {name:<10} iperf {goodput:7.1f} Mb/s   "
              f"ping {rtt:6.3f} ms")

    print("\nDeviation from bare metal (ScenarioRun.compare):")
    for name in SYSTEMS[1:]:
        comparison = baseline.compare(runs[name])
        print(f"  {name:<10} iperf {comparison.deviation('cubic'):7.2%}   "
              f"ping {comparison.deviation('ping:client2->server'):7.2%}")

    # Capability validation: Trickle has no packet plane, so the ping
    # workload is rejected before anything runs — one aggregated error.
    try:
        compiled.run(backend="trickle")
    except BackendCompatibilityError as error:
        print(f"\ntrickle refused, as expected:\n  {error}")


if __name__ == "__main__":
    main()
