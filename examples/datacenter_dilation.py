#!/usr/bin/env python3
"""Emulating beyond the physical cluster: fat-tree + time dilation (§6/§7).

The paper's limitation: "it is impossible to emulate a link of 10 Gb/s if
Kollaps is running on a cluster with 1 Gb/s connections"; its proposed fix
is time dilation — run virtual time N times slower so a dilated link only
needs 1/N of the physical capacity.  This example builds a k=4 fat-tree
with 10 Gb/s links on a simulated cluster whose interconnect is only
40 Gb/s shared, shows the feasibility check rejecting an undilated 100 Gb/s
variant, then runs it dilated.  UDP background blast and a TCP bulk flow
share a core link; the dashboard's sparkline shows the TCP flow yielding.

Run:  python examples/datacenter_dilation.py
"""

from repro.core import EmulationEngine, EngineConfig
from repro.dashboard import render_flow_history
from repro.topogen import fat_tree_topology


def main() -> None:
    # 1. An undilated 100 Gb/s fat-tree exceeds the 40 GbE interconnect.
    try:
        EmulationEngine(fat_tree_topology(4, bandwidth=100e9),
                        config=EngineConfig(machines=4))
    except ValueError as error:
        print(f"rejected as expected:\n  {error}\n")

    # 2. Dilated 4x, the same topology is admissible (virtual time runs
    #    four times slower than the cluster, so 100 Gb/s virtual needs
    #    only 25 Gb/s physical).
    engine = EmulationEngine(
        fat_tree_topology(4, bandwidth=100e9),
        config=EngineConfig(machines=4, seed=11, time_dilation=4.0))
    print("dilated 4x: 100 Gb/s fat-tree admitted on a 40 GbE cluster")

    # A TCP bulk flow crosses pods; at t=5 a UDP blast floods half the
    # destination's capacity and the TCP flow gives way.
    engine.start_flow("bulk", "h0", "h15")
    engine.start_flow("blast", "h1", "h15", protocol="udp", demand=50e9,
                      start_time=5.0)
    engine.sim.at(10.0, lambda: engine.stop_flow("blast"))
    engine.run(until=15.0)

    print()
    print(render_flow_history(engine.fluid, "bulk"))
    before = engine.fluid.mean_throughput("bulk", 2.0, 5.0)
    during = engine.fluid.mean_throughput("bulk", 6.0, 10.0)
    after = engine.fluid.mean_throughput("bulk", 12.0, 15.0)
    print(f"\nbulk TCP throughput: {before / 1e9:5.1f} Gb/s before, "
          f"{during / 1e9:5.1f} Gb/s under UDP blast, "
          f"{after / 1e9:5.1f} Gb/s after")
    assert before > during, "the blast must cost the TCP flow bandwidth"
    assert after > during, "and the flow must recover afterwards"


if __name__ == "__main__":
    main()
