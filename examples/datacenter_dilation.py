#!/usr/bin/env python3
"""Emulating beyond the physical cluster: fat-tree + time dilation (§6/§7).

The paper's limitation: "it is impossible to emulate a link of 10 Gb/s if
Kollaps is running on a cluster with 1 Gb/s connections"; its proposed fix
is time dilation — run virtual time N times slower so a dilated link only
needs 1/N of the physical capacity.  This example builds a k=4 fat-tree
with 100 Gb/s links through the Scenario API, shows the feasibility check
rejecting the undilated deployment, then runs it dilated 4x.  A UDP
background blast and a TCP bulk flow share a core link; the sparkline
shows the TCP flow yielding.

Run:  python examples/datacenter_dilation.py
"""

from repro.scenario import flow, udp_blast
from repro.scenario.topologies import fat_tree

SCENARIO = (fat_tree(4, bandwidth=100e9)
            .workload(flow("h0", "h15", key="bulk"))
            .workload(udp_blast("h1", "h15", rate=50e9, start=5.0, stop=10.0,
                                key="blast"))
            .deploy(machines=4, seed=11, time_dilation=4.0, duration=15.0))


def main() -> None:
    from repro.dashboard import render_flow_history

    # 1. An undilated 100 Gb/s fat-tree exceeds the 40 GbE interconnect.
    try:
        fat_tree(4, bandwidth=100e9).deploy(machines=4).compile().engine()
    except ValueError as error:
        print(f"rejected as expected:\n  {error}\n")

    # 2. Dilated 4x, the same topology is admissible (virtual time runs
    #    four times slower than the cluster, so 100 Gb/s virtual needs
    #    only 25 Gb/s physical).
    run = SCENARIO.compile().run()
    engine = run.engine
    print("dilated 4x: 100 Gb/s fat-tree admitted on a 40 GbE cluster")

    print()
    print(render_flow_history(engine.fluid, "bulk"))
    before = engine.fluid.mean_throughput("bulk", 2.0, 5.0)
    during = engine.fluid.mean_throughput("bulk", 6.0, 10.0)
    after = engine.fluid.mean_throughput("bulk", 12.0, 15.0)
    print(f"\nbulk TCP throughput: {before / 1e9:5.1f} Gb/s before, "
          f"{during / 1e9:5.1f} Gb/s under UDP blast, "
          f"{after / 1e9:5.1f} Gb/s after")
    assert before > during, "the blast must cost the TCP flow bandwidth"
    assert after > during, "and the flow must recover afterwards"


if __name__ == "__main__":
    main()
