"""Figure 8 — decentralized bandwidth throttling with staggered clients.

Paper (§5.4): six clients start 60 s apart on the three-bridge topology,
then stop in reverse order.  The RTT-aware min-max model predicts every
stage's shares analytically (23.08/26.92, 18.45/21.55/10, ...,
15.04/17.55/10/21.06/26.33/10 Mb/s); the decentralized emulation tracks
those values within a few percent, re-converging at every arrival and
departure.  Time is scaled 6x (10 s per stage).
"""

from conftest import print_result, run_once
from repro.experiments import fig8


def test_fig8_decentralized_throttling(benchmark):
    result = run_once(benchmark, fig8.run)
    print_result(result)
    result.assert_all()
