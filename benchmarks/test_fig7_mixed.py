"""Figure 7 — mixed long- and short-lived flows across three hosts.

Paper: host 1 runs an HTTP server and an iPerf3 client, host 2 runs a wrk2
client against host 1, host 3 runs the iPerf3 server.  The long-lived flow
runs for the whole experiment; the wrk2 client is active only in the
middle third.  Kollaps and Mininet both stay within a few percent of bare
metal on each host's measured bandwidth, with a spike at the transitions.
"""

from conftest import print_result, run_once
from repro.experiments import fig7


def test_fig7_mixed_flows(benchmark):
    result = run_once(benchmark, fig7.run)
    print_result(result)
    result.assert_all()
