"""Ablations on the bandwidth-sharing design (§3 design choices).

Three knobs the paper's design fixes, evaluated on the §5.4 topology:

1. **RTT-aware vs plain max-min** — dropping the 1/RTT weights collapses
   the 23.08/26.92 split of Figure 8's two-flow stage to 25/25, i.e. the
   emulation would no longer mimic TCP Reno's RTT bias.
2. **Exact fixed point vs the literal two-step heuristic** — one
   redistribution pass is exact on most stages but misallocates when
   surplus must cascade across two bottlenecks (the five-flow stage).
3. **Congestion loss injection on/off** — §3 "Congestion": without netem
   loss injection the emulation cannot converge TCP flows down when the
   topology shrinks mid-flow, because htb back-pressure alone gives the
   congestion-control algorithm nothing to react to.
"""

from conftest import print_result, run_once
from repro.experiments import ablation_sharing


def test_ablation_sharing_design_choices(benchmark):
    result = run_once(benchmark, ablation_sharing.run)
    print_result(result)
    result.assert_all()
