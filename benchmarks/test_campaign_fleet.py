"""Distributed mini-sweep: a 2-worker fleet survives a worker kill.

The acceptance scenario for `repro.campaign.distributed`: a coordinator
and two real worker *processes* (the CLI, not threads) run a small
campaign over the shared-file control plane; one worker is SIGKILLed
after it lands its first shard record; the coordinator must reassign the
dead worker's lease and finish the sweep with an aggregate byte-identical
to a serial `Campaign.run(jobs=1)` of the same grid.  This is the CI
fleet job — everything here happens on one machine but through exactly
the multi-host code path (subprocesses, fsynced shards, heartbeats).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                   "src")

CAMPAIGN_MODULE = '''
from repro.campaign import Campaign
from repro.scenario import Scenario, flow


def pair(*, rate, seed=0):
    return (Scenario.build("pair")
            .service("a").service("b")
            .link("a", "b", latency="1ms", up=rate)
            .workload(flow("a", "b", key="bulk"))
            .deploy(seed=seed, duration=2.0))


CAMPAIGN = (Campaign("fleet-mini")
            .scenario(pair)
            .grid(rate=[1e6, 2e6, 4e6])
            .seeds(2)
            .backends("kollaps"))
'''


def _spawn(args, cwd):
    environment = dict(os.environ)
    existing = environment.get("PYTHONPATH")
    environment["PYTHONPATH"] = (SRC if not existing
                                 else SRC + os.pathsep + existing)
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "campaign", *args],
        cwd=cwd, env=environment,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)


def _wait_for_shard_record(path, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.exists(path) and os.path.getsize(path) > 0:
            return
        time.sleep(0.05)
    raise AssertionError(f"no shard record appeared at {path}")


def test_two_worker_fleet_survives_a_kill(tmp_path):
    source = tmp_path / "mini_campaign.py"
    source.write_text(CAMPAIGN_MODULE)
    store = tmp_path / "campaigns"

    # The reference: the same grid, serially, in this process.
    sys.path.insert(0, SRC)
    try:
        from repro.campaign import load_campaign
        serial = load_campaign(str(source)).run(jobs=1)
        reference = serial.aggregate().to_markdown()
    finally:
        sys.path.remove(SRC)

    serve = _spawn(["serve", str(source), "--store", str(store),
                    "--lease-size", "2", "--lease-timeout", "3",
                    "--poll", "0.1", "--timeout", "240", "--quiet"],
                   cwd=str(tmp_path))
    victim = _spawn(["work", str(source), "--store", str(store),
                     "--worker", "victim", "--poll", "0.1",
                     "--timeout", "240", "--quiet"], cwd=str(tmp_path))
    survivor = _spawn(["work", str(source), "--store", str(store),
                       "--worker", "survivor", "--poll", "0.1",
                       "--timeout", "240", "--quiet"], cwd=str(tmp_path))
    try:
        # Kill the victim the moment it has demonstrably done work (its
        # first durable shard record), i.e. mid-lease.
        shard = store / "fleet-mini" / "shards" / "victim.jsonl"
        _wait_for_shard_record(str(shard))
        os.kill(victim.pid, signal.SIGKILL)

        out, _ = serve.communicate(timeout=300)
        assert serve.returncode == 0, f"coordinator failed:\n{out}"
        assert "6 points" in out and "6 ok" in out, out
        # The aggregate table is the tail of the coordinator's stdout.
        assert reference in out, (
            f"fleet aggregate differs from serial:\n--- serial ---\n"
            f"{reference}\n--- fleet stdout ---\n{out}")
        survivor_out, _ = survivor.communicate(timeout=60)
        assert survivor.returncode == 0, survivor_out
    finally:
        for process in (serve, victim, survivor):
            if process.poll() is None:
                process.kill()
    victim.wait(timeout=30)

    # Resume over the finished store must execute nothing new.
    resume = _spawn(["run", str(source), "--store", str(store), "--quiet"],
                    cwd=str(tmp_path))
    out, _ = resume.communicate(timeout=240)
    assert resume.returncode == 0, out
    assert "6 resumed from store" in out, out
