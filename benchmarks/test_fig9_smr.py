"""Figure 9 — reproducing the BFT-SMaRt vs Wheat geo-replication study.

Paper: one replica + one client per region (Virginia, Oregon, Ireland,
São Paulo, Sydney), replicated counter, leader in Virginia.  The figure
shows 50th/90th-percentile client latency per region, original EC2 run
(left) vs Kollaps (right): Kollaps reproduces the EC2 results within 7.3 %
(Wheat, Ireland 90th) and 2.7 % (BFT-SMaRt).  The qualitative structure:
Wheat beats BFT-SMaRt in every region, and remote clients (São Paulo,
Sydney) pay the most.
"""

from conftest import print_result, run_once
from repro.experiments import fig9


def test_fig9_smr_reproduction(benchmark):
    result = run_once(benchmark, fig9.run)
    print_result(result)
    result.assert_all()
