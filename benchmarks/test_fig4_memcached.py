"""Figure 4 — memcached throughput is invariant to physical distribution.

Paper: a 4-region geo-topology with one memcached server and three memtier
clients per region (each server handles two local clients and one remote),
deployed over 1, 2, 4, 8 and 16 physical hosts.  Aggregate client
throughput stays flat as hosts are added (left plot), and per-host metadata
traffic stays in the tens of KB/s (right plot).
"""

from conftest import print_result, run_once
from repro.experiments import fig4


def test_fig4_memcached_distribution(benchmark):
    result = run_once(benchmark, fig4.run)
    print_result(result)
    result.assert_all()
