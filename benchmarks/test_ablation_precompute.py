"""Ablation — pre-computed vs online dynamic-topology handling (§3, §6).

The paper pre-computes the whole graph sequence offline because online
recomputation of all-pairs shortest paths "could take several seconds for
large graphs, precluding accurate emulation of sub-second dynamics".  This
benchmark quantifies that: the cost of applying one pre-computed state swap
versus collapsing a large topology from scratch at event time, and the
per-destination TCAL-update overhead per dynamic event (micro-benchmark of
the engine's swap path).
"""

from conftest import print_result, run_once
from repro.experiments import ablation_precompute


def test_ablation_precompute_vs_online(benchmark):
    result = run_once(benchmark, ablation_precompute.run)
    print_result(result)
    result.assert_all()
