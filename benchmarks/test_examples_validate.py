"""Smoke-check: every example's scenario stays compilable.

Each ``examples/*.py`` exposes a module-level ``SCENARIO`` (a
:class:`repro.scenario.Scenario` builder), so ``python -m repro.cli
validate examples/foo.py`` can compile it without running the emulation.
This test wires that check into the suite so examples cannot silently rot
when the topology, units or scenario layers move underneath them.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.cli import main

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLES) >= 8, "the example gallery shrank unexpectedly"


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda path: path.stem)
def test_cli_validate_accepts_example(example, capsys):
    assert main(["validate", str(example)]) == 0
    out = capsys.readouterr().out
    assert "topology" in out
    assert "dynamic events:" in out
