"""Smoke-check: every example's scenario stays compilable.

Each ``examples/*.py`` exposes a module-level ``SCENARIO`` (a
:class:`repro.scenario.Scenario` builder), so ``python -m repro.cli
validate examples/foo.py`` can compile it without running the emulation.
This test wires that check into the suite so examples cannot silently rot
when the topology, units or scenario layers move underneath them.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.cli import main

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))
SCN_SIBLINGS = sorted(EXAMPLES_DIR.glob("*.scn"))


def test_examples_exist():
    assert len(EXAMPLES) >= 8, "the example gallery shrank unexpectedly"
    assert len(SCN_SIBLINGS) >= 3, "the .scn sibling gallery shrank"


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda path: path.stem)
def test_cli_validate_accepts_example(example, capsys):
    assert main(["validate", str(example)]) == 0
    out = capsys.readouterr().out
    assert "topology" in out
    assert "dynamic events:" in out


@pytest.mark.parametrize("sibling", SCN_SIBLINGS,
                         ids=lambda path: path.stem)
def test_cli_validate_accepts_scn_sibling(sibling, capsys):
    assert main(["validate", str(sibling)]) == 0
    assert "topology" in capsys.readouterr().out


@pytest.mark.parametrize("sibling", SCN_SIBLINGS,
                         ids=lambda path: path.stem)
def test_scn_sibling_is_fresh_and_recompiles_identically(sibling, capsys):
    """The checked-in .scn must be the current canonical export of its
    .py sibling (byte-fresh) and compile to the same scenario."""
    from repro.scenario import Scenario, dumps_scn

    source = sibling.with_suffix(".py")
    compiled = Scenario.from_file(str(source)).compile()
    assert dumps_scn(compiled) == sibling.read_text(), \
        f"stale sibling: re-run `repro scenario export {source} " \
        f"-o {sibling}`"
    reloaded = Scenario.from_file(str(sibling)).compile()
    assert reloaded.describe() == compiled.describe()
    assert reloaded.path_table() == compiled.path_table()
