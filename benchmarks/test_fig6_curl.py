"""Figure 6 — connection-per-request HTTP: Mininet collapses under load.

Paper: an HTTP server behind a 100 Mb/s link serves 1/2/4/8 concurrent
curl clients (~64 KB per request, fresh TCP connection every time).
Bare metal and Kollaps scale near-linearly with client count; Mininet's
throughput falls behind as its switches buckle under per-connection state.
"""

from conftest import print_result, run_once
from repro.experiments import fig6


def test_fig6_curl_clients(benchmark):
    result = run_once(benchmark, fig6.run)
    print_result(result)
    result.assert_all()
