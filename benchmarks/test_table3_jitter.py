"""Table 3 — jitter-shaping accuracy against measured AWS inter-region links.

Paper: for each of 12 regions (from us-east-1), a link is configured with
the measured EC2 latency and jitter; 10 000 pings then measure the emulated
jitter.  Kollaps tracks the configured values closely (their overall MSE
between observed and emulated jitter is 0.2029 ms^2, emulated slightly
above measured due to container networking noise).
"""

from conftest import print_result, run_once
from repro.experiments import table3


def test_table3_jitter_accuracy(benchmark):
    result = run_once(benchmark, table3.run)
    print_result(result)
    result.assert_all()
