"""Figure 10 — geo-replicated Cassandra: throughput/latency curve on Kollaps.

Paper: 4 replicas in Frankfurt + 4 in Sydney (RF = 2), 4 YCSB clients in
Frankfurt, 50/50 read/update, R = ONE / W = QUORUM.  The EC2 deployment
and the Kollaps emulation produce near-identical throughput-latency
curves: flat latency until the replicas saturate, then a sharp climb.
Here the "EC2" reference is the bare-metal run of the same workload over
the full physical topology; Kollaps is the collapsed emulation.
"""

from conftest import print_result, run_once
from repro.experiments import fig10


def test_fig10_cassandra_curve(benchmark):
    result = run_once(benchmark, fig10.run)
    print_result(result)
    result.assert_all()
