"""Compare a freshly measured engine baseline against the checked-in one.

Usage::

    python benchmarks/compare_bench.py MEASURED.json BASELINE.json [--gate N]

Prints one row per shared metric — checked-in value, measured value and
the ratio — then applies two different kinds of gate:

* **rates** (any numeric metric) must lie within ``[1/gate, gate]`` of
  the checked-in value (default gate 2: CI runners are slower or faster
  than the machine that wrote the baseline, but not 2x in either
  direction without something being wrong);
* **checksums** (metrics ending in ``_checksum`` or named
  ``*_checksum_*``) must match *exactly* — they are machine-independent
  fingerprints of solver and collapse output, so any difference is
  CORRECTNESS DRIFT, not noise, regardless of how fast the runner is.

Exits non-zero when any gate trips, so CI can fail the job.
"""

from __future__ import annotations

import argparse
import json
import sys

SKIP_KEYS = {"bench", "solver_backend"}


def is_checksum(key: str) -> bool:
    return "checksum" in key


def compare(measured: dict, baseline: dict, gate: float) -> int:
    failures = 0
    keys = [key for key in baseline if key not in SKIP_KEYS]
    width = max(len(key) for key in keys)
    header = (f"{'metric':<{width}}  {'checked-in':>14}  "
              f"{'measured':>14}  {'ratio':>7}  verdict")
    print(header)
    print("-" * len(header))
    for key in keys:
        expected = baseline[key]
        actual = measured.get(key)
        if actual is None:
            print(f"{key:<{width}}  {expected!s:>14}  {'MISSING':>14}"
                  f"  {'':>7}  FAIL (metric absent from measurement)")
            failures += 1
            continue
        if is_checksum(key):
            verdict = "ok" if actual == expected else (
                "FAIL — CORRECTNESS DRIFT (checksums are machine-"
                "independent; refresh the baseline only if the change "
                "in solver/collapse output is intended)")
            if actual != expected:
                failures += 1
            print(f"{key:<{width}}  {expected!s:>14}  {actual!s:>14}"
                  f"  {'exact':>7}  {verdict}")
            continue
        if isinstance(expected, (int, float)) and not isinstance(
                expected, bool):
            if expected == 0 or not isinstance(actual, (int, float)):
                ratio_text, ok = "?", actual == expected
            else:
                ratio = actual / expected
                ratio_text = f"{ratio:.2f}x"
                ok = (1.0 / gate) <= ratio <= gate
            if not ok:
                failures += 1
            print(f"{key:<{width}}  {expected!s:>14}  {actual!s:>14}"
                  f"  {ratio_text:>7}  {'ok' if ok else 'FAIL'}")
        else:
            ok = actual == expected
            if not ok:
                failures += 1
            print(f"{key:<{width}}  {expected!s:>14}  {actual!s:>14}"
                  f"  {'':>7}  {'ok' if ok else 'FAIL'}")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate a measured engine baseline against BENCH_*.json")
    parser.add_argument("measured", help="freshly written baseline JSON")
    parser.add_argument("baseline", help="checked-in baseline JSON")
    parser.add_argument("--gate", type=float, default=2.0,
                        help="rate tolerance factor (default 2: rates must"
                             " lie within [1/gate, gate] of checked-in)")
    options = parser.parse_args(argv)
    with open(options.measured, encoding="utf-8") as handle:
        measured = json.load(handle)
    with open(options.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)
    failures = compare(measured, baseline, options.gate)
    if failures:
        print(f"\n{failures} metric(s) outside the gate", file=sys.stderr)
        return 1
    print("\nall metrics within the gate")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
