"""Figure 3 — metadata network traffic vs containers, flows and hosts.

Paper: dumbbell topologies with (C containers, F flows) on 1–4 physical
hosts, iPerf3 at 50 Mb/s through the shared link.  Metadata traffic is zero
on one host (shared memory only), grows with the number of *hosts*, and is
essentially flat in the number of *containers* — the decentralization
claim.  Absolute volume stays in the hundreds of KB/s at (160, 80, 4).
"""

from conftest import print_result, run_once
from repro.experiments import fig3


def test_fig3_metadata_traffic(benchmark):
    result = run_once(benchmark, fig3.run)
    print_result(result)
    result.assert_all()
