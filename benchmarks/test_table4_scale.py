"""Table 4 — RTT accuracy on large scale-free topologies.

Paper: preferential-attachment topologies of 1000/2000/4000 elements;
end-nodes ping random end-nodes for 10 minutes and the RTTs are compared
against the theoretical shortest-path values.  MSE (ms^2):

    size   Kollaps   Mininet   Maxinet
    1000   0.0261    0.0079    28.0779
    2000   0.0384    N/A       347.5303
    4000   0.0721    N/A       N/A

Mininet is slightly better at 1000 (no cross-machine hops) but cannot go
further; Maxinet's controller pushes it three orders of magnitude off.
Sizes are scaled (250/500/1000) to keep the harness fast — the error
*sources* (container networking, physical hops, controller round trips)
are size-independent.
"""

from conftest import print_result, run_once
from repro.experiments import table4


def test_table4_large_scale_rtt(benchmark):
    result = run_once(benchmark, table4.run)
    print_result(result)
    result.assert_all()
