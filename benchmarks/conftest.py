"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper: it runs the
experiment inside the ``benchmark`` fixture (so ``pytest benchmarks/
--benchmark-only`` times the harness) and prints the same rows/series the
paper reports, annotated with the paper's own numbers where they exist.
Assertions check the *shape* — who wins, by roughly what factor, where the
crossovers fall — not absolute values, since the substrate is a simulator
rather than the authors' testbed.
"""

from __future__ import annotations

import sys
from typing import Iterable, List, Sequence


def print_table(title: str, headers: Sequence[str],
                rows: Iterable[Sequence[object]]) -> None:
    """Render one experiment's output as an aligned text table."""
    materialized: List[List[str]] = [[str(cell) for cell in row]
                                     for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    line = "  ".join(header.ljust(width)
                     for header, width in zip(headers, widths))
    print(f"\n=== {title} ===", file=sys.stderr)
    print(line, file=sys.stderr)
    print("-" * len(line), file=sys.stderr)
    for row in materialized:
        print("  ".join(cell.ljust(width)
                        for cell, width in zip(row, widths)), file=sys.stderr)


def run_once(benchmark, function):
    """Execute ``function`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, iterations=1, rounds=1)


def print_result(result) -> None:
    """Render an :class:`repro.experiments.ExperimentResult` to stderr."""
    from repro.experiments import format_table

    print(file=sys.stderr)
    print(format_table(result), file=sys.stderr)
