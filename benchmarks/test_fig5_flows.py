"""Figure 5 — deviation from bare metal for long- and short-lived flows.

Paper: one server, two clients behind a 1 Gb/s switch.  Long-lived iPerf3
flows under Cubic and Reno, and short-lived wrk2 HTTP traffic, are run on
bare metal, Kollaps and Mininet; the deviation of measured bandwidth from
the bare-metal baseline stays below ~10 % (long-lived) and ~2 %
(short-lived), with Kollaps generally at least as close as Mininet.
"""

from conftest import print_result, run_once
from repro.experiments import fig5


def test_fig5_long_and_short_flows(benchmark):
    result = run_once(benchmark, fig5.run)
    print_result(result)
    result.assert_all()
