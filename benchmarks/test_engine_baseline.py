"""Engine performance baselines, measured through the telemetry layer.

Three headline rates anchor the reproduction's performance story:
fair-share solves/sec (the progressive-filling allocator of §3),
collapses/sec (all-pairs shortest paths on a mid-size scale-free
topology), and campaign points/sec for a single worker.  Every rate is
derived from the telemetry counters the instrumented code itself
maintains — the benchmark doubles as an end-to-end check that the
counters measure what they claim.

``REPRO_BENCH_WRITE=1`` refreshes ``BENCH_engine.json`` at the repo
root (checked in, like ``BENCH_dsl.json``) so drift shows up in review
diffs rather than only in CI timings.

The companion budget test holds the telemetry layer to its contract:
with tracing disabled, an instrumentation guard is a single boolean
branch whose cost stays under 2 % of even the smallest instrumented
unit of real work.
"""

import json
import os

from conftest import print_table, run_once

from repro import telemetry
from repro.campaign import Campaign
from repro.core import FlowDemand, collapse, rtt_aware_max_min
from repro.scenario import Scenario, flow
from repro.scenario.topologies import scale_free
from repro.telemetry import Stopwatch

MBPS = 1e6
SOLVER_ROUNDS = 200
COLLAPSE_ROUNDS = 10
COLLAPSE_SIZE = 120
BENCH_PATH = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "BENCH_engine.json")


def solver_problem():
    """24 flows over a two-level tree: enough links to make the
    progressive filler iterate, small enough to solve in microseconds."""
    capacities = {}
    flows = []
    for client in range(12):
        access = client                      # one access link per client
        trunk = 24 + client % 3              # three shared trunks
        server = 32 + client % 4             # four server uplinks
        capacities[access] = 50 * MBPS
        capacities[trunk] = 100 * MBPS
        capacities[server] = 50 * MBPS
        rtt = 0.020 + 0.005 * (client % 5)
        flows.append(FlowDemand(f"up{client}", rtt,
                                (access, trunk, server),
                                path_bandwidth=50 * MBPS))
        flows.append(FlowDemand(f"down{client}", rtt,
                                (server, trunk, access),
                                path_bandwidth=50 * MBPS))
    return flows, capacities


def bench_pair(*, rate, seed=0):
    return (Scenario.build("bench_pair")
            .service("a").service("b").bridge("s")
            .link("a", "s", latency="1ms", up=rate)
            .link("s", "b", latency="1ms", up=rate)
            .workload(flow("a", "b", key="bulk"))
            .deploy(machines=2, seed=seed, duration=2.0))


def measure_baselines():
    """All three rates in one pass, counters as the ground truth."""
    telemetry.disable()
    telemetry.metrics.clear()
    telemetry.enable()                      # in-memory tracing
    try:
        # The campaign below runs its own (tiny) solves and collapses, so
        # each stage's rate comes from a counter delta taken right after
        # that stage — not from the final totals.
        before = telemetry.metrics.snapshot()
        flows, capacities = solver_problem()
        for _ in range(SOLVER_ROUNDS):
            rtt_aware_max_min(flows, capacities)
        solver = telemetry.metrics.delta_since(before)

        before = telemetry.metrics.snapshot()
        topology = scale_free(COLLAPSE_SIZE, seed=11).compile().topology
        for _ in range(COLLAPSE_ROUNDS):
            collapse(topology)
        collapsed = telemetry.metrics.delta_since(before)

        (Campaign("bench")
         .scenario(bench_pair)
         .grid(rate=[1e6, 4e6])
         .seeds(2)
         .backends("kollaps")
         .run(jobs=1))

        snapshot = telemetry.metrics.snapshot()
    finally:
        telemetry.disable()
        telemetry.metrics.clear()

    point_hist = snapshot["campaign.point_seconds"]
    return {
        "bench": "engine",
        "solver_flows": int(solver["sharing.solver_flows"]
                            / solver["sharing.solver_calls"]),
        "fair_share_solves_per_sec": round(
            solver["sharing.solver_calls"]
            / solver["sharing.solver_seconds"], 1),
        "collapse_containers": COLLAPSE_SIZE,
        "collapse_pairs": int(collapsed["collapse.pairs"]
                              / collapsed["collapse.recomputes"]),
        "collapses_per_sec": round(
            collapsed["collapse.recomputes"]
            / collapsed["collapse.seconds"], 1),
        "campaign_points": int(
            snapshot["campaign.points"]["value"]),
        "campaign_points_per_sec_per_worker": round(
            point_hist["count"] / point_hist["sum"], 2),
    }


def test_engine_baselines(benchmark):
    results = run_once(benchmark, measure_baselines)
    print_table("engine baselines (telemetry-derived)",
                ["metric", "value"],
                sorted(results.items()))

    # Loose sanity floors: an order of magnitude below any machine this
    # runs on, so only a real regression (or broken counters) trips them.
    assert results["fair_share_solves_per_sec"] > 20.0
    assert results["collapses_per_sec"] > 1.0
    assert results["campaign_points_per_sec_per_worker"] > 0.05
    assert results["campaign_points"] == 4          # 2 rates x 2 seeds
    assert results["solver_flows"] == 24
    assert results["collapse_pairs"] > 0

    if os.environ.get("REPRO_BENCH_WRITE") == "1":
        with open(BENCH_PATH, "w", encoding="utf-8") as handle:
            json.dump(results, handle, indent=2)
            handle.write("\n")


def test_checked_in_baseline_is_current():
    """BENCH_engine.json must exist and describe this benchmark's shape
    (values drift per machine; structure and workload must not)."""
    with open(BENCH_PATH, encoding="utf-8") as handle:
        checked_in = json.load(handle)
    assert checked_in["bench"] == "engine"
    assert checked_in["campaign_points"] == 4
    assert checked_in["collapse_containers"] == COLLAPSE_SIZE
    for key in ("fair_share_solves_per_sec", "collapses_per_sec",
                "campaign_points_per_sec_per_worker"):
        assert checked_in[key] > 0


def test_disabled_overhead_budget(benchmark):
    """A disabled telemetry guard costs <2 % of the smallest real unit.

    The guard is ``telemetry.enabled()`` plus a no-op ``span()`` (one
    branch, shared NullSpan).  The hottest instrumented sites run one
    guard per fair-share solve / collapse / fluid step, so per-guard
    cost against one *small* solve bounds every site's overhead.
    """
    telemetry.disable()
    assert not telemetry.enabled()

    probes = 100_000

    def guard_loop():
        for _ in range(probes):
            if telemetry.enabled():
                raise AssertionError("tracing must stay off")
            telemetry.span("overhead.probe")

    with Stopwatch() as guard_watch:
        run_once(benchmark, guard_loop)
    per_guard = guard_watch.elapsed / probes

    flows, capacities = solver_problem()
    rounds = 50
    with Stopwatch() as solver_watch:
        for _ in range(rounds):
            rtt_aware_max_min(flows, capacities)
    per_solve = solver_watch.elapsed / rounds

    # Four guards per solve is 4x more than any instrumented site runs.
    share = (4 * per_guard) / per_solve
    print_table("disabled-telemetry overhead",
                ["metric", "value"],
                [("per-guard cost", f"{per_guard * 1e9:.0f} ns"),
                 ("per-solve cost", f"{per_solve * 1e6:.1f} us"),
                 ("share at 4 guards/solve", f"{share * 100:.3f} %")])
    assert share < 0.02
