"""Engine performance baselines, measured through the telemetry layer.

Four headline rates anchor the reproduction's performance story:
fair-share solves/sec on the small and large solver problems (the
progressive-filling allocator of §3, vectorized in numpy when
available), cold collapses/sec (all-pairs shortest paths on a mid-size
scale-free topology, memo bypassed), memoized collapses/sec (the
repeat-point path campaign sweeps hit), and campaign points/sec for a
single worker.  Every rate is derived from the telemetry counters the
instrumented code itself maintains — the benchmark doubles as an
end-to-end check that the counters measure what they claim.

Alongside the rates, the baseline records two *checksums* over the
solver allocation and the collapsed path table, always computed with
the pure-Python backend (bit-deterministic across machines).  Rates
drift per machine; checksums must not — a mismatch in review or CI
means correctness drift, not a slow runner.  See docs/performance.md.

``REPRO_BENCH_WRITE=1`` refreshes ``BENCH_engine.json`` at the repo
root (checked in, like ``BENCH_dsl.json``) so drift shows up in review
diffs rather than only in CI timings; any other value is taken as a
destination path (CI writes a scratch file and diffs it against the
checked-in baseline with ``benchmarks/compare_bench.py``).

The companion budget test holds the telemetry layer to its contract:
with tracing disabled, an instrumentation guard is a single boolean
branch whose cost stays under 2 % of even the smallest instrumented
unit of real work.
"""

import hashlib
import json
import os

from conftest import print_table, run_once

from repro import telemetry
from repro.campaign import Campaign
from repro.core import (FlowDemand, clear_collapse_cache, collapse,
                        rtt_aware_max_min, set_solver_backend,
                        solver_backend)
from repro.scenario import Scenario, flow
from repro.scenario.topologies import scale_free
from repro.telemetry import Stopwatch

MBPS = 1e6
SOLVER_ROUNDS = 200
LARGE_ROUNDS = 100
COLLAPSE_ROUNDS = 10
MEMO_ROUNDS = 50
COLLAPSE_SIZE = 120
SMALL_CLIENTS = 12            # 24 flows — the historical baseline problem
LARGE_CLIENTS = 64            # 128 flows — where vectorization must win
BENCH_PATH = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "BENCH_engine.json")


def solver_problem(clients=SMALL_CLIENTS):
    """``2 x clients`` flows over a two-level tree.

    Each client contributes an up and a down flow through one private
    access link, one of a few shared trunks and one of a few server
    uplinks — enough sharing to make the progressive filler iterate.
    ``clients=12`` is the historical 24-flow baseline; ``clients=64``
    (128 flows) is the large problem the vectorized backend must win.
    """
    trunks = max(3, clients // 4)
    servers = max(4, clients // 3)
    capacities = {}
    flows = []
    for client in range(clients):
        access = client                      # one access link per client
        trunk = 2 * clients + client % trunks
        server = 2 * clients + trunks + client % servers
        capacities[access] = 50 * MBPS
        capacities[trunk] = 100 * MBPS
        capacities[server] = 50 * MBPS
        rtt = 0.020 + 0.005 * (client % 5)
        flows.append(FlowDemand(f"up{client}", rtt,
                                (access, trunk, server),
                                path_bandwidth=50 * MBPS))
        flows.append(FlowDemand(f"down{client}", rtt,
                                (server, trunk, access),
                                path_bandwidth=50 * MBPS))
    return flows, capacities


def bench_pair(*, rate, seed=0):
    return (Scenario.build("bench_pair")
            .service("a").service("b").bridge("s")
            .link("a", "s", latency="1ms", up=rate)
            .link("s", "b", latency="1ms", up=rate)
            .workload(flow("a", "b", key="bulk"))
            .deploy(machines=2, seed=seed, duration=2.0))


# ---------------------------------------------------------------------------
# Checksums: machine-independent correctness fingerprints.
# ---------------------------------------------------------------------------

def solver_checksum(clients=SMALL_CLIENTS):
    """Digest of the pure-Python allocation on :func:`solver_problem`.

    Forced to the python backend: pure-Python float arithmetic is
    IEEE-754 deterministic, so this digest is identical on every
    machine.  (numpy agreement is asserted separately, at 1e-9
    relative — reduction order may differ in the last ulp or two.)
    """
    flows, capacities = solver_problem(clients)
    set_solver_backend("python")
    try:
        allocation = rtt_aware_max_min(flows, capacities)
    finally:
        set_solver_backend(None)
    digest = hashlib.blake2b(digest_size=8)
    for key in sorted(allocation):
        digest.update(f"{key}={allocation[key]!r};".encode())
    return digest.hexdigest()


def collapse_checksum(size=COLLAPSE_SIZE, seed=11):
    """Digest of the collapsed path table on the benchmark topology.

    Covers every pair's composed properties and constituent link ids,
    so it pins both Dijkstra's tie-breaking and property composition.
    """
    topology = scale_free(size, seed=seed).compile().topology
    collapsed = collapse(topology, memo=False)
    digest = hashlib.blake2b(digest_size=8)
    paths = sorted(collapsed.paths(),
                   key=lambda path: (path.source, path.destination))
    for path in paths:
        properties = path.properties
        digest.update(
            f"{path.source}>{path.destination}"
            f":{properties.latency!r},{properties.bandwidth!r},"
            f"{properties.loss!r}:{path.link_ids};".encode())
    return digest.hexdigest()


def _solver_rate(flows, capacities, rounds):
    """(solves/sec, flows/solve) for the *active* backend, via counters."""
    before = telemetry.metrics.snapshot()
    for _ in range(rounds):
        rtt_aware_max_min(flows, capacities)
    delta = telemetry.metrics.delta_since(before)
    return (delta["sharing.solver_calls"] / delta["sharing.solver_seconds"],
            int(delta["sharing.solver_flows"]
                / delta["sharing.solver_calls"]))


def measure_baselines():
    """All rates in one pass, counters as the ground truth."""
    telemetry.disable()
    telemetry.metrics.clear()
    telemetry.enable()                      # in-memory tracing
    clear_collapse_cache()
    try:
        # The campaign below runs its own (tiny) solves and collapses, so
        # each stage's rate comes from a counter delta taken right after
        # that stage — not from the final totals.
        backend = solver_backend()
        small = solver_problem(SMALL_CLIENTS)
        large = solver_problem(LARGE_CLIENTS)
        solves_per_sec, solver_flows = _solver_rate(*small,
                                                    rounds=SOLVER_ROUNDS)
        large_per_sec, large_flows = _solver_rate(*large,
                                                  rounds=LARGE_ROUNDS)
        set_solver_backend("python")
        try:
            large_python_per_sec, _ = _solver_rate(*large,
                                                   rounds=LARGE_ROUNDS // 4)
        finally:
            set_solver_backend(None)

        # Cold collapses bypass the memo; the memoized rate then measures
        # the repeat-point path campaigns hit (one miss populates it).
        topology = scale_free(COLLAPSE_SIZE, seed=11).compile().topology
        before = telemetry.metrics.snapshot()
        for _ in range(COLLAPSE_ROUNDS):
            collapse(topology, memo=False)
        collapsed = telemetry.metrics.delta_since(before)
        collapse(topology)                  # populate the memo
        before = telemetry.metrics.snapshot()
        for _ in range(MEMO_ROUNDS):
            collapse(topology)
        memoized = telemetry.metrics.delta_since(before)
        assert memoized["collapse.memo_hits"] == MEMO_ROUNDS

        (Campaign("bench")
         .scenario(bench_pair)
         .grid(rate=[1e6, 4e6])
         .seeds(2)
         .backends("kollaps")
         .run(jobs=1))

        snapshot = telemetry.metrics.snapshot()
    finally:
        telemetry.disable()
        telemetry.metrics.clear()
        clear_collapse_cache()

    point_hist = snapshot["campaign.point_seconds"]
    collapses_per_sec = (collapsed["collapse.recomputes"]
                         / collapsed["collapse.seconds"])
    memo_per_sec = (memoized["collapse.memo_hits"]
                    / memoized["collapse.memo_seconds"])
    return {
        "bench": "engine",
        "solver_backend": backend,
        "solver_flows": solver_flows,
        "fair_share_solves_per_sec": round(solves_per_sec, 1),
        "solver_large_flows": large_flows,
        "fair_share_solves_per_sec_large": round(large_per_sec, 1),
        "fair_share_solves_per_sec_large_python": round(
            large_python_per_sec, 1),
        "solver_speedup_large": round(
            large_per_sec / large_python_per_sec, 2),
        "solver_checksum": solver_checksum(SMALL_CLIENTS),
        "solver_checksum_large": solver_checksum(LARGE_CLIENTS),
        "collapse_containers": COLLAPSE_SIZE,
        "collapse_pairs": int(collapsed["collapse.pairs"]
                              / collapsed["collapse.recomputes"]),
        "collapses_per_sec": round(collapses_per_sec, 1),
        "memoized_collapses_per_sec": round(memo_per_sec, 1),
        "collapse_memo_speedup": round(memo_per_sec / collapses_per_sec, 1),
        "collapse_checksum": collapse_checksum(),
        "campaign_points": int(
            snapshot["campaign.points"]["value"]),
        "campaign_points_per_sec_per_worker": round(
            point_hist["count"] / point_hist["sum"], 2),
    }


def test_engine_baselines(benchmark):
    results = run_once(benchmark, measure_baselines)
    print_table("engine baselines (telemetry-derived)",
                ["metric", "value"],
                sorted(results.items()))

    # Loose sanity floors: an order of magnitude below any machine this
    # runs on, so only a real regression (or broken counters) trips them.
    assert results["fair_share_solves_per_sec"] > 20.0
    assert results["collapses_per_sec"] > 1.0
    assert results["campaign_points_per_sec_per_worker"] > 0.05
    assert results["campaign_points"] == 4          # 2 rates x 2 seeds
    assert results["solver_flows"] == 24
    assert results["solver_large_flows"] == 2 * LARGE_CLIENTS
    assert results["collapse_pairs"] > 0

    # The issue's acceptance floors: vectorized solver at least 5x the
    # pure-Python rate at >= 64 flows, memoized collapse at least 3x the
    # cold rate.  The solver floor only binds when numpy is present — the
    # no-numpy CI leg measures python against itself (speedup ~1).
    if results["solver_backend"] == "numpy":
        assert results["solver_speedup_large"] >= 5.0
    assert results["collapse_memo_speedup"] >= 3.0

    if os.environ.get("REPRO_BENCH_WRITE"):
        destination = os.environ["REPRO_BENCH_WRITE"]
        if destination == "1":
            destination = BENCH_PATH
        with open(destination, "w", encoding="utf-8") as handle:
            json.dump(results, handle, indent=2)
            handle.write("\n")


def test_backends_agree_on_benchmark_problems():
    """numpy and python allocations match to 1e-9 relative.

    The checksums pin the python backend bit-for-bit; this pins the
    numpy backend to it within float-reduction tolerance.  Skipped
    (vacuously true) when numpy is absent — there is only one backend.
    """
    if solver_backend() != "numpy":
        return
    for clients in (SMALL_CLIENTS, LARGE_CLIENTS):
        flows, capacities = solver_problem(clients)
        set_solver_backend("numpy")
        try:
            vectorized = rtt_aware_max_min(flows, capacities)
        finally:
            set_solver_backend(None)
        set_solver_backend("python")
        try:
            scalar = rtt_aware_max_min(flows, capacities)
        finally:
            set_solver_backend(None)
        assert set(vectorized) == set(scalar)
        for key, value in scalar.items():
            scale = max(abs(value), 1.0)
            assert abs(vectorized[key] - value) <= 1e-9 * scale, (
                clients, key, value, vectorized[key])


def test_checked_in_baseline_is_current():
    """BENCH_engine.json must exist, describe this benchmark's shape and
    carry checksums that match a fresh computation.  Rates drift per
    machine; structure, workload and checksums must not."""
    with open(BENCH_PATH, encoding="utf-8") as handle:
        checked_in = json.load(handle)
    assert checked_in["bench"] == "engine"
    assert checked_in["campaign_points"] == 4
    assert checked_in["collapse_containers"] == COLLAPSE_SIZE
    assert checked_in["solver_large_flows"] == 2 * LARGE_CLIENTS
    for key in ("fair_share_solves_per_sec",
                "fair_share_solves_per_sec_large",
                "fair_share_solves_per_sec_large_python",
                "collapses_per_sec", "memoized_collapses_per_sec",
                "campaign_points_per_sec_per_worker"):
        assert checked_in[key] > 0
    # Correctness drift check: a stale checksum means the solver or the
    # collapse changed behaviour without the baseline being refreshed.
    assert checked_in["solver_checksum"] == solver_checksum(SMALL_CLIENTS)
    assert checked_in["solver_checksum_large"] == solver_checksum(
        LARGE_CLIENTS)
    assert checked_in["collapse_checksum"] == collapse_checksum()


def test_disabled_overhead_budget(benchmark):
    """A disabled telemetry guard costs <2 % of the smallest real unit.

    The guard is ``telemetry.enabled()`` plus a no-op ``span()`` (one
    branch, shared NullSpan).  The hottest instrumented sites run one
    guard per fair-share solve / collapse / fluid step, so per-guard
    cost against one *small* solve bounds every site's overhead.
    """
    telemetry.disable()
    assert not telemetry.enabled()

    probes = 100_000

    def guard_loop():
        for _ in range(probes):
            if telemetry.enabled():
                raise AssertionError("tracing must stay off")
            telemetry.span("overhead.probe")

    with Stopwatch() as guard_watch:
        run_once(benchmark, guard_loop)
    per_guard = guard_watch.elapsed / probes

    flows, capacities = solver_problem()
    rounds = 50
    with Stopwatch() as solver_watch:
        for _ in range(rounds):
            rtt_aware_max_min(flows, capacities)
    per_solve = solver_watch.elapsed / rounds

    # Four guards per solve is 4x more than any instrumented site runs.
    share = (4 * per_guard) / per_solve
    print_table("disabled-telemetry overhead",
                ["metric", "value"],
                [("per-guard cost", f"{per_guard * 1e9:.0f} ns"),
                 ("per-solve cost", f"{per_solve * 1e6:.1f} us"),
                 ("share at 4 guards/solve", f"{share * 100:.3f} %")])
    assert share < 0.02
