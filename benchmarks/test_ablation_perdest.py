"""Ablation — per-destination vs per-flow bandwidth enforcement (§3).

Kollaps "enforces bandwidth sharing per destination, not per flow", which
(together with only-active-flows reporting) is why Figure 3's metadata
traffic is flat in the number of containers.  This ablation measures the
metadata volume with per-destination aggregation (one record per container
pair, what Kollaps ships) against hypothetical per-flow reporting (one
record per TCP connection), for a memcached-style workload where clients
hold many connections to one server.
"""

from conftest import print_result, run_once
from repro.experiments import ablation_perdest


def test_ablation_per_destination_aggregation(benchmark):
    result = run_once(benchmark, ablation_perdest.run)
    print_result(result)
    result.assert_all()
