"""Figure 11 — the what-if scenario: halve the inter-region latency.

Paper: keep the Figure 10 deployment but move the 4 Sydney replicas to
Seoul (ap-northeast), halving the inter-region RTT.  Cassandra responds as
expected: update latencies drop by about half (reads, already local, barely
move) and the saturation point shifts to higher throughput.  In Kollaps
this is a one-line change to the topology description.
"""

from conftest import print_result, run_once
from repro.experiments import fig11


def test_fig11_halved_latency(benchmark):
    result = run_once(benchmark, fig11.run)
    print_result(result)
    result.assert_all()
