"""Table 2 — bandwidth-shaping accuracy on a point-to-point topology.

Paper: Kollaps and Mininet both land ~4-7 % below every provisioned rate
from 128 Kb/s to 1 Gb/s (the htb + iPerf3 framing cost); Mininet cannot
shape above 1 Gb/s at all (N/A rows); Trickle with default buffers
overshoots wildly, and only tracks the target after tuning (~±2 %).
"""

from conftest import print_result, run_once
from repro.experiments import table2


def test_table2_bandwidth_shaping(benchmark):
    result = run_once(benchmark, table2.run)
    print_result(result)
    result.assert_all()
