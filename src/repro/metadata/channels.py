"""Aeron-like metadata transport: shared memory intra-host, UDP inter-host.

One :class:`MediaDriver` runs per physical machine (§4.2).  Publications to
a subscriber on the same machine travel through shared memory and cost no
network bytes; publications to remote machines are encoded into UDP
datagrams, accounted against the sending and receiving machines' counters,
and delivered after the physical network delay.  These counters are what
the Figure 3/4 metadata-traffic benchmarks read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.metadata.encoding import (
    DATAGRAM_PAYLOAD_BYTES,
    MetadataMessage,
    decode_message,
    encode_message,
)
from repro.sim import Simulator

__all__ = ["MediaDriver", "UdpStats"]

# UDP + IP header cost per datagram, charged on the wire.
_UDP_HEADER_BYTES = 28


@dataclass
class UdpStats:
    """Per-machine metadata network accounting."""

    bytes_sent: int = 0
    bytes_received: int = 0
    datagrams_sent: int = 0
    datagrams_received: int = 0
    shared_memory_messages: int = 0

    def wire_bytes_sent(self) -> int:
        return self.bytes_sent + self.datagrams_sent * _UDP_HEADER_BYTES


class MediaDriver:
    """One per machine: routes metadata to local and remote subscribers."""

    def __init__(self, sim: Simulator, machine: str, *,
                 network_delay: float = 100e-6, wide_ids: bool = False) -> None:
        self.sim = sim
        self.machine = machine
        self.network_delay = network_delay
        self.wide_ids = wide_ids
        self.stats = UdpStats()
        self._local_subscribers: List[Callable[[MetadataMessage], None]] = []
        self._peers: Dict[str, "MediaDriver"] = {}

    # ------------------------------------------------------------- topology
    def connect(self, other: "MediaDriver") -> None:
        """Make the two drivers mutually reachable over the physical net."""
        if other.machine == self.machine:
            raise ValueError("connect() is for distinct machines")
        self._peers[other.machine] = other
        other._peers[self.machine] = self

    def subscribe(self, callback: Callable[[MetadataMessage], None]) -> None:
        """Register a local Emulation Manager/Core consumer."""
        self._local_subscribers.append(callback)

    def peers(self) -> List[str]:
        return sorted(self._peers)

    # ----------------------------------------------------------- publishing
    def publish(self, message: MetadataMessage) -> None:
        """Deliver to local subscribers (shared memory) and all peers (UDP)."""
        self.publish_local(message)
        for machine in self.peers():
            self.publish_to(machine, message)

    def publish_local(self, message: MetadataMessage) -> None:
        self.stats.shared_memory_messages += 1
        for subscriber in self._local_subscribers:
            subscriber(message)

    def publish_to(self, machine: str, message: MetadataMessage) -> None:
        """Encode and ship one UDP publication to a specific peer."""
        peer = self._peers.get(machine)
        if peer is None:
            raise KeyError(f"{self.machine}: unknown peer machine {machine!r}")
        payload = encode_message(message, wide=self.wide_ids)
        datagrams = max(1, -(-len(payload) // DATAGRAM_PAYLOAD_BYTES))
        self.stats.bytes_sent += len(payload)
        self.stats.datagrams_sent += datagrams

        def deliver() -> None:
            peer.stats.bytes_received += len(payload)
            peer.stats.datagrams_received += datagrams
            decoded = decode_message(payload, sender=message.sender,
                                     wide=self.wide_ids)
            for subscriber in peer._local_subscribers:
                subscriber(decoded)

        self.sim.after(self.network_delay, deliver, label="metadata-udp")
