"""Metadata dissemination: wire encoding, channels and the media driver.

Emulation Cores exchange flow-usage metadata so every Emulation Manager can
evaluate the bandwidth-sharing model locally (§3, §4.2).  Intra-host
exchange goes through shared memory (zero network cost); inter-host exchange
through UDP datagrams whose payload follows the paper's exact byte layout,
so the metadata-traffic measurements of Figures 3 and 4 are byte-comparable.
"""

from repro.metadata.encoding import (
    FlowRecord,
    MetadataMessage,
    decode_message,
    encode_message,
    encoded_size,
)
from repro.metadata.channels import MediaDriver, UdpStats

__all__ = [
    "FlowRecord",
    "MetadataMessage",
    "encode_message",
    "decode_message",
    "encoded_size",
    "MediaDriver",
    "UdpStats",
]
