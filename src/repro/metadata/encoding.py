"""The §4.2 metadata wire format.

    The metadata messages embed the following fields: (i) number of flows,
    2 bytes; (ii) list of used bandwidth per flow, 4 bytes per flow;
    (iii) number of links; (iv) list of link identifiers.  For emulated
    networks with <= 256 nodes, it is possible to pack the metadata
    information for links and identifiers in a single byte each (2 bytes
    are used for bigger emulated topologies).

Concretely each message is::

    u16 flow_count
    repeated flow_count times:
        u32 used_bandwidth        (in Kb/s, saturating)
        u8|u16 link_count
        link_count * (u8|u16) link ids

Link-id width is chosen by the topology size (``wide=False`` for <= 256
emulated elements).  Flows also carry their (source, destination) pair as
two container indices with the same width — real Kollaps resolves these
from per-core channel identity; here they travel in-band, sized identically,
so message sizes stay faithful.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["FlowRecord", "MetadataMessage", "encode_message",
           "decode_message", "encoded_size"]

_MAX_U32 = 2 ** 32 - 1
# Conventional MTU-sized UDP payload (1500 - IP/UDP headers).
DATAGRAM_PAYLOAD_BYTES = 1472


@dataclass(frozen=True)
class FlowRecord:
    """One active flow's usage report (bandwidth in bits per second)."""

    source_index: int
    destination_index: int
    used_bandwidth: float
    link_ids: Tuple[int, ...]


@dataclass(frozen=True)
class MetadataMessage:
    """A batch of flow records from one Emulation Manager."""

    sender: int
    flows: Tuple[FlowRecord, ...]


def _id_format(wide: bool) -> str:
    return "H" if wide else "B"


def encode_message(message: MetadataMessage, *, wide: bool = False) -> bytes:
    """Serialize ``message``; raises ``ValueError`` on out-of-range ids."""
    id_format = _id_format(wide)
    limit = 0xFFFF if wide else 0xFF
    parts = [struct.pack("!H", len(message.flows))]
    for flow in message.flows:
        for identifier in (flow.source_index, flow.destination_index,
                           len(flow.link_ids), *flow.link_ids):
            if not 0 <= identifier <= limit:
                raise ValueError(
                    f"identifier {identifier} exceeds {'u16' if wide else 'u8'}"
                    " range; use wide=True for large topologies")
        bandwidth_kbps = min(_MAX_U32, int(round(flow.used_bandwidth / 1000.0)))
        parts.append(struct.pack(f"!I{id_format}{id_format}{id_format}",
                                 bandwidth_kbps, flow.source_index,
                                 flow.destination_index, len(flow.link_ids)))
        if flow.link_ids:
            parts.append(struct.pack(f"!{len(flow.link_ids)}{id_format}",
                                     *flow.link_ids))
    return b"".join(parts)


def decode_message(payload: bytes, *, sender: int = -1,
                   wide: bool = False) -> MetadataMessage:
    """Inverse of :func:`encode_message`."""
    id_format = _id_format(wide)
    id_size = struct.calcsize(id_format)
    (flow_count,) = struct.unpack_from("!H", payload, 0)
    offset = 2
    flows: List[FlowRecord] = []
    for _ in range(flow_count):
        bandwidth_kbps, source, destination, link_count = struct.unpack_from(
            f"!I{id_format}{id_format}{id_format}", payload, offset)
        offset += 4 + 3 * id_size
        link_ids = struct.unpack_from(f"!{link_count}{id_format}",
                                      payload, offset)
        offset += link_count * id_size
        flows.append(FlowRecord(source, destination,
                                bandwidth_kbps * 1000.0, tuple(link_ids)))
    if offset != len(payload):
        raise ValueError(f"trailing bytes in metadata payload "
                         f"({len(payload) - offset})")
    return MetadataMessage(sender=sender, flows=tuple(flows))


def encoded_size(message: MetadataMessage, *, wide: bool = False) -> int:
    """Size in bytes without materializing the encoding."""
    id_size = 2 if wide else 1
    size = 2
    for flow in message.flows:
        size += 4 + 3 * id_size + len(flow.link_ids) * id_size
    return size


def datagram_count(size_bytes: int) -> int:
    """UDP datagrams needed for a payload of ``size_bytes``."""
    if size_bytes <= 0:
        return 0
    return -(-size_bytes // DATAGRAM_PAYLOAD_BYTES)
