"""Spans: the tracing half of the telemetry subsystem.

A *span* is one named, timed region of work — ``collapse.path_table``,
``backend.advance``, ``campaign.point`` — with wall and CPU duration,
arbitrary key-value attributes, and a parent link that makes concurrent
spans form per-thread trees.  The process-local :class:`Tracer` collects
finished spans in memory and (when given a directory) appends each one as
a JSON line to ``trace-<pid>.jsonl``, so any number of worker processes
can trace into the same directory without coordination; the
:mod:`repro.telemetry.export` readers reassemble the forest.

Everything here is built for a *disabled-by-default* hot path: when
tracing is off, :func:`repro.telemetry.span` returns a shared no-op
context manager behind a single boolean branch — no allocation, no clock
read, no lock (the <2 % overhead budget of the engine benchmarks).
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional

__all__ = ["Span", "Tracer", "NullSpan", "NULL_SPAN", "clock", "Stopwatch"]

#: The one timing authority of the telemetry layer: a monotonic
#: high-resolution clock.  Every duration in the repository should come
#: from here (never ``time.time()`` — wall-clock jumps skew durations).
clock: Callable[[], float] = time.perf_counter


class Stopwatch:
    """A tiny monotonic stopwatch for ad-hoc duration measurements.

    ``with Stopwatch() as watch: ...; watch.elapsed`` — the helper the
    campaign executor and the ablation experiments time themselves with,
    so no caller ever reaches for a wall clock again.
    """

    __slots__ = ("started", "elapsed")

    def __init__(self) -> None:
        self.started = clock()
        self.elapsed = 0.0

    def __enter__(self) -> "Stopwatch":
        self.started = clock()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def stop(self) -> float:
        self.elapsed = clock() - self.started
        return self.elapsed

    def restart(self) -> None:
        self.started = clock()


class Span:
    """One in-flight traced region; finished spans become plain dicts."""

    __slots__ = ("tracer", "name", "attrs", "span_id", "parent_id",
                 "start", "start_cpu", "_finished")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any],
                 span_id: int, parent_id: Optional[int]) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = clock()
        self.start_cpu = time.process_time()
        self._finished = False

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes while the span is open."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.finish()

    def finish(self) -> None:
        if self._finished:
            return
        self._finished = True
        self.tracer._finish(self)


class NullSpan:
    """The shared no-op span: what :func:`span` hands out while disabled.

    Supports the whole :class:`Span` surface (``with``, :meth:`set`,
    :meth:`finish`) so instrumentation sites never need a second branch.
    """

    __slots__ = ()

    def set(self, **_attrs: Any) -> "NullSpan":
        return self

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *_exc_info: object) -> None:
        return None

    def finish(self) -> None:
        return None


NULL_SPAN = NullSpan()


class Tracer:
    """Process-local span collector with an optional JSONL sink.

    ``directory=None`` keeps spans in memory only (tests, benchmarks);
    with a directory, every finished span is appended to
    ``<directory>/trace-<pid>.jsonl``.  The file handle is re-opened
    after a ``fork`` (the pid is part of the name), so a process pool
    tracing into a shared directory never interleaves lines.
    """

    def __init__(self, directory: Optional[str] = None, *,
                 keep: int = 200_000) -> None:
        self.directory = None if directory is None else str(directory)
        self.keep = keep
        self.spans: List[Dict[str, Any]] = []
        self.dropped = 0
        self._lock = threading.Lock()
        self._next_id = 1
        self._stack = threading.local()
        self._handle = None
        self._handle_pid: Optional[int] = None
        if self.directory is not None:
            os.makedirs(self.directory, exist_ok=True)

    # ------------------------------------------------------------ span admin
    def _thread_stack(self) -> List[int]:
        stack = getattr(self._stack, "frames", None)
        if stack is None:
            stack = self._stack.frames = []
        return stack

    def start(self, name: str, attrs: Dict[str, Any]) -> Span:
        stack = self._thread_stack()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        span = Span(self, name, attrs, span_id,
                    stack[-1] if stack else None)
        stack.append(span_id)
        return span

    def _finish(self, span: Span) -> None:
        stack = self._thread_stack()
        # Pop back *through* the span: an inner span leaked past an outer
        # finish (a generator abandoned mid-flight, say) must not corrupt
        # the parentage of every later span on this thread.
        if span.span_id in stack:
            del stack[stack.index(span.span_id):]
        record = {
            "name": span.name,
            "id": span.span_id,
            "parent": span.parent_id,
            "start": round(span.start, 9),
            "dur": round(clock() - span.start, 9),
            "cpu": round(time.process_time() - span.start_cpu, 9),
            "pid": os.getpid(),
            "tid": threading.get_ident(),
        }
        if span.attrs:
            record["attrs"] = span.attrs
        with self._lock:
            if len(self.spans) < self.keep:
                self.spans.append(record)
            else:
                self.dropped += 1
            self._write(record)

    # ------------------------------------------------------------- the sink
    def path(self) -> Optional[str]:
        """This process's trace file, or None for a memory-only tracer."""
        if self.directory is None:
            return None
        return os.path.join(self.directory, f"trace-{os.getpid()}.jsonl")

    def _write(self, record: Dict[str, Any]) -> None:
        if self.directory is None:
            return
        pid = os.getpid()
        if self._handle is None or self._handle_pid != pid:
            # First write, or we are a fork child holding the parent's
            # handle: (re)open our own pid-named file.
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
            self._handle = open(self.path(), "a", encoding="utf-8")
            self._handle_pid = pid
        json.dump(record, self._handle, sort_keys=True, default=repr)
        self._handle.write("\n")

    def flush(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None and self._handle_pid == os.getpid():
                try:
                    self._handle.flush()
                    self._handle.close()
                except OSError:
                    pass
            self._handle = None
            self._handle_pid = None
