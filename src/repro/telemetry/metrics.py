"""Metrics: counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` is a named bag of instruments whose
:meth:`~MetricsRegistry.snapshot` is a plain, deterministically ordered
dict — picklable, JSON-serialisable, and mergeable.  That shape is the
whole point: workers embed snapshots in heartbeat documents, the
coordinator :meth:`~MetricsRegistry.merge`\\ s them into the fleet
aggregate published in ``fleet/state.json``, and tests compare snapshots
with ``==``.

Instruments are cheap enough to leave always-on in warm paths (one lock
acquire + one float add); the *hot* paths (per fluid step, per solver
iteration) additionally hide behind :func:`repro.telemetry.enabled` so a
disabled run pays only a boolean check.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Dict, List, Mapping, Optional, Sequence

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_BUCKETS"]

#: Default histogram bucket upper bounds, in seconds: spans the range
#: from one fluid step (~1 ms) to a long campaign point (minutes).
DEFAULT_BUCKETS: Sequence[float] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0,
)


class Counter:
    """A monotonically increasing sum (calls, iterations, seconds)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.value = 0.0
        self._lock = lock

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value (queue depth, active workers)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max.

    Buckets are cumulative-style upper bounds plus an implicit +inf
    overflow bucket, so merged snapshots from workers with identical
    bucket layouts add element-wise.
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum",
                 "min", "max", "_lock")

    def __init__(self, name: str, lock: threading.Lock,
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.bounds: List[float] = sorted(float(b) for b in buckets)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = lock

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.count += 1
            self.sum += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "buckets": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """A thread-safe, mergeable collection of named instruments."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, Any] = {}

    # ------------------------------------------------------------- creation
    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = Histogram(name, self._lock, buckets)
                self._instruments[name] = instrument
            elif not isinstance(instrument, Histogram):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}")
            return instrument

    def _get(self, name: str, cls: type) -> Any:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = cls(name, self._lock)
                self._instruments[name] = instrument
            elif not isinstance(instrument, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}")
            return instrument

    # ------------------------------------------------------------ snapshots
    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Deterministic (name-sorted) plain-dict copy of every metric."""
        with self._lock:
            return {name: self._instruments[name].snapshot()
                    for name in sorted(self._instruments)}

    def merge(self, snapshot: Mapping[str, Mapping[str, Any]]) -> None:
        """Fold another registry's snapshot into this one.

        Counters and histograms add; gauges take the incoming value
        (last writer wins — fleet gauges are per-worker anyway).
        """
        for name in sorted(snapshot):
            doc = snapshot[name]
            kind = doc.get("type")
            if kind == "counter":
                self.counter(name).inc(doc.get("value", 0.0))
            elif kind == "gauge":
                self.gauge(name).set(doc.get("value", 0.0))
            elif kind == "histogram":
                hist = self.histogram(name, doc.get("buckets",
                                                    DEFAULT_BUCKETS))
                incoming = doc.get("counts", [])
                with self._lock:
                    if len(incoming) == len(hist.counts):
                        for i, c in enumerate(incoming):
                            hist.counts[i] += c
                    hist.count += doc.get("count", 0)
                    hist.sum += doc.get("sum", 0.0)
                    low, high = doc.get("min"), doc.get("max")
                    if low is not None and (hist.min is None
                                            or low < hist.min):
                        hist.min = low
                    if high is not None and (hist.max is None
                                             or high > hist.max):
                        hist.max = high

    def delta_since(self, before: Mapping[str, Mapping[str, Any]]
                    ) -> Dict[str, float]:
        """Per-counter increase between an earlier snapshot and now.

        Only counters participate — this is how a worker attributes
        global solver/collapse time to the single point it just ran.
        """
        now = self.snapshot()
        delta: Dict[str, float] = {}
        for name, doc in now.items():
            if doc.get("type") != "counter":
                continue
            prior = before.get(name, {}).get("value", 0.0) \
                if name in before else 0.0
            delta[name] = doc["value"] - prior
        return delta

    def clear(self) -> None:
        with self._lock:
            self._instruments.clear()
