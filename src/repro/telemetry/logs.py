"""Logging setup for the ``repro`` package.

One root logger named ``repro``, configured exactly once from the CLI
(``-v``/``-vv``/``-q``) or programmatically; every module asks
:func:`get_logger` for a child (``repro.campaign.distributed.coordinator``
and friends) so the usual hierarchy and filtering applies.  Nothing here
touches the *global* root logger — embedding applications keep control.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

__all__ = ["configure_logging", "get_logger", "ROOT_LOGGER_NAME"]

ROOT_LOGGER_NAME = "repro"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_DATEFMT = "%H:%M:%S"


def configure_logging(verbosity: int = 0,
                      stream: Optional[object] = None) -> logging.Logger:
    """Install a stream handler on the ``repro`` logger.

    verbosity <= -1 → ERROR, 0 → WARNING, 1 → INFO, >= 2 → DEBUG.
    Re-configuring replaces the previous telemetry-owned handler rather
    than stacking duplicates.
    """
    if verbosity <= -1:
        level = logging.ERROR
    elif verbosity == 0:
        level = logging.WARNING
    elif verbosity == 1:
        level = logging.INFO
    else:
        level = logging.DEBUG

    logger = logging.getLogger(ROOT_LOGGER_NAME)
    logger.setLevel(level)
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_telemetry", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT, _DATEFMT))
    handler._repro_telemetry = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    logger.propagate = False
    return logger


def get_logger(name: str) -> logging.Logger:
    """A child of the ``repro`` logger (pass ``__name__``)."""
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(ROOT_LOGGER_NAME + "." + name)
