"""Trace readers: JSONL loading, Chrome export, and time-share summaries.

The writers in :mod:`repro.telemetry.spans` emit one JSON object per
finished span into ``trace-<pid>.jsonl`` files.  This module is the read
side: it loads a trace directory (or a single file) back into span
dicts, converts them to the Chrome ``trace_event`` format that
``about:tracing`` and Perfetto open directly, and computes the
aggregates behind ``repro trace summary`` / ``repro trace top``.

Layer attribution uses *self time* — a span's duration minus the
duration of its direct children — so nested spans (point → backend
phase → solver) never double-count toward their layer's share.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["load_trace", "to_chrome", "summarize", "top_spans",
           "format_summary", "format_top"]


def load_trace(source: str) -> List[Dict[str, Any]]:
    """Read span records from a trace file or every ``trace-*.jsonl``
    (and ``*.jsonl`` fallback) in a trace directory."""
    paths: List[str] = []
    if os.path.isdir(source):
        names = sorted(os.listdir(source))
        paths = [os.path.join(source, n) for n in names
                 if n.startswith("trace-") and n.endswith(".jsonl")]
        if not paths:
            paths = [os.path.join(source, n) for n in names
                     if n.endswith(".jsonl")]
    elif os.path.isfile(source):
        paths = [source]
    else:
        raise FileNotFoundError(f"no trace at {source}")

    spans: List[Dict[str, Any]] = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            for line_no, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ValueError(
                        f"{path}:{line_no}: invalid span record: {exc}"
                    ) from exc
                if "name" in record and "dur" in record:
                    spans.append(record)
    return spans


# --------------------------------------------------------------- chrome
def to_chrome(spans: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Convert span records to a Chrome ``trace_event`` document.

    Each span becomes a ``"ph": "X"`` complete event with microsecond
    timestamps; pid/tid map straight onto trace rows so multi-process
    campaign traces line up per worker.
    """
    events: List[Dict[str, Any]] = []
    for span in spans:
        event: Dict[str, Any] = {
            "name": span["name"],
            "ph": "X",
            "ts": round(span.get("start", 0.0) * 1e6, 3),
            "dur": round(span.get("dur", 0.0) * 1e6, 3),
            "pid": span.get("pid", 0),
            "tid": span.get("tid", 0),
            "cat": span["name"].split(".", 1)[0],
        }
        if span.get("attrs"):
            event["args"] = span["attrs"]
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


# --------------------------------------------------------------- summary
def _self_times(spans: List[Dict[str, Any]]) -> List[float]:
    """Duration minus direct-child duration for every span, in order.

    Parent links are only unique within one (pid, tid) stream, so the
    child index is keyed accordingly.
    """
    child_sum: Dict[Tuple[Any, Any, Any], float] = {}
    for span in spans:
        parent = span.get("parent")
        if parent is not None:
            key = (span.get("pid"), span.get("tid"), parent)
            child_sum[key] = child_sum.get(key, 0.0) + span.get("dur", 0.0)
    out: List[float] = []
    for span in spans:
        key = (span.get("pid"), span.get("tid"), span.get("id"))
        self_time = span.get("dur", 0.0) - child_sum.get(key, 0.0)
        out.append(max(self_time, 0.0))
    return out


def summarize(spans: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate spans into per-name stats and per-layer time shares.

    The *layer* is the first dot-component of the span name
    (``collapse.path_table`` → ``collapse``); shares are of total self
    time, so they sum to ~1.0 across layers regardless of nesting.
    """
    selfs = _self_times(spans)
    by_name: Dict[str, Dict[str, float]] = {}
    by_layer: Dict[str, float] = {}
    total_self = 0.0
    root_total = 0.0
    for span, self_time in zip(spans, selfs):
        name = span["name"]
        dur = span.get("dur", 0.0)
        stats = by_name.setdefault(
            name, {"count": 0, "total": 0.0, "self": 0.0, "max": 0.0})
        stats["count"] += 1
        stats["total"] += dur
        stats["self"] += self_time
        if dur > stats["max"]:
            stats["max"] = dur
        layer = name.split(".", 1)[0]
        by_layer[layer] = by_layer.get(layer, 0.0) + self_time
        total_self += self_time
        if span.get("parent") is None:
            root_total += dur

    layers = {
        layer: {"self": seconds,
                "share": seconds / total_self if total_self else 0.0}
        for layer, seconds in sorted(by_layer.items(),
                                     key=lambda kv: -kv[1])
    }
    names = {
        name: {**stats, "mean": stats["total"] / stats["count"]}
        for name, stats in sorted(by_name.items(),
                                  key=lambda kv: -kv[1]["total"])
    }
    return {
        "spans": len(spans),
        "root_seconds": root_total,
        "self_seconds": total_self,
        "layers": layers,
        "names": names,
    }


def top_spans(spans: List[Dict[str, Any]],
              count: int = 20) -> List[Dict[str, Any]]:
    """The *count* individually longest spans, longest first."""
    ranked = sorted(spans, key=lambda s: -s.get("dur", 0.0))
    return ranked[:count]


# ------------------------------------------------------------ formatting
def format_summary(summary: Dict[str, Any],
                   *, limit: Optional[int] = 15) -> str:
    lines = [
        f"spans: {summary['spans']}   "
        f"root time: {summary['root_seconds']:.3f}s   "
        f"self time: {summary['self_seconds']:.3f}s",
        "",
        "layer shares (self time):",
    ]
    for layer, doc in summary["layers"].items():
        bar = "#" * int(round(doc["share"] * 40))
        lines.append(f"  {layer:<12} {doc['share']*100:6.1f}%  "
                     f"{doc['self']:9.3f}s  {bar}")
    lines.append("")
    lines.append(f"{'span':<28} {'count':>7} {'total':>9} "
                 f"{'mean':>9} {'max':>9}")
    names = list(summary["names"].items())
    if limit is not None:
        names = names[:limit]
    for name, stats in names:
        lines.append(
            f"{name:<28} {stats['count']:>7d} {stats['total']:>8.3f}s "
            f"{stats['mean']*1e3:>7.2f}ms {stats['max']*1e3:>7.2f}ms")
    return "\n".join(lines)


def format_top(spans: List[Dict[str, Any]]) -> str:
    lines = [f"{'dur':>10} {'cpu':>9} {'name':<28} attrs"]
    for span in spans:
        attrs = span.get("attrs", {})
        attr_text = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        lines.append(
            f"{span.get('dur', 0.0)*1e3:>8.2f}ms "
            f"{span.get('cpu', 0.0)*1e3:>7.2f}ms "
            f"{span['name']:<28} {attr_text}")
    return "\n".join(lines)
