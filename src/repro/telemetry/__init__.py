"""repro.telemetry — zero-dependency tracing, metrics, and logging.

The observability layer of the reproduction.  Three pieces:

* **Spans** (:mod:`.spans`): ``with span("collapse.path_table",
  services=n): ...`` records a named, attributed, nested region with
  wall + CPU time.  A process-local :class:`.Tracer` keeps finished
  spans in memory and, when tracing into a directory, appends each to
  ``trace-<pid>.jsonl`` — multiple campaign worker processes share one
  directory safely.
* **Metrics** (:mod:`.metrics`): counters / gauges / fixed-bucket
  histograms in a :class:`.MetricsRegistry` whose snapshots are
  deterministic plain dicts — picklable, mergeable, heartbeat-sized.
* **Export** (:mod:`.export`): trace loading, Chrome ``trace_event``
  conversion for about:tracing / Perfetto, and the per-layer time-share
  summaries behind ``repro trace summary``.

Tracing is **off by default** and the guard is one branch: ``span()``
returns a shared no-op object unless :func:`enable` has run.  Setting
``REPRO_TRACE=<dir>`` in the environment enables tracing at import time,
which is how campaign worker processes (fork *or* spawn) inherit the
parent's ``--trace`` flag.
"""

from __future__ import annotations

import os
from typing import Any, Optional

from .spans import NULL_SPAN, NullSpan, Span, Stopwatch, Tracer, clock
from .metrics import (Counter, DEFAULT_BUCKETS, Gauge, Histogram,
                      MetricsRegistry)
from .export import (format_summary, format_top, load_trace, summarize,
                     to_chrome, top_spans)
from .logs import configure_logging, get_logger

__all__ = [
    "span", "enable", "disable", "enabled", "tracer", "flush",
    "Span", "NullSpan", "Tracer", "Stopwatch", "clock",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_BUCKETS",
    "metrics",
    "load_trace", "to_chrome", "summarize", "top_spans",
    "format_summary", "format_top",
    "configure_logging", "get_logger",
    "TRACE_ENV_VAR",
]

#: Environment variable that switches tracing on for this process and
#: every child: ``REPRO_TRACE=<dir>`` traces into files under <dir>,
#: ``REPRO_TRACE=1`` (or any non-path truthy value) traces in memory.
TRACE_ENV_VAR = "REPRO_TRACE"

#: The process-global metrics registry.  Instrumented modules hang their
#: counters off this; per-worker registries (fleet) are separate
#: MetricsRegistry instances.
metrics = MetricsRegistry()

_enabled = False
_tracer: Optional[Tracer] = None


def enabled() -> bool:
    """The one branch hot paths check before touching telemetry."""
    return _enabled


def tracer() -> Optional[Tracer]:
    """The active tracer, or None while disabled."""
    return _tracer


def enable(directory: Optional[str] = None) -> Tracer:
    """Turn tracing on (idempotent; a new directory replaces the sink).

    With *directory*, spans stream to ``<directory>/trace-<pid>.jsonl``
    and ``REPRO_TRACE`` is exported so worker subprocesses trace into
    the same place; without, spans stay in memory only.
    """
    global _enabled, _tracer
    if _tracer is not None and _tracer.directory == (
            None if directory is None else str(directory)):
        _enabled = True
        return _tracer
    if _tracer is not None:
        _tracer.close()
    _tracer = Tracer(directory)
    _enabled = True
    if directory is not None:
        os.environ[TRACE_ENV_VAR] = str(directory)
    return _tracer


def disable() -> None:
    global _enabled, _tracer
    _enabled = False
    if _tracer is not None:
        _tracer.close()
    _tracer = None
    os.environ.pop(TRACE_ENV_VAR, None)


def flush() -> None:
    if _tracer is not None:
        _tracer.flush()


def span(name: str, **attrs: Any):
    """Open a span — or hand back the shared no-op when tracing is off.

    Usable as a context manager::

        with telemetry.span("backend.advance", backend="fluid") as sp:
            ...
            sp.set(steps=n)
    """
    if not _enabled:
        return NULL_SPAN
    return _tracer.start(name, attrs)


def _env_autoenable() -> None:
    value = os.environ.get(TRACE_ENV_VAR, "").strip()
    if not value or value.lower() in ("0", "false", "no", "off"):
        return
    if value.lower() in ("1", "true", "yes", "on", "mem", "memory"):
        enable(None)
    else:
        enable(value)


_env_autoenable()
