"""The packet unit exchanged over the packet-level data planes."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["Packet"]

_sequence = itertools.count()


@dataclass
class Packet:
    """One network packet (sizes in bits).

    ``kind`` tags the traffic type (``data``, ``icmp``, ``ack``, ``rpc``);
    ``payload`` carries opaque application data; ``created`` is stamped by
    the sender so receivers can measure one-way delay and RTT.
    """

    source: str
    destination: str
    size_bits: float
    kind: str = "data"
    payload: Any = None
    created: float = 0.0
    seq: int = field(default_factory=lambda: next(_sequence))
    hops: int = 0

    def age(self, now: float) -> float:
        return now - self.created
