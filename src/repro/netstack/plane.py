"""The data-plane interface shared by all network implementations."""

from __future__ import annotations

from typing import Callable, Optional, Protocol

from repro.netstack.packet import Packet

__all__ = ["DataPlane", "DeliveryCallback"]

DeliveryCallback = Callable[[Packet], None]


class DataPlane(Protocol):
    """Anything that can carry packets between containers.

    Implementations: :class:`~repro.netstack.fullnet.FullStateNetwork`
    (ground truth / full-state emulators) and
    :class:`~repro.netstack.kollapsnet.KollapsDataPlane` (the collapsed
    emulation).  Applications are written against this protocol only, so the
    same unmodified workload runs on either plane — the reproduction of the
    paper's "unmodified application" property.
    """

    def send(self, packet: Packet, deliver: DeliveryCallback, *,
             on_drop: Optional[DeliveryCallback] = None) -> None:
        """Inject ``packet``; ``deliver`` fires at the destination."""
        ...

    def reachable(self, source: str, destination: str) -> bool:
        """Whether the plane currently routes source -> destination."""
        ...
