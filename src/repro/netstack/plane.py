"""The data-plane interface shared by all network implementations."""

from __future__ import annotations

from typing import Callable, FrozenSet, Optional, Protocol

from repro.netstack.packet import Packet

__all__ = ["DataPlane", "DeliveryCallback", "PACKET_PLANE", "BULK_PLANE",
           "probe_planes"]

PACKET_PLANE = "packet"
BULK_PLANE = "bulk"

DeliveryCallback = Callable[[Packet], None]


class DataPlane(Protocol):
    """Anything that can carry packets between containers.

    Implementations: :class:`~repro.netstack.fullnet.FullStateNetwork`
    (ground truth / full-state emulators) and
    :class:`~repro.netstack.kollapsnet.KollapsDataPlane` (the collapsed
    emulation).  Applications are written against this protocol only, so the
    same unmodified workload runs on either plane — the reproduction of the
    paper's "unmodified application" property.
    """

    def send(self, packet: Packet, deliver: DeliveryCallback, *,
             on_drop: Optional[DeliveryCallback] = None) -> None:
        """Inject ``packet``; ``deliver`` fires at the destination."""
        ...

    def reachable(self, source: str, destination: str) -> bool:
        """Whether the plane currently routes source -> destination."""
        ...


def probe_planes(system: object) -> FrozenSet[str]:
    """Which data planes a live system actually exposes.

    Structural probing, the runtime counterpart of a backend's declared
    :class:`~repro.scenario.backends.BackendCapabilities`: a packet plane
    is a ``dataplane`` implementing :class:`DataPlane`, a bulk plane is a
    ``fluid`` engine plus the ``start_flow``/``stop_flow`` verbs.
    """
    planes = set()
    dataplane = getattr(system, "dataplane", None)
    if dataplane is not None and callable(getattr(dataplane, "send", None)) \
            and callable(getattr(dataplane, "reachable", None)):
        planes.add(PACKET_PLANE)
    if getattr(system, "fluid", None) is not None \
            and callable(getattr(system, "start_flow", None)) \
            and callable(getattr(system, "stop_flow", None)):
        planes.add(BULK_PLANE)
    return frozenset(planes)
