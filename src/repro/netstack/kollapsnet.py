"""The Kollaps data plane: per-sender TCAL shaping, end-to-end delivery.

A packet leaving a container passes through that container's TCAL chain
(netem: latency + jitter + loss, then htb: bandwidth) and is then handed
directly to the destination container — no intermediate network elements
exist (§1, Figure 1 right).  A small *infrastructure delay* models the real
deployment's container networking and, for containers on different physical
machines, the cluster switch; the paper measures exactly these two effects
as Kollaps's residual error in Table 4.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.netstack.packet import Packet
from repro.sim import Simulator
from repro.tc.htb import BackPressure
from repro.tc.tcal import Tcal

__all__ = ["KollapsDataPlane"]


class KollapsDataPlane:
    """Collapsed-topology packet delivery driven by per-container TCALs."""

    def __init__(self, sim: Simulator, *,
                 placement: Optional[Dict[str, str]] = None,
                 container_network_delay: float = 35e-6,
                 physical_network_delay: float = 80e-6) -> None:
        """``placement`` maps containers to physical machine names; packets
        between containers on different machines incur
        ``physical_network_delay`` on top of the per-packet
        ``container_network_delay`` (Docker overlay cost).  Defaults follow
        the sub-0.1 ms deviations reported in §5.5."""
        self.sim = sim
        self.placement = placement or {}
        self.container_network_delay = container_network_delay
        self.physical_network_delay = physical_network_delay
        self._tcals: Dict[str, Tcal] = {}
        self.packets_delivered = 0
        self.packets_dropped = 0
        self.backpressure_events = 0
        # Blocked senders wait FIFO per shaping chain, like processes
        # blocked on a socket write; one drain event per chain at a time.
        self._blocked: Dict[Tuple[str, str], Deque] = {}
        self._drain_scheduled: Dict[Tuple[str, str], bool] = {}

    def attach_tcal(self, container: str, tcal: Tcal) -> None:
        self._tcals[container] = tcal

    def tcal_for(self, container: str) -> Tcal:
        try:
            return self._tcals[container]
        except KeyError:
            raise KeyError(f"no TCAL attached for {container!r}") from None

    def reachable(self, source: str, destination: str) -> bool:
        tcal = self._tcals.get(source)
        return tcal is not None and destination in tcal.destinations()

    def infrastructure_delay(self, source: str, destination: str) -> float:
        """Container networking + (if cross-machine) the physical hop."""
        delay = self.container_network_delay
        if self.placement.get(source) != self.placement.get(destination):
            delay += self.physical_network_delay
        return delay

    def send(self, packet: Packet,
             deliver: Callable[[Packet], None], *,
             on_drop: Optional[Callable[[Packet], None]] = None,
             on_backpressure: Optional[Callable[[Packet, float], None]] = None
             ) -> None:
        """Shape and deliver ``packet``.

        netem drops invoke ``on_drop``; a full htb queue invokes
        ``on_backpressure`` with the earliest retry time (mirroring a
        blocked/zero-byte socket write) or, absent that handler, silently
        retries at that time — matching blocking-I/O semantics.
        """
        tcal = self.tcal_for(packet.source)
        if packet.destination not in tcal.destinations():
            if on_drop is not None:
                on_drop(packet)
            return
        chain = (packet.source, packet.destination)
        waiting = self._blocked.get(chain)
        if waiting:
            # Senders already blocked on this chain go first (FIFO order,
            # like writers queued on a socket).
            self.backpressure_events += 1
            waiting.append((packet, deliver, on_drop, on_backpressure))
            return
        try:
            release = tcal.egress(self.sim.now, packet.destination,
                                  packet.size_bits)
        except BackPressure as pressure:
            self.backpressure_events += 1
            if on_backpressure is not None:
                # Non-blocking semantics: the sender is told EAGAIN and
                # may abandon the datagram — that unmet offered load is
                # what the congestion model reads as "requested" (§3).
                tcal.shaping_for(packet.destination).record_refused(
                    packet.size_bits)
                on_backpressure(packet, pressure.retry_at)
            else:
                # Blocking semantics: the packet waits and is carried
                # later, so it is queueing delay, not refused demand.
                self._block(chain, packet, deliver, on_drop,
                            on_backpressure, pressure.retry_at)
            return
        if release is None:  # netem loss (intrinsic or congestion-injected)
            self.packets_dropped += 1
            if on_drop is not None:
                on_drop(packet)
            return
        packet.hops += 1
        arrival = release + self.infrastructure_delay(packet.source,
                                                      packet.destination)

        def _deliver():
            self.packets_delivered += 1
            deliver(packet)

        self.sim.at(arrival, _deliver, label="kollaps-deliver")

    # ----------------------------------------------------- blocked senders
    def _block(self, chain, packet, deliver, on_drop, on_backpressure,
               retry_at: float) -> None:
        queue = self._blocked.setdefault(chain, deque())
        queue.append((packet, deliver, on_drop, on_backpressure))
        self._schedule_drain(chain, retry_at)

    def _schedule_drain(self, chain, at: float) -> None:
        if self._drain_scheduled.get(chain):
            return
        self._drain_scheduled[chain] = True
        # Strictly after "now": a drain re-armed at the current instant
        # would re-run against an unchanged queue forever.
        self.sim.at(max(at, self.sim.now + 1e-9), lambda: self._drain(chain),
                    label="kollaps-drain")

    def _drain(self, chain) -> None:
        """Admit blocked senders head-of-line until the queue fills again."""
        self._drain_scheduled[chain] = False
        queue = self._blocked.get(chain)
        tcal = self._tcals.get(chain[0])
        while queue:
            packet, deliver, on_drop, on_backpressure = queue[0]
            if tcal is None or chain[1] not in tcal.destinations():
                queue.popleft()
                if on_drop is not None:
                    on_drop(packet)
                continue
            try:
                release = tcal.egress(self.sim.now, chain[1],
                                      packet.size_bits)
            except BackPressure as pressure:
                self._schedule_drain(chain, pressure.retry_at)
                return
            queue.popleft()
            if release is None:
                self.packets_dropped += 1
                if on_drop is not None:
                    on_drop(packet)
                continue
            packet.hops += 1
            arrival = release + self.infrastructure_delay(*chain)
            self.sim.at(arrival,
                        lambda packet=packet, deliver=deliver:
                        (self._mark_delivered(), deliver(packet)),
                        label="kollaps-deliver")
        if queue is not None and not queue:
            self._blocked.pop(chain, None)

    def _mark_delivered(self) -> None:
        self.packets_delivered += 1
