"""Network data planes.

Two packet-granularity planes share one interface (:class:`DataPlane`):

* :class:`~repro.netstack.fullnet.FullStateNetwork` — the ground truth: every
  physical link and switch of the topology is emulated hop-by-hop (what a
  bare-metal deployment, or a full-state emulator like Mininet, does).
* :class:`~repro.netstack.kollapsnet.KollapsDataPlane` — the collapsed plane:
  packets traverse only the sender's TCAL chain (netem + htb) and are then
  delivered end-to-end, exactly the Kollaps data path.

Bulk TCP/UDP throughput is modelled by the time-stepped fluid engine in
:mod:`repro.netstack.fluid`; short-flow (connection-per-request) transfer
times by the analytic model in :mod:`repro.netstack.shortflow`.
"""

from repro.netstack.packet import Packet
from repro.netstack.link import PacketLink
from repro.netstack.plane import DataPlane
from repro.netstack.fullnet import FullStateNetwork
from repro.netstack.kollapsnet import KollapsDataPlane
from repro.netstack.shortflow import short_flow_transfer_time

__all__ = [
    "Packet",
    "PacketLink",
    "DataPlane",
    "FullStateNetwork",
    "KollapsDataPlane",
    "short_flow_transfer_time",
]
