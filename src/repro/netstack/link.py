"""A physical packet link: serialization, propagation, queueing, tail drop.

Unlike the htb qdisc (which back-pressures, see :mod:`repro.tc.htb`), a
router/switch egress port *drops* packets once its buffer fills — the
behavioural difference §3 "Congestion" revolves around.
"""

from __future__ import annotations

import random
from typing import Callable, Optional  # noqa: F401 (Callable in annotations)

from repro.netstack.packet import Packet
from repro.sim import Simulator
from repro.topology.model import LinkProperties

__all__ = ["PacketLink"]


class PacketLink:
    """One unidirectional link with a finite FIFO output buffer."""

    def __init__(self, sim: Simulator, properties: LinkProperties, *,
                 buffer_bits: float = 1500 * 8.0 * 100,
                 rng: Optional[random.Random] = None,
                 name: str = "") -> None:
        self.sim = sim
        self.properties = properties
        self.buffer_bits = buffer_bits
        self.rng = rng
        self.name = name
        self._horizon = 0.0  # when the transmitter frees up
        self.packets_sent = 0
        self.packets_dropped = 0
        self.bits_sent = 0.0
        # Bulk (fluid-plane) traffic currently occupying this wire, bits/s;
        # packets serialize into what is left.  The packet aggregate keeps
        # at least half the wire — the fair equilibrium against an equally
        # greedy bulk aggregate (mirrors GroundTruthConstraints).
        self.background_load: Optional[Callable[[], float]] = None

    def effective_bandwidth(self) -> float:
        bandwidth = self.properties.bandwidth
        if bandwidth == float("inf") or self.background_load is None:
            return bandwidth
        occupied = self.background_load()
        return max(bandwidth - occupied, bandwidth / 2.0)

    def backlog_bits(self, now: float) -> float:
        bandwidth = self.effective_bandwidth()
        if bandwidth == float("inf"):
            return 0.0
        return max(0.0, (self._horizon - now) * bandwidth)

    def _sample_delay(self) -> float:
        properties = self.properties
        if properties.jitter <= 0.0:
            return properties.latency
        rng = self.rng or random
        if properties.jitter_distribution == "uniform":
            half_width = properties.jitter * (3.0 ** 0.5)
            noise = rng.uniform(-half_width, half_width)
        else:
            noise = rng.gauss(0.0, properties.jitter)
        return max(properties.latency * 0.5, properties.latency + noise)

    def transmit(self, packet: Packet,
                 deliver: Callable[[Packet], None]) -> bool:
        """Enqueue ``packet``; schedules ``deliver`` at arrival time.

        Returns ``False`` when the packet is dropped (buffer overflow or
        random link loss), ``True`` when delivery was scheduled.
        """
        now = self.sim.now
        if self.properties.bandwidth != float("inf") and \
                self.backlog_bits(now) + packet.size_bits > self.buffer_bits:
            self.packets_dropped += 1
            return False
        loss = self.properties.loss
        if loss > 0.0 and (self.rng or random).random() < loss:
            self.packets_dropped += 1
            return False
        bandwidth = self.effective_bandwidth()
        if bandwidth == float("inf"):
            finish = now
        else:
            start = max(now, self._horizon)
            finish = start + packet.size_bits / bandwidth
            self._horizon = finish
        arrival = finish + self._sample_delay()
        self.packets_sent += 1
        self.bits_sent += packet.size_bits
        packet.hops += 1
        self.sim.at(arrival, lambda: deliver(packet), label=f"link:{self.name}")
        return True
