"""The full-state packet network: every link and switch emulated hop-by-hop.

This is the substrate that plays two roles in the evaluation:

* **bare-metal ground truth** — with zero switch overhead it behaves like
  the authors' physical testbed (§5.3's 1 Gb/s switch, the reference every
  deviation is measured against);
* **full-state emulators** — the Mininet/Maxinet baselines reuse it with
  non-zero per-packet switch processing costs and per-connection state (see
  :mod:`repro.baselines`).

Routing is static shortest-path, recomputed whenever the topology changes
(switch forwarding tables in a real deployment).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.collapse import collapse
from repro.netstack.link import PacketLink
from repro.netstack.packet import Packet
from repro.sim import RngRegistry, Simulator

from repro.topology.model import Topology

__all__ = ["FullStateNetwork", "SwitchModel"]


class SwitchModel:
    """Per-switch processing costs for full-state emulation baselines.

    The switch is one CPU shared between two kinds of work, serialized on a
    single horizon:

    * **forwarding** — every packet takes ``1/capacity_packets_per_s`` of
      CPU (plus the fixed ``forward_delay`` pipeline latency);
    * **connection setup** — the first packet of a connection misses the
      flow table and pays ``connection_setup_cost`` of CPU before it can be
      forwarded.

    Established flows therefore cross the switch in microseconds — which is
    why Mininet's ping RTTs beat Kollaps's in Table 4 (no container
    networking, no physical hop) — while connection-per-request workloads
    hammer the control path and collapse as load grows (Figure 6).  The
    paper names exactly this state maintenance as Mininet's short-flow
    weakness.
    """

    def __init__(self, forward_delay: float = 0.0,
                 connection_setup_cost: float = 0.0,
                 capacity_packets_per_s: float = float("inf")) -> None:
        self.forward_delay = forward_delay
        self.connection_setup_cost = connection_setup_cost
        self.capacity_packets_per_s = capacity_packets_per_s
        self.connections: set = set()
        self.packets_forwarded = 0
        self.setups = 0
        self._horizon = 0.0

    def processing_delay(self, now: float, connection_key) -> float:
        """Delay this switch adds to one packet of ``connection_key``."""
        service = 0.0
        if connection_key is not None and \
                connection_key not in self.connections:
            self.connections.add(connection_key)
            self.setups += 1
            service += self.connection_setup_cost
        if self.capacity_packets_per_s != float("inf"):
            service += 1.0 / self.capacity_packets_per_s
        delay = self.forward_delay
        if service > 0.0:
            # Queue on the shared CPU: setups delay forwarding and
            # vice versa.
            start = max(now, self._horizon)
            self._horizon = start + service
            delay += (start - now) + service
        self.packets_forwarded += 1
        return delay


class FullStateNetwork:
    """Hop-by-hop packet forwarding over the complete topology."""

    def __init__(self, sim: Simulator, topology: Topology, *,
                 rng: Optional[RngRegistry] = None,
                 switch_model_factory: Optional[Callable[[str], SwitchModel]] = None,
                 buffer_bits: float = 1500 * 8.0 * 100) -> None:
        self.sim = sim
        self.rng = rng or RngRegistry(0)
        self.switch_model_factory = switch_model_factory
        self.buffer_bits = buffer_bits
        self.topology: Optional[Topology] = None
        self._links: Dict[int, PacketLink] = {}
        self._routes: Dict[Tuple[str, str], List[int]] = {}
        self.switches: Dict[str, SwitchModel] = {}
        self._background_lookup: Optional[Callable[[int], float]] = None
        # Windowed per-link packet rates (EWMA), maintained by the usage
        # monitor; what the fluid plane reads as occupied capacity.
        self._packet_rates: Dict[int, float] = {}
        self._monitor_baseline: Dict[int, float] = {}
        self._monitor: Optional[object] = None
        self.install_topology(topology)

    def install_topology(self, topology: Topology) -> None:
        """(Re)build links, switches and routes — a topology change event."""
        self.topology = topology
        self._links = {}
        for link in topology.links():
            stream = self.rng.stream(f"link:{link.link_id}")
            self._links[link.link_id] = PacketLink(
                self.sim, link.properties, buffer_bits=self.buffer_bits,
                rng=stream, name=f"{link.source}->{link.destination}")
        collapsed = collapse(topology)
        self._routes = {}
        self._route_nodes: Dict[Tuple[str, str], Tuple[str, ...]] = {}
        for path in collapsed.paths():
            key = (path.source, path.destination)
            self._routes[key] = list(path.link_ids)
            self._route_nodes[key] = path.node_path
        for name in topology.bridges:
            if name not in self.switches and self.switch_model_factory:
                self.switches[name] = self.switch_model_factory(name)
        if self._background_lookup is not None:
            self._apply_background_load()
        self._monitor_baseline = {}

    # ------------------------------------------------ cross-plane coupling
    def set_background_load(self, lookup: Callable[[int], float]) -> None:
        """Couple the fluid plane in: bulk traffic occupies link capacity.

        ``lookup(link_id)`` returns the bulk bits/s currently allocated on
        that physical link (:meth:`repro.netstack.fluid.FluidEngine.link_rate`).
        """
        self._background_lookup = lookup
        self._apply_background_load()

    def _apply_background_load(self) -> None:
        for link_id, link in self._links.items():
            link.background_load = (
                lambda lid=link_id: self._background_lookup(lid))

    def start_usage_monitor(self, period: float = 0.05,
                            alpha: float = 0.5) -> None:
        """Sample per-link packet rates every ``period`` seconds (EWMA).

        The counterpart of the Emulation Manager's usage polling, but for
        the ground-truth systems: it feeds
        :class:`~repro.netstack.fluid.GroundTruthConstraints` the packet
        plane's share of each wire.
        """
        if self._monitor is not None:
            return

        def sample() -> None:
            for link_id, link in self._links.items():
                previous = self._monitor_baseline.get(link_id, 0.0)
                delta = link.bits_sent - previous
                self._monitor_baseline[link_id] = link.bits_sent
                rate = max(delta, 0.0) / period
                smoothed = (alpha * rate
                            + (1.0 - alpha) * self._packet_rates.get(link_id,
                                                                     0.0))
                self._packet_rates[link_id] = smoothed

        from repro.sim import Process
        self._monitor = Process(self.sim, period, sample,
                                name="packet-usage-monitor", priority=9)

    def packet_rate(self, link_id: int) -> float:
        """Recent packet-plane bits/s on ``link_id`` (0 before monitoring)."""
        return self._packet_rates.get(link_id, 0.0)

    def reachable(self, source: str, destination: str) -> bool:
        return (source, destination) in self._routes

    def link_for_id(self, link_id: int) -> PacketLink:
        return self._links[link_id]

    def send(self, packet: Packet, deliver, *, on_drop=None) -> None:
        route = self._routes.get((packet.source, packet.destination))
        if route is None:
            if on_drop is not None:
                on_drop(packet)
            return
        nodes = self._route_nodes[(packet.source, packet.destination)]
        self._forward(packet, route, nodes, 0, deliver, on_drop)

    def _forward(self, packet: Packet, route: List[int],
                 nodes: Tuple[str, ...], hop: int, deliver, on_drop) -> None:
        if hop >= len(route):
            deliver(packet)
            return
        # Switch processing before entering hop's egress link (the node at
        # position `hop` is the forwarding element, except the source host).
        extra_delay = 0.0
        if hop > 0:
            switch = self.switches.get(nodes[hop])
            if switch is not None:
                connection = (packet.source, packet.destination, packet.kind)
                extra_delay = switch.processing_delay(self.sim.now, connection)
        link = self._links.get(route[hop])
        if link is None:
            if on_drop is not None:
                on_drop(packet)
            return

        def enter_link(packet=packet):
            ok = link.transmit(
                packet,
                lambda p: self._forward(p, route, nodes, hop + 1,
                                        deliver, on_drop))
            if not ok and on_drop is not None:
                on_drop(packet)

        if extra_delay > 0.0:
            self.sim.after(extra_delay, enter_link)
        else:
            enter_link()

    # ------------------------------------------------------------- telemetry
    def total_packets_dropped(self) -> int:
        return sum(link.packets_dropped for link in self._links.values())

    def total_bits_sent(self) -> float:
        return sum(link.bits_sent for link in self._links.values())
