"""The fluid integrator and its constraint providers.

Every step the engine asks its :class:`ConstraintProvider` how the world
currently constrains each flow:

* :class:`GroundTruthConstraints` — physical link capacities along each
  flow's (collapsed) route: this is what a bare-metal network, or an
  emulator that models every element, enforces.
* :class:`ShapedConstraints` — one private pseudo-link per flow whose
  capacity is the sender's htb rate towards that destination, plus the
  netem loss probability: this is what a Kollaps-emulated container
  experiences (its world *is* the TCAL chain).

Offered rates are allocated with the RTT-weighted max-min solver (the
equilibrium of competing TCP flows); flows that offered more than they were
granted at a saturated link receive a loss signal, and netem loss is drawn
per-packet from a seeded stream.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

from repro import telemetry
from repro.core.collapse import CollapsedTopology, collapse
from repro.core.sharing import FlowDemand, rtt_aware_max_min
from repro.netstack.fluid.flow import FluidFlow
from repro.sim import Process, RngRegistry, Simulator
from repro.topology.model import Topology

__all__ = ["FluidEngine", "ConstraintProvider", "GroundTruthConstraints",
           "ShapedConstraints"]


class ConstraintProvider:
    """How the network constrains flows at this instant."""

    # Whether a saturated constraint drops packets (router/switch buffers)
    # or merely back-pressures the sender (htb + TSQ, §3 "Congestion"): the
    # defining behavioural difference between the ground-truth network and
    # a Kollaps-shaped container, and the reason Kollaps must inject netem
    # loss explicitly.
    saturation_drops: bool = True

    def constraints_for(self, flows: List[FluidFlow]) -> Tuple[
            Mapping[int, float], Dict[Hashable, Tuple[int, ...]],
            Dict[Hashable, float]]:
        """Return (link capacities, flow -> link ids, flow -> loss prob)."""
        raise NotImplementedError

    def rtt_for(self, flow: FluidFlow) -> float:
        """Base round-trip time the flow currently experiences."""
        raise NotImplementedError


class GroundTruthConstraints(ConstraintProvider):
    """Physical links along each flow's route (bare-metal behaviour).

    ``packet_rate`` optionally reports the packet plane's recent bits/s on
    a link id; bulk flows then see that share of the wire as occupied.
    The two planes arbitrate max-min style: the fluid aggregate never gets
    pushed below half the wire while the packet plane is active (and the
    packet plane is throttled symmetrically, see
    :meth:`~repro.netstack.fullnet.FullStateNetwork.set_background_load`),
    which is the equilibrium of TCP aggregates sharing a link.
    """

    def __init__(self, topology: Topology, *,
                 packet_rate: Optional[Callable[[int], float]] = None
                 ) -> None:
        self.packet_rate = packet_rate
        self.install_topology(topology)

    def install_topology(self, topology: Topology) -> None:
        self.topology = topology
        self.collapsed = collapse(topology)
        self._capacities = {link.link_id: link.properties.bandwidth
                            for link in topology.links()}

    def _effective_capacities(self) -> Mapping[int, float]:
        if self.packet_rate is None:
            return self._capacities
        effective: Dict[int, float] = {}
        for link_id, capacity in self._capacities.items():
            if capacity == float("inf"):
                effective[link_id] = capacity
                continue
            occupied = self.packet_rate(link_id)
            effective[link_id] = max(capacity - occupied, capacity / 2.0)
        return effective

    def constraints_for(self, flows):
        routes: Dict[Hashable, Tuple[int, ...]] = {}
        loss: Dict[Hashable, float] = {}
        for flow in flows:
            path = self.collapsed.path(flow.source, flow.destination)
            if path is None:
                routes[flow.key] = ()
                loss[flow.key] = 1.0
                continue
            routes[flow.key] = path.link_ids
            loss[flow.key] = path.properties.loss
        return self._effective_capacities(), routes, loss

    def rtt_for(self, flow: FluidFlow) -> float:
        forward = self.collapsed.path(flow.source, flow.destination)
        backward = self.collapsed.path(flow.destination, flow.source)
        if forward is None or backward is None:
            return flow.rtt
        return forward.latency + backward.latency


class ShapedConstraints(ConstraintProvider):
    """Per-flow htb rate + netem loss, as seen inside a Kollaps container.

    The provider reads each sender's TCAL lazily through ``tcal_lookup`` so
    rate/loss changes made by the Emulation Manager between steps take
    effect immediately — exactly like the kernel picking up a netlink
    update.
    """

    # htb back-pressures instead of dropping: a flow capped by its shaping
    # class receives no loss signal (that is netem's job, via the EM).
    saturation_drops = False

    def __init__(self, tcal_lookup: Callable[[str], "object"],
                 rtt_lookup: Callable[[str, str], float]) -> None:
        self.tcal_lookup = tcal_lookup
        self.rtt_lookup = rtt_lookup
        self._pseudo_ids: Dict[Hashable, int] = {}

    def _pseudo_link(self, key: Hashable) -> int:
        if key not in self._pseudo_ids:
            self._pseudo_ids[key] = len(self._pseudo_ids)
        return self._pseudo_ids[key]

    def constraints_for(self, flows):
        capacities: Dict[int, float] = {}
        routes: Dict[Hashable, Tuple[int, ...]] = {}
        loss: Dict[Hashable, float] = {}
        for flow in flows:
            tcal = self.tcal_lookup(flow.source)
            if tcal is None or flow.destination not in tcal.destinations():
                routes[flow.key] = ()
                loss[flow.key] = 1.0
                continue
            shaping = tcal.shaping_for(flow.destination)
            pseudo = self._pseudo_link((flow.source, flow.destination))
            capacities[pseudo] = shaping.htb.rate
            routes[flow.key] = (pseudo,)
            loss[flow.key] = shaping.netem.loss
        return capacities, routes, loss

    def rtt_for(self, flow: FluidFlow) -> float:
        return self.rtt_lookup(flow.source, flow.destination)


class FluidEngine:
    """Fixed-step integrator over a set of :class:`FluidFlow` objects."""

    def __init__(self, sim: Simulator, provider: ConstraintProvider, *,
                 dt: float = 0.010, rng: Optional[RngRegistry] = None,
                 buffer_bits: float = 1500 * 8.0 * 400,
                 usage_recorder: Optional[Callable[[FluidFlow, float], None]] = None,
                 pressure_recorder: Optional[Callable[[FluidFlow, float], None]] = None
                 ) -> None:
        """``buffer_bits`` models the bottleneck queue a flow may occupy
        before overflow: a window-limited flow only receives a loss signal
        once its standing queue (``cwnd - achieved * RTT``) exceeds it, which
        is what lets a single TCP flow hold a link near 100 % utilisation."""
        self.sim = sim
        self.provider = provider
        self.dt = dt
        self.rng = (rng or RngRegistry(0)).stream("fluid-loss")
        self.buffer_bits = buffer_bits
        self.usage_recorder = usage_recorder
        # Offered-minus-achieved, reported like htb back-pressure so the
        # Emulation Manager can see a window-inflated sender pushing past
        # its shaping (the "requested bandwidth" of §3's congestion model).
        self.pressure_recorder = pressure_recorder
        self.flows: Dict[Hashable, FluidFlow] = {}
        self.history: List[Tuple[float, Dict[Hashable, float]]] = []
        self.record_history = True
        # Allocated bits/s per link id last step — what the packet plane
        # reads to model bulk traffic occupying shared wires.
        self._link_rates: Dict[int, float] = {}
        self._process = Process(sim, dt, self._step, name="fluid-engine",
                                priority=10)

    # ----------------------------------------------------------- flow admin
    def add_flow(self, flow: FluidFlow) -> FluidFlow:
        if flow.key in self.flows:
            raise ValueError(f"duplicate flow key {flow.key!r}")
        flow.rtt = max(self.provider.rtt_for(flow), 1e-4)
        self.flows[flow.key] = flow
        return flow

    def remove_flow(self, key: Hashable) -> None:
        self.flows.pop(key, None)

    def active_flows(self) -> List[FluidFlow]:
        now = self.sim.now
        return [flow for flow in self.flows.values()
                if not flow.finished and flow.start_time <= now]

    def throughput(self, key: Hashable) -> float:
        flow = self.flows.get(key)
        return flow.achieved_rate if flow is not None else 0.0

    def link_rate(self, link_id: int) -> float:
        """Bulk traffic allocated over ``link_id`` in the last step."""
        return self._link_rates.get(link_id, 0.0)

    # ------------------------------------------------------------- stepping
    def _step(self) -> None:
        if telemetry.enabled():
            with telemetry.span("fluid.step",
                                flows=len(self.flows)) as trace:
                self._step_inner()
                trace.set(t=round(self.sim.now, 6))
            telemetry.metrics.counter("fluid.steps").inc()
        else:
            self._step_inner()

    def _step_inner(self) -> None:
        flows = self.active_flows()
        if not flows:
            self._link_rates = {}
            if self.record_history:
                self.history.append((self.sim.now, {}))
            return
        capacities, routes, loss = self.provider.constraints_for(flows)
        demands = []
        for flow in flows:
            flow.rtt = max(self.provider.rtt_for(flow), 1e-4)
            demands.append(FlowDemand(
                key=flow.key, rtt=flow.rtt, links=routes.get(flow.key, ()),
                demand=flow.desired_rate()))
        allocation = rtt_aware_max_min(demands, capacities)

        # Which links are saturated this step (for loss signalling)?
        link_usage: Dict[int, float] = {}
        for flow in flows:
            for link_id in routes.get(flow.key, ()):
                link_usage[link_id] = link_usage.get(link_id, 0.0) + \
                    allocation.get(flow.key, 0.0)
        saturated = {link_id for link_id, used in link_usage.items()
                     if link_id in capacities
                     and used >= capacities[link_id] * (1.0 - 1e-6)}
        self._link_rates = link_usage

        snapshot: Dict[Hashable, float] = {}
        now = self.sim.now
        for flow in flows:
            achieved = allocation.get(flow.key, 0.0)
            desired = flow.desired_rate()
            # Standing queue this flow builds at its bottleneck: the part of
            # the window the path cannot carry.  Loss only once it overflows
            # the bottleneck buffer.
            queue_bits = max(0.0, (desired - achieved) * flow.rtt)
            congested = (self.provider.saturation_drops
                         and queue_bits > self.buffer_bits and any(
                             link_id in saturated
                             for link_id in routes.get(flow.key, ())))
            explicit_loss = loss.get(flow.key, 0.0)
            lost = congested
            if not lost and explicit_loss > 0.0 and achieved > 0.0:
                packets = max(1.0, achieved * self.dt / flow.mss_bits)
                event_probability = 1.0 - (1.0 - explicit_loss) ** packets
                lost = self.rng.random() < event_probability
            # Delivered goodput is reduced by explicit link loss.
            delivered = achieved * (1.0 - explicit_loss)
            flow.advance(now, self.dt, delivered, lost)
            snapshot[flow.key] = delivered
            if self.usage_recorder is not None:
                self.usage_recorder(flow, delivered * self.dt)
            if self.pressure_recorder is not None:
                self._report_pressure(flow, desired, achieved)
        if self.record_history:
            self.history.append((now, snapshot))

    def _report_pressure(self, flow: FluidFlow, offered: float,
                         achieved: float) -> None:
        """Report gross offered-over-achieved excess as back-pressure.

        This is the "requested bandwidth surpasses the available" signal
        of §3's congestion model, with two guards shaped by how a real
        sender behaves behind a shaper:

        * a window parked modestly above its allocation — the TSQ
          equilibrium, up to ~40 % — reports nothing;
        * for TCP the excess must come from genuine window inflation (more
          than 16 MSS of standing queue), not from the 2-MSS minimum
          window exceeding a tiny share on a short-RTT path, which would
          otherwise deadlock the flow against permanent injected loss.

        UDP has neither guard on its sending rate — it "simply continues
        to send packets at the application sending rate" — so only the
        ratio test applies.
        """
        if offered == float("inf"):
            # An unbounded sender: bound the report so the loss signal
            # stays proportional, not infinite.
            offered = achieved * 4.0
        if offered <= 0.0 or achieved >= 0.70 * offered:
            return
        if flow.protocol == "tcp":
            inflation = flow.cwnd - achieved * flow.rtt
            if inflation <= 16 * flow.mss_bits:
                return
        self.pressure_recorder(flow, (offered - achieved) * self.dt)

    def stop(self) -> None:
        self._process.stop()

    # ------------------------------------------------------------ telemetry
    def mean_throughput(self, key: Hashable, start: float = 0.0,
                        end: float = float("inf")) -> float:
        """Average delivered rate of ``key`` over [start, end)."""
        samples = [rates.get(key, 0.0) for time, rates in self.history
                   if start <= time < end]
        if not samples:
            return 0.0
        return sum(samples) / len(samples)

    def series(self, key: Hashable) -> List[Tuple[float, float]]:
        return [(time, rates.get(key, 0.0)) for time, rates in self.history]
