"""Time-stepped fluid-flow engine for bulk TCP/UDP traffic.

Per-packet simulation of saturating gigabit flows is intractable at the
paper's scale, so bulk transfers use the standard fluid approximation: each
flow carries a congestion window evolved by AIMD (Reno) or the Cubic window
function, its offered rate is ``min(app demand, cwnd/RTT)``, and link
capacities are divided among competing flows by RTT-weighted max-min —
the equilibrium real TCP converges to.  Loss events (from buffer overflow at
saturated links, or injected by netem) trigger multiplicative back-off, and
the whole system is integrated with a fixed step (default 10 ms).
"""

from repro.netstack.fluid.flow import FluidFlow
from repro.netstack.fluid.engine import (
    ConstraintProvider,
    FluidEngine,
    GroundTruthConstraints,
    ShapedConstraints,
)

__all__ = [
    "FluidFlow",
    "FluidEngine",
    "ConstraintProvider",
    "GroundTruthConstraints",
    "ShapedConstraints",
]
