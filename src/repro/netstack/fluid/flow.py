"""One fluid flow: congestion-window state and TCP dynamics.

Reno follows RFC 5681 AIMD: exponential slow start to ``ssthresh``, then one
MSS of window growth per RTT, halving on loss.  Cubic follows Ha et al.
[43]: after a loss the window shrinks by ``beta = 0.7`` and then grows along
``W(t) = C (t - K)^3 + W_max`` with ``K = cbrt(W_max * (1-beta) / C)`` —
concave up to the previous maximum, then convex probing beyond it.
"""

from __future__ import annotations

import math
from typing import Optional

__all__ = ["FluidFlow"]

_MSS_BITS = 1448 * 8.0
# Cubic constants (C in MSS/s^3 as per the paper, converted to bits).
_CUBIC_C = 0.4
_CUBIC_BETA = 0.7


class FluidFlow:
    """A bulk transport flow between two containers."""

    def __init__(self, key, source: str, destination: str, *,
                 protocol: str = "tcp", congestion_control: str = "cubic",
                 demand: float = float("inf"),
                 size_bits: Optional[float] = None,
                 rtt: float = 0.05, mss_bits: float = _MSS_BITS,
                 start_time: float = 0.0) -> None:
        if protocol not in ("tcp", "udp"):
            raise ValueError(f"unknown protocol {protocol!r}")
        if congestion_control not in ("reno", "cubic"):
            raise ValueError(f"unknown congestion control {congestion_control!r}")
        self.key = key
        self.source = source
        self.destination = destination
        self.protocol = protocol
        self.congestion_control = congestion_control
        self.demand = demand
        self.size_bits = size_bits  # None = open-ended (iperf style)
        self.rtt = max(rtt, 1e-4)
        self.mss_bits = mss_bits
        self.start_time = start_time
        # TCP state.  The window cap models the socket buffer limit
        # (net.core.rmem_max-scale): relevant under pure back-pressure,
        # where nothing else bounds growth.
        self.cwnd = 10 * mss_bits  # RFC 6928 initial window
        self.max_cwnd = 1e9
        self.ssthresh = float("inf")
        self.in_slow_start = True
        self._last_backoff = -float("inf")
        # Cubic state.
        self._w_max = self.cwnd
        self._epoch_start: Optional[float] = None
        # Telemetry.
        self.achieved_rate = 0.0
        self.bits_transferred = 0.0
        self.loss_events = 0
        self.finished = False

    # ------------------------------------------------------------- rates
    def desired_rate(self) -> float:
        """The rate the sender offers this step."""
        if self.finished:
            return 0.0
        if self.protocol == "udp":
            return self.demand
        return min(self.demand, self.cwnd / self.rtt)

    def window_limited(self) -> bool:
        return self.protocol == "tcp" and self.cwnd / self.rtt < self.demand

    # ---------------------------------------------------------- dynamics
    def advance(self, now: float, dt: float, achieved: float,
                lost: bool) -> None:
        """Integrate one step: account transfer, grow or shrink the window."""
        self.achieved_rate = achieved
        self.bits_transferred += achieved * dt
        if self.size_bits is not None and \
                self.bits_transferred >= self.size_bits:
            self.finished = True
            return
        if self.protocol == "udp":
            return
        # One multiplicative decrease per congestion *event*: a loss train
        # within one reaction window (a few RTTs; floor of one emulation
        # period, the granularity of injected netem loss) collapses into a
        # single backoff, as fast recovery does.
        if lost and now - self._last_backoff >= max(4.0 * self.rtt, 0.04):
            self._backoff(now)
            return
        self._grow(now, dt, achieved)
        self.cwnd = min(self.cwnd, self.max_cwnd)

    def _backoff(self, now: float) -> None:
        self.loss_events += 1
        self._last_backoff = now
        self.in_slow_start = False
        if self.congestion_control == "reno":
            self.ssthresh = max(2 * self.mss_bits, self.cwnd / 2.0)
            self.cwnd = self.ssthresh
        else:  # cubic
            self._w_max = self.cwnd
            self.cwnd = max(2 * self.mss_bits, self.cwnd * _CUBIC_BETA)
            self._epoch_start = now

    def _grow(self, now: float, dt: float, achieved: float) -> None:
        # Application-limited flows do not inflate their window (RFC 7661).
        if not self.window_limited():
            return
        # Shaper-limited flows do not either: when the achieved rate sits
        # well below cwnd/RTT the qdisc, not the window, is the binding
        # constraint — cwnd only grows on ACKs of delivered data, and TSQ
        # throttles the socket before more packets can enter flight (§3's
        # "TCP Small Queues" discussion).  Growth therefore never *crosses*
        # the shaper limit; a window already above it (the path shrank)
        # freezes where it is — it deflates only on loss.
        shaper_limit = achieved * self.rtt / 0.85
        if self.cwnd >= shaper_limit:
            return
        before = self.cwnd
        if self.in_slow_start and self.cwnd < self.ssthresh:
            # Doubling per RTT: dW/dt = W * ln2 / RTT (fluid form).
            self.cwnd += self.cwnd * math.log(2.0) * dt / self.rtt
            if self.cwnd >= self.ssthresh:
                self.cwnd = self.ssthresh
                self.in_slow_start = False
        else:
            self.in_slow_start = False
            if self.congestion_control == "reno":
                # One MSS per RTT.
                self.cwnd += self.mss_bits * dt / self.rtt
            else:
                self._grow_cubic(now, dt)
        if self.cwnd > shaper_limit:
            self.cwnd = max(before, shaper_limit)

    def _grow_cubic(self, now: float, dt: float) -> None:
        if self._epoch_start is None:
            self._epoch_start = now
        w_max_mss = self._w_max / self.mss_bits
        k = ((w_max_mss * (1.0 - _CUBIC_BETA)) / _CUBIC_C) ** (1.0 / 3.0)
        t = now + dt - self._epoch_start
        target_mss = _CUBIC_C * (t - k) ** 3 + w_max_mss
        target = target_mss * self.mss_bits
        if target > self.cwnd:
            # Approach the cubic target within one RTT (standard pacing).
            self.cwnd += (target - self.cwnd) * min(1.0, dt / self.rtt)
        else:
            # TCP-friendly region: at least Reno's growth.
            self.cwnd += self.mss_bits * dt / self.rtt

    def describe(self) -> str:
        kind = (self.congestion_control if self.protocol == "tcp"
                else "udp")
        return (f"{self.source}->{self.destination} [{kind}] "
                f"rate={self.achieved_rate / 1e6:.2f}Mbps "
                f"cwnd={self.cwnd / self.mss_bits:.1f}mss")
