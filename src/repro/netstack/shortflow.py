"""Analytic short-TCP-flow transfer-time model.

Connection-per-request traffic (the curl workload of Figure 6) never leaves
slow start for small payloads, so its achieved throughput is dominated by
the handshake and the exponential window ramp rather than by the link rate.
The standard model [Cardwell et al., "Modeling TCP Latency"] gives the
transfer time of ``size`` bits over a path with round-trip time ``rtt`` and
bottleneck ``bandwidth``::

    t = handshake + slowstart_rounds * rtt + residual / bandwidth

where slow start doubles the window each RTT from ``initial_window`` until
the window reaches the bandwidth-delay product (or the transfer completes).

This model also quantifies §6's "flows shorter than one emulation-loop
iteration" limitation: such flows finish before any bandwidth enforcement
can react, which the engine exposes in its accuracy accounting.
"""

from __future__ import annotations

__all__ = ["short_flow_transfer_time", "slow_start_rounds"]

_MSS_BITS = 1448 * 8.0


def slow_start_rounds(size_bits: float, rtt: float, bandwidth: float, *,
                      initial_window_segments: int = 10,
                      mss_bits: float = _MSS_BITS) -> int:
    """Number of RTT rounds spent window-limited in slow start."""
    if size_bits <= 0 or rtt <= 0:
        return 0
    bdp_bits = bandwidth * rtt
    window = initial_window_segments * mss_bits
    sent = 0.0
    rounds = 0
    while sent < size_bits and window < bdp_bits:
        sent += window
        window *= 2
        rounds += 1
    return rounds


def short_flow_transfer_time(size_bits: float, rtt: float,
                             bandwidth: float, *,
                             initial_window_segments: int = 10,
                             mss_bits: float = _MSS_BITS,
                             handshake_rtts: float = 1.5) -> float:
    """Wall-clock seconds to fetch ``size_bits`` over a fresh connection.

    ``handshake_rtts`` covers SYN/SYN-ACK plus the request round trip
    (1.5 RTT: client-side connect cost plus sending the GET).  Once the
    congestion window exceeds the bandwidth-delay product the remaining
    bytes stream at the bottleneck rate.
    """
    if size_bits <= 0:
        return handshake_rtts * rtt
    bdp_bits = bandwidth * rtt
    window = initial_window_segments * mss_bits
    elapsed = handshake_rtts * rtt
    remaining = size_bits
    while remaining > 0 and window < bdp_bits:
        send_now = min(window, remaining)
        remaining -= send_now
        # A window-limited round costs one RTT regardless of its size.
        elapsed += rtt if remaining > 0 else rtt / 2.0 + send_now / bandwidth
        window *= 2
    if remaining > 0:
        elapsed += remaining / bandwidth + rtt / 2.0
    return elapsed
