"""Physical machines and the cluster interconnect."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["Machine", "Cluster"]


@dataclass
class Machine:
    """One physical server.

    ``cores`` and ``memory_gb`` bound how many containers the placement
    will co-locate (the paper's R630s run 64 cores / 128 GB); the network
    figures describe the machine's NIC on the cluster interconnect.
    """

    name: str
    cores: int = 64
    memory_gb: int = 128
    nic_rate: float = 40e9
    containers: List[str] = field(default_factory=list)

    def host(self, container: str) -> None:
        if container in self.containers:
            raise ValueError(f"{container!r} already placed on {self.name}")
        self.containers.append(container)


class Cluster:
    """A named set of machines behind one switch."""

    def __init__(self, machine_count: int = 1, *,
                 interconnect_latency: float = 50e-6,
                 interconnect_rate: float = 40e9,
                 name_prefix: str = "host") -> None:
        if machine_count < 1:
            raise ValueError("cluster needs at least one machine")
        self.machines: Dict[str, Machine] = {}
        for index in range(machine_count):
            name = f"{name_prefix}-{index}"
            self.machines[name] = Machine(name)
        self.interconnect_latency = interconnect_latency
        self.interconnect_rate = interconnect_rate

    def machine_names(self) -> List[str]:
        return list(self.machines)

    def machine_of(self, container: str) -> Optional[str]:
        for machine in self.machines.values():
            if container in machine.containers:
                return machine.name
        return None

    def placement(self) -> Dict[str, str]:
        """Container -> machine map."""
        mapping: Dict[str, str] = {}
        for machine in self.machines.values():
            for container in machine.containers:
                mapping[container] = machine.name
        return mapping

    def place_round_robin(self, containers: List[str]) -> Dict[str, str]:
        """Spread containers evenly, in declaration order."""
        names = self.machine_names()
        for index, container in enumerate(containers):
            self.machines[names[index % len(names)]].host(container)
        return self.placement()

    def acquire(self, container: str, *, per_machine: int = 1
                ) -> Optional[str]:
        """Place ``container`` on the first machine hosting fewer than
        ``per_machine`` others; None when the cluster is full.

        This is the fleet coordinator's capacity model: campaign workers
        occupy machines like containers do, so a 3-machine cluster bounds
        a sweep at 3 concurrently leased workers (per_machine=1) however
        many processes ask to join.
        """
        if per_machine < 1:
            raise ValueError("per_machine must be >= 1")
        for machine in self.machines.values():
            if len(machine.containers) < per_machine:
                machine.host(container)
                return machine.name
        return None

    def evict(self, container: str) -> Optional[str]:
        """Remove a placement (a dead fleet worker frees its machine)."""
        for machine in self.machines.values():
            if container in machine.containers:
                machine.containers.remove(container)
                return machine.name
        return None

    def __len__(self) -> int:
        return len(self.machines)
