"""The simulated physical cluster Kollaps runs on.

The paper's testbed is five Dell R630 servers behind a 40 GbE switch; here
a :class:`Cluster` is a set of named :class:`Machine` objects joined by a
uniform low-latency interconnect.  Containers are pinned to machines by a
placement map produced in :mod:`repro.orchestration`.
"""

from repro.cluster.machines import Cluster, Machine

__all__ = ["Cluster", "Machine"]
