"""Command-line front end for the Kollaps reproduction.

Every subcommand assembles its experiment through the unified Scenario
API (:mod:`repro.scenario`) — the single validated path from any
description form (listing text, Modelnet XML, or an example module
exposing ``SCENARIO``) to a runnable experiment.

``run``
    Parse an experiment description, deploy it on the simulated cluster,
    run the emulation, and report the dashboard plus per-flow throughput::

        python -m repro.cli run experiment.yaml --machines 4 \
            --duration 60 --flow c1:sv.0 --flow sv.0:sv.1:5Mbps

``validate``
    Compile a description (and optional scenario script) without running
    anything; prints the collapsed end-to-end paths.  Also accepts
    ``examples/*.py`` files exposing a module-level ``SCENARIO`` and
    ``.scn`` documents.  Diagnostics go to stderr; exit 1 on any error,
    exit 0 when only warnings were found.

``plan``
    Emit the Docker-Compose / Kubernetes-manifest deployment document for
    a description (the Deployment Generator's output, §4).

``scenario``
    The declarative scenario DSL toolbox (:mod:`repro.scenario.dsl`)::

        repro scenario lint FILE...          # aggregated diagnostics
        repro scenario diff A B              # semantic diff, compiled form
        repro scenario export FILE -o F.scn  # canonical .scn export
        repro scenario fuzz --seed 1 --count 200 --check \
            --differential kollaps,trickle   # property-based corpus
        repro scenario script DESC SCRIPT    # THUNDERSTORM -> events

    ``lint`` exits 1 on any error and 0 with warnings; ``diff`` exits 0
    when semantically identical, 1 when different, 2 on load failure;
    ``fuzz --check`` enforces the round-trip guarantee (byte-identical
    ``describe()``/``path_table()`` after dump → reload → recompile) and
    ``--differential`` runs every generated scenario across backends and
    fails on divergence; ``--bench`` writes a BENCH_dsl.json baseline.

``reproduce``
    Run the paper's tables/figures and (re)write EXPERIMENTS.md — a thin
    alias for ``python -m repro.experiments``.

``campaign``
    Parallel sweep orchestration (:mod:`repro.campaign`): ``run`` a
    campaign grid across a process pool with a persistent, resumable
    result store; ``status`` a store against the grid; ``report`` the
    stored aggregate as Markdown or CSV; ``compact`` garbage-collects a
    long-lived store::

        python -m repro.cli campaign run examples/campaign_sweep.py \
            --jobs 4 --store campaigns
        python -m repro.cli campaign status fig5
        python -m repro.cli campaign report fig5 --baseline baremetal
        python -m repro.cli campaign compact fig5

    Distributed execution (:mod:`repro.campaign.distributed`) spreads one
    sweep across hosts sharing the store directory: ``serve`` runs the
    lease-granting coordinator, ``work`` one shard-writing worker, and
    ``fleet`` either simulates a whole fleet locally (``--workers N``) or
    emits the compose/k8s deployment for a real one (``--plan``)::

        python -m repro.cli campaign fleet table2 --workers 4
        python -m repro.cli campaign serve table2 &          # host A
        python -m repro.cli campaign work table2             # hosts B, C...
        python -m repro.cli campaign fleet table2 --workers 4 --plan swarm
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.scenario import Scenario, flow
from repro.units import UnitError, format_rate, format_time, parse_rate

__all__ = ["main", "build_parser"]


def _parse_flow(spec: str):
    parts = spec.split(":")
    if len(parts) == 2:
        return parts[0], parts[1], float("inf")
    if len(parts) == 3:
        try:
            return parts[0], parts[1], parse_rate(parts[2])
        except (UnitError, ValueError) as error:
            raise argparse.ArgumentTypeError(
                f"bad rate in flow spec {spec!r}: {error}") from None
    raise argparse.ArgumentTypeError(
        f"flow must be src:dst or src:dst:rate, got {spec!r}")


def _load_scenario(args: argparse.Namespace) -> Scenario:
    """The description file as a builder, with any scenario script merged."""
    builder = Scenario.from_file(args.experiment)
    script_path = getattr(args, "scenario", None)
    if script_path is not None:
        with open(script_path, encoding="utf-8") as handle:
            builder.script(handle.read())
    return builder


def _add_description_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("experiment", help="scenario source: listing-style "
                        "text, Modelnet XML (by suffix), or a .py module "
                        "exposing SCENARIO")


def _add_trace_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", default=None, metavar="DIR",
                        help="record telemetry spans into DIR (one "
                             "trace-<pid>.jsonl per process; inspect with "
                             "`repro trace summary DIR`); also settable "
                             "via the REPRO_TRACE env var")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Kollaps reproduction toolchain")
    parser.add_argument("-v", "--verbose", dest="log_verbose",
                        action="count", default=0,
                        help="log INFO (-v) or DEBUG (-vv) from the repro "
                             "logger to stderr")
    parser.add_argument("-q", dest="log_quiet", action="store_true",
                        help="only log errors")
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="run an emulation experiment")
    _add_description_argument(run)
    run.add_argument("--backend", default="kollaps",
                     help="execution backend (kollaps, baremetal, mininet, "
                          "maxinet, trickle, or a registered name)")
    run.add_argument("--machines", type=int, default=None,
                     help="physical machines in the simulated cluster "
                          "(default: the scenario's own setting, else 1)")
    run.add_argument("--duration", type=float, default=None,
                     help="simulated seconds to run (default: the "
                          "scenario's own deploy(duration=...), else 30)")
    run.add_argument("--seed", type=int, default=None)
    run.add_argument("--flow", action="append", type=_parse_flow,
                     default=[], metavar="SRC:DST[:RATE]",
                     help="bulk flow to start (repeatable)")
    run.add_argument("--scenario", default=None,
                     help="THUNDERSTORM scenario script applied on top of "
                          "the description's own dynamic events")
    run.add_argument("--snapshot-every", type=float, default=0.0,
                     help="render the dashboard every N simulated seconds")
    _add_trace_argument(run)

    validate = commands.add_parser(
        "validate", help="check a description (and scenario) compiles")
    _add_description_argument(validate)
    validate.add_argument("--scenario", default=None)

    plan = commands.add_parser(
        "plan", help="emit the orchestrator deployment document")
    _add_description_argument(plan)
    plan.add_argument("--orchestrator", choices=("swarm", "kubernetes"),
                      default="swarm")
    plan.add_argument("--machines", type=int, default=None,
                      help="hosts to place on (default: the scenario's "
                           "own machine count)")
    plan.add_argument("--backend", default="kollaps",
                      help="also check the scenario against this execution "
                           "backend's capabilities")

    scenario = commands.add_parser(
        "scenario", help="scenario DSL tooling: lint, diff, export, fuzz, "
                         "script")
    scenario_commands = scenario.add_subparsers(dest="scenario_command",
                                                required=True)

    scenario_lint = scenario_commands.add_parser(
        "lint", help="schema + whole-program diagnostics for scenario "
                     "files (.scn, listing text, XML, .py)")
    scenario_lint.add_argument("files", nargs="+", metavar="FILE")
    scenario_lint.add_argument("--scenario", default=None,
                               help="THUNDERSTORM script merged before "
                                    "compiling")

    scenario_diff = scenario_commands.add_parser(
        "diff", help="semantic diff of two scenarios over the compiled "
                     "form (exit 0 identical, 1 different, 2 load error)")
    scenario_diff.add_argument("before", metavar="A")
    scenario_diff.add_argument("after", metavar="B")
    scenario_diff.add_argument("--json", action="store_true",
                               help="machine-readable output")

    scenario_export = scenario_commands.add_parser(
        "export", help="export any scenario front-end to canonical .scn")
    _add_description_argument(scenario_export)
    scenario_export.add_argument("--scenario", default=None,
                                 help="THUNDERSTORM script merged (and "
                                      "lowered to events) before export")
    scenario_export.add_argument("-o", "--output", default=None,
                                 help="write here instead of stdout")

    scenario_fuzz = scenario_commands.add_parser(
        "fuzz", help="generate seeded random scenarios; optionally check "
                     "round-trip and cross-backend agreement")
    scenario_fuzz.add_argument("--seed", type=int, default=0)
    scenario_fuzz.add_argument("--count", type=int, default=10)
    scenario_fuzz.add_argument("--scale", default="small",
                               choices=("small", "medium", "large"))
    scenario_fuzz.add_argument("--out", default=None, metavar="DIR",
                               help="write <name>.scn files here")
    scenario_fuzz.add_argument("--check", action="store_true",
                               help="lint every scenario and enforce the "
                                    "round-trip guarantee")
    scenario_fuzz.add_argument("--differential", default=None,
                               metavar="BACKENDS",
                               help="comma-separated backends to run each "
                                    "scenario on (e.g. kollaps,trickle); "
                                    "exit 1 on any divergence")
    scenario_fuzz.add_argument("--tolerance", type=float, default=0.15,
                               help="relative metric deviation allowed by "
                                    "--differential (default: 0.15)")
    scenario_fuzz.add_argument("--bench", default=None, metavar="FILE",
                               help="write a BENCH_dsl.json-style timing "
                                    "baseline here")
    scenario_fuzz.add_argument("--quiet", action="store_true")

    scenario_script = scenario_commands.add_parser(
        "script", help="compile a THUNDERSTORM script to primitive events")
    _add_description_argument(scenario_script)
    scenario_script.add_argument("script", help="THUNDERSTORM scenario file")

    reproduce = commands.add_parser(
        "reproduce", help="reproduce the paper's tables/figures")
    reproduce.add_argument("--only", nargs="+", metavar="EXP")
    reproduce.add_argument("--quick", action="store_true")
    reproduce.add_argument("-o", "--output", default="EXPERIMENTS.md")

    campaign = commands.add_parser(
        "campaign", help="parallel sweep orchestration with a resumable "
                         "result store")
    campaign_commands = campaign.add_subparsers(dest="campaign_command",
                                                required=True)

    def _add_campaign_source(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "campaign_source",
            help="a .py file exposing CAMPAIGN, or a registered "
                 "experiment id (fig5, table2, table4, ...)")
        subparser.add_argument(
            "--store", default="campaigns",
            help="campaigns root directory (results land under "
                 "<store>/<name>/, default: campaigns)")

    campaign_run = campaign_commands.add_parser(
        "run", help="execute the sweep (skipping stored points)")
    _add_campaign_source(campaign_run)
    campaign_run.add_argument("--jobs", type=int, default=1,
                              help="worker processes (default: 1, serial)")
    freshness = campaign_run.add_mutually_exclusive_group()
    freshness.add_argument("--resume", dest="resume", action="store_true",
                           default=True,
                           help="skip points the store already has "
                                "(default)")
    freshness.add_argument("--fresh", dest="resume", action="store_false",
                           help="re-execute every point; new records "
                                "supersede stored ones")
    campaign_run.add_argument("--quiet", action="store_true",
                              help="suppress the per-point progress feed")
    _add_trace_argument(campaign_run)

    campaign_status = campaign_commands.add_parser(
        "status", help="compare the store against the campaign grid")
    _add_campaign_source(campaign_status)

    campaign_report = campaign_commands.add_parser(
        "report", help="aggregate the stored results")
    _add_campaign_source(campaign_report)
    campaign_report.add_argument("--format", choices=("markdown", "csv"),
                                 default="markdown")
    campaign_report.add_argument("--baseline", default=None, metavar="BACKEND",
                                 help="report per-cell deviation from this "
                                      "backend (with --format csv the "
                                      "deviation table is the whole report)")
    campaign_report.add_argument("-o", "--output", default=None,
                                 help="write the report here instead of "
                                      "stdout")

    def _add_fleet_tuning(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument("--lease-size", type=int, default=4,
                               help="points per lease batch (default: 4)")
        subparser.add_argument("--lease-timeout", type=float, default=60.0,
                               help="seconds without a heartbeat before a "
                                    "worker's lease is reassigned "
                                    "(default: 60)")
        subparser.add_argument("--machines", type=int, default=None,
                               help="bound concurrently working workers by "
                                    "a simulated cluster of N machines "
                                    "(default: unbounded)")
        subparser.add_argument("--poll", type=float, default=0.2,
                               help="control-plane poll interval in seconds")
        subparser.add_argument("--timeout", type=float, default=None,
                               help="give up after this many seconds "
                                    "without fleet progress (resets on "
                                    "every completed point)")

    campaign_serve = campaign_commands.add_parser(
        "serve", help="run the fleet coordinator for a distributed sweep")
    _add_campaign_source(campaign_serve)
    _add_fleet_tuning(campaign_serve)
    serve_freshness = campaign_serve.add_mutually_exclusive_group()
    serve_freshness.add_argument("--resume", dest="resume",
                                 action="store_true", default=True,
                                 help="skip points the store already has "
                                      "(default)")
    serve_freshness.add_argument("--fresh", dest="resume",
                                 action="store_false",
                                 help="re-execute every point")
    campaign_serve.add_argument("--quiet", action="store_true",
                                help="suppress the fleet event feed")
    _add_trace_argument(campaign_serve)

    campaign_work = campaign_commands.add_parser(
        "work", help="run one fleet worker against a served campaign")
    _add_campaign_source(campaign_work)
    campaign_work.add_argument("--worker", default=None, metavar="ID",
                               help="worker id (default: <host>-<pid>; "
                                    "names this worker's shard file)")
    campaign_work.add_argument("--poll", type=float, default=0.2)
    campaign_work.add_argument("--timeout", type=float, default=None,
                               help="give up after this many seconds "
                                    "without coordinator progress (keep "
                                    "it above ~15s — the coordinator "
                                    "beats its state at least that often "
                                    "while alive)")
    campaign_work.add_argument("--fail-after", type=int, default=None,
                               metavar="N",
                               help="fault injection: die (stop "
                                    "heartbeating) after executing N "
                                    "points")
    campaign_work.add_argument("--grace", type=float, default=None,
                               help="seconds a pre-existing 'done' state "
                                    "must survive unchanged before this "
                                    "worker trusts it and exits — the "
                                    "window you have to start 'serve' "
                                    "after the workers (default: 10; "
                                    "0 trusts it immediately)")
    campaign_work.add_argument("--quiet", action="store_true")
    _add_trace_argument(campaign_work)

    campaign_fleet = campaign_commands.add_parser(
        "fleet", help="simulate a coordinator + N workers locally, or "
                      "emit the fleet's deployment plan")
    _add_campaign_source(campaign_fleet)
    _add_fleet_tuning(campaign_fleet)
    campaign_fleet.add_argument("--workers", type=int, default=2,
                                help="fleet size (default: 2)")
    fleet_freshness = campaign_fleet.add_mutually_exclusive_group()
    fleet_freshness.add_argument("--resume", dest="resume",
                                 action="store_true", default=True)
    fleet_freshness.add_argument("--fresh", dest="resume",
                                 action="store_false")
    campaign_fleet.add_argument("--quiet", action="store_true")
    campaign_fleet.add_argument("--plan", choices=("swarm", "kubernetes"),
                                default=None,
                                help="emit the compose/k8s fleet document "
                                     "instead of running anything")
    _add_trace_argument(campaign_fleet)

    campaign_compact = campaign_commands.add_parser(
        "compact", help="garbage-collect a store: drop superseded records "
                        "and merged shard files")
    _add_campaign_source(campaign_compact)
    campaign_compact.add_argument("--force", action="store_true",
                                  help="compact even when the fleet state "
                                       "says a coordinator is serving "
                                       "(it crashed)")

    trace = commands.add_parser(
        "trace", help="inspect telemetry traces recorded with --trace / "
                      "REPRO_TRACE")
    trace_commands = trace.add_subparsers(dest="trace_command",
                                          required=True)

    def _add_trace_source(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "trace_source",
            help="a trace directory (reads every trace-*.jsonl in it) or "
                 "a single trace file")

    trace_export = trace_commands.add_parser(
        "export", help="convert a trace for external viewers")
    _add_trace_source(trace_export)
    trace_export.add_argument("--chrome", action="store_true", default=True,
                              help="Chrome trace_event JSON for "
                                   "about:tracing / Perfetto (the default "
                                   "and currently only format)")
    trace_export.add_argument("-o", "--output", default=None,
                              help="write here instead of stdout")

    trace_summary = trace_commands.add_parser(
        "summary", help="per-layer time shares and per-span aggregates")
    _add_trace_source(trace_summary)
    trace_summary.add_argument("--limit", type=int, default=15,
                               help="span names to list (default: 15; "
                                    "0 for all)")

    trace_top = trace_commands.add_parser(
        "top", help="the individually longest spans")
    _add_trace_source(trace_top)
    trace_top.add_argument("-n", "--count", type=int, default=20)
    return parser


# ------------------------------------------------------------- subcommands
def _command_run(args: argparse.Namespace) -> int:
    from repro.dashboard import Dashboard

    builder = _load_scenario(args)
    # Command-line knobs override the scenario's own deploy() settings
    # only when explicitly given — a .py scenario keeps its seed/machines.
    builder.deploy(machines=args.machines, seed=args.seed,
                   duration=args.duration)
    for source, destination, rate in args.flow:
        builder.workload(flow(source, destination, rate=rate,
                              key=f"{source}->{destination}"))
    compiled = builder.compile()

    # --duration (if given) was folded into compiled.duration by deploy();
    # otherwise fall back to the scenario's own setting, else the
    # historical 30 s default.
    duration = compiled.duration if compiled.duration is not None else 30.0

    if args.backend != "kollaps":
        from repro.scenario import BackendCompatibilityError, resolve_backend

        try:
            backend = resolve_backend(args.backend)
        except ValueError as error:
            print(f"cannot run on the {args.backend!r} backend: {error}",
                  file=sys.stderr)
            return 1
        # Baseline backends have no Kollaps dashboard; report the unified
        # per-workload metrics instead.  Only compatibility problems are
        # caught — genuine workload failures still traceback, as with the
        # default engine path.
        try:
            run = compiled.run(until=duration, backend=backend)
        except BackendCompatibilityError as error:
            print(f"cannot run on the {args.backend!r} backend: {error}",
                  file=sys.stderr)
            return 1
        if args.snapshot_every > 0:
            print(f"note: --snapshot-every renders the Kollaps dashboard "
                  f"and is ignored on the {run.backend!r} backend",
                  file=sys.stderr)
        print(f"backend: {run.backend}, seed: {run.seed}, "
              f"machines: {run.machines}, ran to t={run.until:g}s")
        for key in sorted(run.metrics, key=str):
            metrics = run.metrics[key]
            if metrics.primary in metrics.summary:
                print(f"workload {key}: {metrics.primary} = "
                      f"{metrics.value:g}")
            else:
                print(f"workload {key}: collected ({metrics.kind}, "
                      "no scalar summary)")
        return 0

    engine = compiled.start()
    dashboard = Dashboard(engine)
    if args.snapshot_every > 0:
        from repro.sim import Process
        Process(engine.sim, args.snapshot_every,
                lambda: print(dashboard.render_flows(), file=sys.stderr),
                start_after=args.snapshot_every)

    engine.run(until=duration)

    # Run provenance: which backend/seed/cluster produced this output.
    print(f"backend: kollaps, seed: {compiled.config.seed}, "
          f"machines: {compiled.config.machines}, ran to t={duration:g}s")
    print(dashboard.render())
    for source, destination, _rate in args.flow:
        key = f"{source}->{destination}"
        mean = engine.fluid.mean_throughput(key, duration * 0.3, duration)
        print(f"flow {key}: {format_rate(mean)} mean")
    return 0


def _command_validate(args: argparse.Namespace) -> int:
    from repro.scenario.dsl import lint_file
    diagnostics = lint_file(args.experiment,
                            script=getattr(args, "scenario", None))
    for diagnostic in diagnostics:
        print(f"{args.experiment}: {diagnostic}", file=sys.stderr)
    errors = sum(1 for d in diagnostics if d.severity == "error")
    if errors:
        print(f"{args.experiment}: {errors} error(s)", file=sys.stderr)
        return 1
    compiled = _load_scenario(args).compile()
    print(f"{compiled.topology.describe()}")
    print(f"dynamic events: {len(compiled.schedule)}")
    for line in compiled.path_table().splitlines():
        print(f"  {line}")
    return 0


def _command_plan(args: argparse.Namespace) -> int:
    from repro.orchestration import render_plan

    compiled = Scenario.from_file(args.experiment).compile()
    try:
        problems = compiled.validate_backend(args.backend)
    except ValueError as error:
        print(f"# {error}", file=sys.stderr)
        return 1
    if problems:
        print(f"# NOT deployable on the {args.backend!r} backend:",
              file=sys.stderr)
        for problem in problems:
            print(f"#   - {problem}", file=sys.stderr)
        return 1
    machines = None if args.machines is None else \
        [f"host-{index}" for index in range(args.machines)]
    plan = compiled.plan(orchestrator=args.orchestrator, machines=machines)
    print(f"# deployment plan ({plan.orchestrator}), "
          f"backend={args.backend}, "
          f"bootstrapper={'yes' if plan.needs_bootstrapper else 'no'}")
    for container, machine in sorted(plan.placement.items()):
        print(f"#   {container} -> {machine}")
    print(render_plan(plan), end="")
    return 0


def _scenario_script(args: argparse.Namespace) -> int:
    compiled = Scenario.from_file(args.experiment).compile()
    with open(args.script, encoding="utf-8") as handle:
        schedule = compiled.compile_script(handle.read())
    for event in schedule:
        target = (event.name if event.name is not None
                  else f"{event.origin}->{event.destination}")
        details = ""
        if event.changes:
            details = " " + " ".join(f"{key}={value:g}"
                                     for key, value in event.changes.items())
        elif event.properties is not None:
            details = f" [{event.properties.describe()}]"
        print(f"t={event.time:<8g} {event.action.value:<10} {target}{details}")
    print(f"# {len(schedule)} primitive events", file=sys.stderr)
    return 0


def _scenario_lint(args: argparse.Namespace) -> int:
    from repro.scenario.dsl import lint_file
    errors = 0
    for path in args.files:
        diagnostics = lint_file(path, script=args.scenario)
        for diagnostic in diagnostics:
            print(f"{path}: {diagnostic}", file=sys.stderr)
        errors += sum(1 for d in diagnostics if d.severity == "error")
    if errors:
        print(f"{errors} error(s) in {len(args.files)} file(s)",
              file=sys.stderr)
        return 1
    return 0


def _scenario_diff(args: argparse.Namespace) -> int:
    from repro.scenario.dsl import ScnError, diff_scenarios
    from repro.topology.model import TopologyError
    compiled = []
    for path in (args.before, args.after):
        try:
            compiled.append(Scenario.from_file(path).compile())
        except (ScnError, TopologyError, UnitError, OSError,
                SyntaxError) as error:
            print(f"cannot load {path!r}: {error}", file=sys.stderr)
            return 2
    difference = diff_scenarios(*compiled)
    if args.json:
        print(json.dumps(difference.to_dict(), indent=2))
    else:
        print(difference.to_text(), end="")
    return 1 if difference else 0


def _scenario_export(args: argparse.Namespace) -> int:
    from repro.scenario.dsl import ScnError, dumps_scn
    from repro.topology.model import TopologyError
    try:
        compiled = _load_scenario(args).compile()
        text = dumps_scn(compiled)
    except (ScnError, TopologyError, UnitError, OSError,
            SyntaxError) as error:
        print(f"cannot export {args.experiment!r}: {error}", file=sys.stderr)
        return 1
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text, end="")
    return 0


def _scenario_fuzz(args: argparse.Namespace) -> int:
    import time

    from repro.scenario.dsl import (FuzzBudget, dumps_scn, generate_scenario,
                                    loads_scn, run_differential)
    budget = FuzzBudget.scaled(args.scale)
    differential_backends = tuple(
        name.strip() for name in args.differential.split(",")
        if name.strip()) if args.differential else ()

    out_dir = None
    if args.out:
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)

    generate_time = compile_time = roundtrip_time = 0.0
    failures = 0
    for index in range(args.count):
        started = time.perf_counter()
        builder = generate_scenario(args.seed, index, budget)
        generate_time += time.perf_counter() - started

        started = time.perf_counter()
        compiled = builder.compile()
        compile_time += time.perf_counter() - started
        text = dumps_scn(compiled)

        if out_dir is not None:
            with open(out_dir / f"{compiled.name}.scn", "w",
                      encoding="utf-8") as handle:
                handle.write(text)

        if args.check:
            started = time.perf_counter()
            reloaded = loads_scn(text, source=compiled.name).compile()
            roundtrip_time += time.perf_counter() - started
            if (reloaded.describe() != compiled.describe()
                    or reloaded.path_table() != compiled.path_table()):
                print(f"{compiled.name}: round-trip mismatch",
                      file=sys.stderr)
                failures += 1

        if differential_backends:
            report = run_differential(compiled, differential_backends,
                                      tolerance=args.tolerance)
            if not report.ok:
                print(report.summary(), file=sys.stderr)
                failures += 1
            elif not args.quiet:
                print(report.summary(), file=sys.stderr)

    def per_second(elapsed: float) -> float:
        return round(args.count / elapsed, 1) if elapsed > 0 else 0.0

    summary = {"bench": "dsl", "seed": args.seed, "count": args.count,
               "scale": args.scale,
               "generate_per_sec": per_second(generate_time),
               "compile_per_sec": per_second(compile_time),
               "failures": failures}
    if args.check:
        summary["roundtrip_per_sec"] = per_second(roundtrip_time)
    if differential_backends:
        summary["differential"] = list(differential_backends)
    if args.bench:
        with open(args.bench, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2)
            handle.write("\n")
    if not args.quiet:
        print(json.dumps(summary), file=sys.stderr)
    return 1 if failures else 0


def _command_scenario(args: argparse.Namespace) -> int:
    handlers = {
        "lint": _scenario_lint,
        "diff": _scenario_diff,
        "export": _scenario_export,
        "fuzz": _scenario_fuzz,
        "script": _scenario_script,
    }
    return handlers[args.scenario_command](args)


def _load_campaign(args: argparse.Namespace):
    from repro.campaign import CampaignError, load_campaign
    try:
        return load_campaign(args.campaign_source)
    except (CampaignError, FileNotFoundError) as error:
        print(f"cannot load campaign {args.campaign_source!r}: {error}",
              file=sys.stderr)
        return None


def _campaign_run(args: argparse.Namespace) -> int:
    from repro.dashboard import CampaignMonitor

    campaign = _load_campaign(args)
    if campaign is None:
        return 1
    points = campaign.points()
    print(campaign.describe(points), file=sys.stderr)
    monitor = CampaignMonitor(
        total=len(points),
        stream=None if args.quiet else sys.stderr)
    result = campaign.run(jobs=args.jobs, store=args.store,
                          resume=args.resume, progress=monitor)
    return _print_campaign_outcome(result, monitor)


def _campaign_status(args: argparse.Namespace) -> int:
    campaign = _load_campaign(args)
    if campaign is None:
        return 1
    points = campaign.points()
    store = _campaign_store(args, campaign)
    records = store.load()
    counts = store.status_counts(points, records)
    print(campaign.describe())
    print(f"store: {store.directory}")
    for status in ("ok", "incompatible", "error", "missing"):
        print(f"  {status}: {counts.get(status, 0)}/{len(points)}")
    orphans = store.orphans(points, records)
    if orphans:
        print(f"  orphaned records (grid no longer claims them): "
              f"{len(orphans)}")
    return 0


def _campaign_report(args: argparse.Namespace) -> int:
    campaign = _load_campaign(args)
    if campaign is None:
        return 1
    result = campaign.load(args.store)
    if not len(result):
        print(f"no stored results for campaign {campaign.name!r} under "
              f"{args.store!r}; run `repro campaign run` first",
              file=sys.stderr)
        return 1
    if args.baseline is not None:
        labels = sorted({point.label for point in campaign.points()})
        if args.baseline not in labels:
            print(f"unknown baseline {args.baseline!r}; this campaign's "
                  f"backends: {', '.join(labels)}", file=sys.stderr)
            return 1
    aggregate = result.aggregate()
    if args.format == "csv":
        # One table per CSV document: with a baseline, the comparison IS
        # the report (two stacked tables with different headers would
        # break any CSV reader).
        report = (aggregate.to_csv(aggregate.compare(args.baseline))
                  if args.baseline else aggregate.to_csv())
    else:
        sections = [f"# campaign {campaign.name}", "", result.describe(),
                    "", "## Summary", "", aggregate.to_markdown()]
        rows = aggregate.rows()
        sections += ["", "## Points", "", aggregate.to_markdown(rows)]
        if args.baseline:
            sections += ["", f"## Deviation from {args.baseline}", "",
                         aggregate.to_markdown(
                             aggregate.compare(args.baseline))]
        failures = aggregate.failures()
        if failures:
            sections += ["", "## Failures", "",
                         aggregate.to_markdown(failures)]
        report = "\n".join(sections) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(report, end="" if report.endswith("\n") else "\n")
    return 0


def _print_campaign_outcome(result, monitor=None) -> int:
    if monitor is not None:
        print(monitor.render(), file=sys.stderr)
    print(result.describe())
    print()
    print(result.aggregate().to_markdown())
    for failure in result.failed():
        print(f"FAILED {failure.point.describe()}: "
              f"{failure.error.splitlines()[0]}", file=sys.stderr)
    return 1 if result.failed() else 0


def _campaign_store(args: argparse.Namespace, campaign):
    # One path-derivation authority: Campaign._store, so serve/work/
    # compact can never read a different directory than run/fleet.
    return campaign._store(args.store)


def _campaign_serve(args: argparse.Namespace) -> int:
    from repro.campaign.distributed import Coordinator
    from repro.cluster import Cluster
    from repro.dashboard import FleetMonitor

    campaign = _load_campaign(args)
    if campaign is None:
        return 1
    points = campaign.points()
    print(campaign.describe(points), file=sys.stderr)
    monitor = FleetMonitor(total=len(points),
                           stream=None if args.quiet else sys.stderr)
    cluster = None if args.machines is None else Cluster(args.machines)
    coordinator = Coordinator(campaign, _campaign_store(args, campaign),
                              cluster=cluster, lease_size=args.lease_size,
                              lease_timeout=args.lease_timeout,
                              resume=args.resume, progress=monitor)
    try:
        result = coordinator.serve(poll=args.poll, timeout=args.timeout)
    except TimeoutError as error:
        print(f"fleet timed out: {error}", file=sys.stderr)
        return 1
    return _print_campaign_outcome(result, monitor)


def _campaign_work(args: argparse.Namespace) -> int:
    from repro.campaign.distributed import Worker, default_worker_id

    campaign = _load_campaign(args)
    if campaign is None:
        return 1
    store = _campaign_store(args, campaign)
    worker = Worker(campaign, store.directory,
                    args.worker or default_worker_id(),
                    max_points=args.fail_after,
                    stale_done_grace=args.grace,
                    progress=(None if args.quiet else
                              lambda line: print(line, file=sys.stderr)))
    try:
        executed = worker.run(poll=args.poll, timeout=args.timeout)
    except TimeoutError as error:
        print(f"worker timed out: {error}", file=sys.stderr)
        return 1
    print(f"worker {worker.worker_id}: executed {executed} point(s)")
    return 0


def _campaign_fleet(args: argparse.Namespace) -> int:
    campaign = _load_campaign(args)
    if campaign is None:
        return 1
    if args.plan is not None:
        from repro.orchestration import campaign_fleet_plan, render_plan
        plan = campaign_fleet_plan(args.campaign_source, args.workers,
                                   orchestrator=args.plan)
        print(f"# campaign fleet plan ({plan.orchestrator}): "
              f"1 coordinator + {args.workers} worker(s), shared "
              f"'campaigns' volume")
        print(render_plan(plan), end="")
        return 0
    from repro.campaign.distributed import run_fleet
    from repro.cluster import Cluster
    from repro.dashboard import FleetMonitor

    points = campaign.points()
    print(campaign.describe(points), file=sys.stderr)
    monitor = FleetMonitor(total=len(points),
                           stream=None if args.quiet else sys.stderr)
    cluster = None if args.machines is None else Cluster(args.machines)
    try:
        result = run_fleet(campaign, workers=args.workers, store=args.store,
                           cluster=cluster, lease_size=args.lease_size,
                           lease_timeout=args.lease_timeout,
                           resume=args.resume, poll=args.poll,
                           timeout=args.timeout, progress=monitor)
    except TimeoutError as error:
        print(f"fleet timed out: {error}", file=sys.stderr)
        return 1
    return _print_campaign_outcome(result, monitor)


def _campaign_compact(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignError
    from repro.campaign.distributed import ensure_quiescent

    campaign = _load_campaign(args)
    if campaign is None:
        return 1
    store = _campaign_store(args, campaign)
    try:
        ensure_quiescent(store, force=args.force)
    except CampaignError as error:
        print(f"not compacting: {error}", file=sys.stderr)
        return 1
    report = store.compact()
    print(f"compacted {store.directory}: kept {report['records_kept']} "
          f"record(s), dropped {report['records_dropped']} superseded "
          f"line(s), salvaged {report['records_salvaged']} unmerged shard "
          f"record(s), removed {report['shards_removed']} shard file(s), "
          f"reclaimed {report['bytes_reclaimed']} bytes")
    return 0


def _command_campaign(args: argparse.Namespace) -> int:
    handlers = {
        "run": _campaign_run,
        "status": _campaign_status,
        "report": _campaign_report,
        "serve": _campaign_serve,
        "work": _campaign_work,
        "fleet": _campaign_fleet,
        "compact": _campaign_compact,
    }
    return handlers[args.campaign_command](args)


def _load_trace_or_complain(args: argparse.Namespace):
    from repro import telemetry
    try:
        spans = telemetry.load_trace(args.trace_source)
    except (FileNotFoundError, ValueError) as error:
        print(f"cannot read trace {args.trace_source!r}: {error}",
              file=sys.stderr)
        return None
    if not spans:
        print(f"no spans in {args.trace_source!r} (was the run traced?)",
              file=sys.stderr)
        return None
    return spans


def _trace_export(args: argparse.Namespace) -> int:
    from repro import telemetry
    spans = _load_trace_or_complain(args)
    if spans is None:
        return 1
    document = telemetry.to_chrome(spans)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
            handle.write("\n")
        print(f"wrote {args.output} ({len(spans)} spans); open it in "
              "chrome://tracing or https://ui.perfetto.dev",
              file=sys.stderr)
    else:
        print(json.dumps(document))
    return 0


def _trace_summary(args: argparse.Namespace) -> int:
    from repro import telemetry
    spans = _load_trace_or_complain(args)
    if spans is None:
        return 1
    summary = telemetry.summarize(spans)
    print(telemetry.format_summary(
        summary, limit=args.limit if args.limit > 0 else None))
    return 0


def _trace_top(args: argparse.Namespace) -> int:
    from repro import telemetry
    spans = _load_trace_or_complain(args)
    if spans is None:
        return 1
    print(telemetry.format_top(telemetry.top_spans(spans, args.count)))
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    handlers = {
        "export": _trace_export,
        "summary": _trace_summary,
        "top": _trace_top,
    }
    return handlers[args.trace_command](args)


def _command_reproduce(args: argparse.Namespace) -> int:
    from repro.experiments.__main__ import main as experiments_main

    argv: List[str] = ["-o", args.output]
    if args.quick:
        argv.append("--quick")
    if args.only:
        argv.extend(["--only", *args.only])
    return experiments_main(argv)


def main(argv: Optional[List[str]] = None) -> int:
    from repro import telemetry

    args = build_parser().parse_args(argv)
    telemetry.configure_logging(
        -1 if args.log_quiet else args.log_verbose)
    if getattr(args, "trace", None):
        # enable() also exports REPRO_TRACE so campaign pool workers and
        # fleet subprocesses trace into the same directory.
        telemetry.enable(args.trace)
    handlers = {
        "run": _command_run,
        "validate": _command_validate,
        "plan": _command_plan,
        "scenario": _command_scenario,
        "reproduce": _command_reproduce,
        "campaign": _command_campaign,
        "trace": _command_trace,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # stdout went away mid-print (`repro trace summary | head`):
        # the reader saw everything it asked for, not an error.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    finally:
        telemetry.flush()


if __name__ == "__main__":
    raise SystemExit(main())
