"""Command-line front end for the Kollaps reproduction.

Subcommands mirror the real toolchain:

``run``
    Parse an experiment description, deploy it on the simulated cluster,
    run the emulation, and report the dashboard plus per-flow throughput::

        python -m repro.cli run experiment.yaml --machines 4 \
            --duration 60 --flow c1:sv.0 --flow sv.0:sv.1:5Mbps

``validate``
    Parse and validate a description (and optional scenario) without
    running anything; prints the collapsed end-to-end paths.

``plan``
    Emit the Docker-Compose / Kubernetes-manifest deployment document for
    a description (the Deployment Generator's output, §4).

``scenario``
    Compile a THUNDERSTORM-style scenario script against a topology and
    print the resulting primitive event schedule.

``reproduce``
    Run the paper's tables/figures and (re)write EXPERIMENTS.md — a thin
    alias for ``python -m repro.experiments``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple

from repro.core import EmulationEngine, EngineConfig
from repro.dashboard import Dashboard
from repro.orchestration import DeploymentGenerator, render_plan
from repro.topology import (
    EventSchedule,
    Topology,
    compile_scenario,
    parse_experiment_text,
    parse_modelnet_xml,
)
from repro.units import format_rate, format_time, parse_rate

__all__ = ["main", "build_parser"]


def _parse_flow(spec: str):
    parts = spec.split(":")
    if len(parts) == 2:
        return parts[0], parts[1], float("inf")
    if len(parts) == 3:
        return parts[0], parts[1], parse_rate(parts[2])
    raise argparse.ArgumentTypeError(
        f"flow must be src:dst or src:dst:rate, got {spec!r}")


def _load_description(path: str) -> Tuple[Topology, EventSchedule]:
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    if path.endswith((".xml", ".modelnet")):
        return parse_modelnet_xml(text)
    return parse_experiment_text(text)


def _add_description_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("experiment", help="topology description file "
                        "(listing-style text, or Modelnet XML by suffix)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Kollaps reproduction toolchain")
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="run an emulation experiment")
    _add_description_argument(run)
    run.add_argument("--machines", type=int, default=1,
                     help="physical machines in the simulated cluster")
    run.add_argument("--duration", type=float, default=30.0,
                     help="simulated seconds to run")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--flow", action="append", type=_parse_flow,
                     default=[], metavar="SRC:DST[:RATE]",
                     help="bulk flow to start (repeatable)")
    run.add_argument("--scenario", default=None,
                     help="THUNDERSTORM scenario script applied on top of "
                          "the description's own dynamic events")
    run.add_argument("--snapshot-every", type=float, default=0.0,
                     help="render the dashboard every N simulated seconds")

    validate = commands.add_parser(
        "validate", help="check a description (and scenario) parses")
    _add_description_argument(validate)
    validate.add_argument("--scenario", default=None)

    plan = commands.add_parser(
        "plan", help="emit the orchestrator deployment document")
    _add_description_argument(plan)
    plan.add_argument("--orchestrator", choices=("swarm", "kubernetes"),
                      default="swarm")
    plan.add_argument("--machines", type=int, default=1)

    scenario = commands.add_parser(
        "scenario", help="compile a scenario script to primitive events")
    _add_description_argument(scenario)
    scenario.add_argument("script", help="THUNDERSTORM scenario file")

    reproduce = commands.add_parser(
        "reproduce", help="reproduce the paper's tables/figures")
    reproduce.add_argument("--only", nargs="+", metavar="EXP")
    reproduce.add_argument("--quick", action="store_true")
    reproduce.add_argument("-o", "--output", default="EXPERIMENTS.md")
    return parser


# ------------------------------------------------------------- subcommands
def _merge_scenario(topology: Topology, schedule: EventSchedule,
                    scenario_path: Optional[str]) -> EventSchedule:
    if scenario_path is None:
        return schedule
    with open(scenario_path, encoding="utf-8") as handle:
        compiled = compile_scenario(handle.read(), topology)
    merged = EventSchedule(list(schedule) + list(compiled))
    return merged


def _command_run(args: argparse.Namespace) -> int:
    topology, schedule = _load_description(args.experiment)
    schedule = _merge_scenario(topology, schedule, args.scenario)
    engine = EmulationEngine(
        topology, schedule,
        config=EngineConfig(machines=args.machines, seed=args.seed))
    dashboard = Dashboard(engine)

    for source, destination, rate in args.flow:
        engine.start_flow(f"{source}->{destination}", source, destination,
                          demand=rate)
    if args.snapshot_every > 0:
        from repro.sim import Process
        Process(engine.sim, args.snapshot_every,
                lambda: print(dashboard.render_flows(), file=sys.stderr),
                start_after=args.snapshot_every)

    engine.run(until=args.duration)

    print(dashboard.render())
    for source, destination, _rate in args.flow:
        key = f"{source}->{destination}"
        mean = engine.fluid.mean_throughput(key, args.duration * 0.3,
                                            args.duration)
        print(f"flow {key}: {format_rate(mean)} mean")
    return 0


def _command_validate(args: argparse.Namespace) -> int:
    topology, schedule = _load_description(args.experiment)
    topology.validate()
    schedule = _merge_scenario(topology, schedule, args.scenario)
    from repro.core import collapse

    collapsed = collapse(topology)
    print(f"{topology.describe()}")
    print(f"dynamic events: {len(schedule)}")
    for path in collapsed.paths():
        properties = path.properties
        print(f"  {path.source} -> {path.destination}: "
              f"{format_rate(properties.bandwidth)}, "
              f"{format_time(properties.latency)}"
              + (f", loss {properties.loss:.2%}" if properties.loss else ""))
    return 0


def _command_plan(args: argparse.Namespace) -> int:
    topology, _schedule = _load_description(args.experiment)
    generator = DeploymentGenerator(topology)
    machines = [f"host-{index}" for index in range(args.machines)]
    plan = (generator.swarm_plan(machines)
            if args.orchestrator == "swarm"
            else generator.kubernetes_plan(machines))
    print(f"# deployment plan ({plan.orchestrator}), "
          f"bootstrapper={'yes' if plan.needs_bootstrapper else 'no'}")
    for container, machine in sorted(plan.placement.items()):
        print(f"#   {container} -> {machine}")
    print(render_plan(plan), end="")
    return 0


def _command_scenario(args: argparse.Namespace) -> int:
    topology, _schedule = _load_description(args.experiment)
    with open(args.script, encoding="utf-8") as handle:
        schedule = compile_scenario(handle.read(), topology)
    for event in schedule:
        target = (event.name if event.name is not None
                  else f"{event.origin}->{event.destination}")
        details = ""
        if event.changes:
            details = " " + " ".join(f"{key}={value:g}"
                                     for key, value in event.changes.items())
        elif event.properties is not None:
            details = f" [{event.properties.describe()}]"
        print(f"t={event.time:<8g} {event.action.value:<10} {target}{details}")
    print(f"# {len(schedule)} primitive events", file=sys.stderr)
    return 0


def _command_reproduce(args: argparse.Namespace) -> int:
    from repro.experiments.__main__ import main as experiments_main

    argv: List[str] = ["-o", args.output]
    if args.quick:
        argv.append("--quick")
    if args.only:
        argv.extend(["--only", *args.only])
    return experiments_main(argv)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _command_run,
        "validate": _command_validate,
        "plan": _command_plan,
        "scenario": _command_scenario,
        "reproduce": _command_reproduce,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
