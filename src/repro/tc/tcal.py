"""The TC Abstraction Layer (TCAL).

One TCAL instance is attached to each emulated container's network
namespace.  It owns the egress shaping chain for that container: a u32
filter classifying by destination address into per-destination netem + htb
stages, and it exposes the three operations the Emulation Core needs (§4.1):

* ``init`` — install the initial per-destination chains from the collapsed
  topology,
* ``get usage`` — read and reset per-destination byte counters (the netlink
  round-trip in the real system),
* ``set bandwidth / set netem`` — enforce the rates the sharing model
  computed and the loss the congestion model injected.

Egress processing order follows the paper: netem first (latency, jitter,
loss), then the parent htb class (bandwidth).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.tc.htb import BackPressure, HtbClass, HtbQdisc
from repro.tc.ip import IpAllocator, Ipv4Address
from repro.tc.netem import NetemQdisc
from repro.tc.u32 import U32Filter

__all__ = ["Tcal", "PathShaping"]


@dataclass
class PathShaping:
    """The netem + htb pair shaping traffic towards one destination.

    ``bits_since_poll`` counts traffic the chain carried;
    ``refused_since_poll`` counts offered load that was *abandoned* at a
    full queue (a non-blocking sender seeing EAGAIN — UDP-style traffic).
    Their sum is the *requested* bandwidth of §3's congestion model.
    Blocking senders are deliberately not counted here: their packets are
    queued and carried later, so counting the refusal too would double the
    apparent demand of a merely flow-controlled TCP stream.
    """

    class_id: int
    netem: NetemQdisc
    htb: HtbClass
    destination: str
    bits_since_poll: float = 0.0
    refused_since_poll: float = 0.0

    def record(self, size_bits: float) -> None:
        self.bits_since_poll += size_bits

    def record_refused(self, size_bits: float) -> None:
        self.refused_since_poll += size_bits


class Tcal:
    """Per-container egress shaping facade."""

    def __init__(self, container: str, allocator: IpAllocator, *,
                 rng: Optional[random.Random] = None,
                 default_rate: float = 10e9) -> None:
        self.container = container
        self.allocator = allocator
        self.rng = rng
        self.filter = U32Filter()
        self.qdisc = HtbQdisc(default_rate)
        self._paths: Dict[str, PathShaping] = {}
        self._next_class = 1
        self.netlink_calls = 0

    # ----------------------------------------------------------------- setup
    def install_destination(self, destination: str, *, latency: float,
                            jitter: float, loss: float, bandwidth: float,
                            distribution: str = "normal") -> PathShaping:
        """Create (or reconfigure) the shaping chain towards a destination."""
        existing = self._paths.get(destination)
        if existing is not None:
            existing.netem.configure(latency=latency, jitter=jitter,
                                     loss=loss, distribution=distribution)
            existing.htb.set_rate(bandwidth)
            return existing
        class_id = self._next_class
        self._next_class += 1
        address = self.allocator.lookup(destination)
        self.filter.add_match(address, class_id)
        htb_class = self.qdisc.ensure_class(class_id, bandwidth)
        netem = NetemQdisc(latency=latency, jitter=jitter, loss=loss,
                           distribution=distribution, rng=self.rng)
        shaping = PathShaping(class_id, netem, htb_class, destination)
        self._paths[destination] = shaping
        return shaping

    def remove_destination(self, destination: str) -> None:
        shaping = self._paths.pop(destination, None)
        if shaping is None:
            raise KeyError(f"no shaping chain towards {destination!r}")
        self.filter.remove_match(self.allocator.lookup(destination))

    def destinations(self) -> Tuple[str, ...]:
        return tuple(self._paths)

    def shaping_for(self, destination: str) -> PathShaping:
        try:
            return self._paths[destination]
        except KeyError:
            raise KeyError(
                f"{self.container}: no chain towards {destination!r}") from None

    # ------------------------------------------------------------- data path
    def egress(self, now: float, destination: str,
               size_bits: float) -> Optional[float]:
        """Push one packet through netem then htb.

        Returns the simulated time at which the packet leaves this host
        (shaping delay applied), or ``None`` if netem dropped it.  Raises
        :class:`BackPressure` when the htb queue is full.
        """
        shaping = self.shaping_for(destination)
        added_delay = shaping.netem.process()
        if added_delay is None:
            return None
        release = shaping.htb.enqueue(now, size_bits)
        shaping.record(size_bits)
        return release + added_delay

    def classify(self, address: Ipv4Address) -> Optional[int]:
        return self.filter.classify(address)

    # ----------------------------------------------------------- enforcement
    def set_bandwidth(self, destination: str, rate: float) -> None:
        """netlink-style rate update on the destination's htb class."""
        self.shaping_for(destination).htb.set_rate(rate)
        self.netlink_calls += 1

    def set_netem(self, destination: str, *, latency: Optional[float] = None,
                  jitter: Optional[float] = None,
                  loss: Optional[float] = None) -> None:
        self.shaping_for(destination).netem.configure(
            latency=latency, jitter=jitter, loss=loss)
        self.netlink_calls += 1

    # ------------------------------------------------------------ monitoring
    def poll_usage(self) -> Dict[str, float]:
        """Per-destination bits sent since the previous poll (then reset).

        This is the Emulation Core's step (2): "obtain the bandwidth usage
        by querying the TCAL".
        """
        self.netlink_calls += 1
        usage = {}
        for destination, shaping in self._paths.items():
            usage[destination] = shaping.bits_since_poll
            shaping.bits_since_poll = 0.0
        return usage

    def poll_refused(self) -> Dict[str, float]:
        """Per-destination bits turned away since the previous poll.

        The back-pressure counterpart of :meth:`poll_usage`: offered load
        the shaping refused, i.e. the qdisc backlog/requeue statistics the
        congestion model reads to detect oversubscription (§3).
        """
        refused = {}
        for destination, shaping in self._paths.items():
            refused[destination] = shaping.refused_since_poll
            shaping.refused_since_poll = 0.0
        return refused
