"""Hierarchical token bucket qdisc (bandwidth shaping).

The htb qdisc enforces a rate by metering packets against a token bucket:
tokens accrue at ``rate`` bits/s up to ``burst`` bits; a packet dequeues when
enough tokens are available, otherwise it waits in a finite FIFO.  Crucially
— and this is the behaviour the paper's congestion model works around — when
the FIFO is full the qdisc does **not** drop: the enqueue call reports
back-pressure, which models TCP Small Queues throttling the sender's socket
(blocking I/O blocks; non-blocking I/O sees zero bytes written).

The simulated implementation is event-driven: :meth:`HtbClass.enqueue`
returns the packet's dequeue (transmission-complete) time, from which the
caller schedules delivery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["HtbClass", "HtbQdisc", "BackPressure"]


class BackPressure(Exception):
    """Raised when the class queue is full; the sender must slow down."""

    def __init__(self, retry_at: float) -> None:
        super().__init__(f"htb queue full, retry at {retry_at:.6f}")
        self.retry_at = retry_at


@dataclass
class HtbClass:
    """One htb class: token-bucket pacing at ``rate`` with a finite queue.

    ``queue_bits`` bounds the backlog (default 128 full-size 1500 B frames,
    matching txqueuelen-scale defaults); ``burst`` is the bucket depth.
    """

    rate: float
    burst: float = 1500 * 8.0 * 10
    queue_bits: float = 1500 * 8.0 * 128
    # Internal pacing state: when the head of line finishes transmitting.
    _horizon: float = field(default=0.0, repr=False)
    bits_sent: float = field(default=0.0, repr=False)
    packets_sent: int = field(default=0, repr=False)
    backpressure_events: int = field(default=0, repr=False)

    def set_rate(self, rate: float) -> None:
        """Change the shaping rate; takes effect for subsequent packets."""
        if rate <= 0:
            raise ValueError(f"htb rate must be positive: {rate}")
        self.rate = rate

    def backlog_bits(self, now: float) -> float:
        """Bits queued but not yet transmitted at simulated time ``now``."""
        return max(0.0, (self._horizon - now) * self.rate)

    def enqueue(self, now: float, size_bits: float) -> float:
        """Admit one packet; returns the time its transmission completes.

        Raises :class:`BackPressure` when the backlog would exceed the
        queue bound; the exception carries the earliest retry time.
        """
        backlog = self.backlog_bits(now)
        # The admission test carries a one-micro-bit tolerance, and the
        # retry delay a 1 ns floor: ``backlog`` is reconstructed from the
        # pacing horizon in floating point, so an exactly-full queue can
        # otherwise read as "over by 1e-12 bits" and produce a retry time
        # that does not advance the clock.
        if backlog + size_bits > self.queue_bits + 1e-6:
            self.backpressure_events += 1
            drain_time = (backlog + size_bits - self.queue_bits) / self.rate
            raise BackPressure(now + max(drain_time, 1e-9))
        start = max(now, self._horizon)
        # A fresh bucket can burst: packets within `burst` bits of an idle
        # period are released back-to-back (serialization only).
        if self._horizon <= now and size_bits <= self.burst:
            finish = now + size_bits / max(self.rate, 1e-9)
        else:
            finish = start + size_bits / max(self.rate, 1e-9)
        self._horizon = finish
        self.bits_sent += size_bits
        self.packets_sent += 1
        return finish

    def reset_counters(self) -> None:
        self.bits_sent = 0.0
        self.packets_sent = 0


class HtbQdisc:
    """The per-interface htb root: one class per destination.

    Mirrors the paper's layout — "for each destination, Kollaps creates a
    htb qdisc that enforces the bandwidth allocated to flows towards that
    destination".
    """

    def __init__(self, default_rate: float = 10e9) -> None:
        self.default_rate = default_rate
        self._classes: Dict[int, HtbClass] = {}

    def ensure_class(self, class_id: int,
                     rate: Optional[float] = None) -> HtbClass:
        if class_id not in self._classes:
            self._classes[class_id] = HtbClass(rate or self.default_rate)
        return self._classes[class_id]

    def get_class(self, class_id: int) -> HtbClass:
        try:
            return self._classes[class_id]
        except KeyError:
            raise KeyError(f"no htb class {class_id}") from None

    def set_rate(self, class_id: int, rate: float) -> None:
        self.ensure_class(class_id).set_rate(rate)

    def classes(self) -> Dict[int, HtbClass]:
        return dict(self._classes)

    def total_bits_sent(self) -> float:
        return sum(cls.bits_sent for cls in self._classes.values())
