"""Simulated Linux Traffic Control: qdiscs, filters and the TCAL facade.

This package rebuilds the kernel machinery the real Kollaps drives through
netlink (§3 "TCAL", §4.1):

* :mod:`repro.tc.htb` — hierarchical token bucket qdisc for bandwidth
  shaping; full queues *back-pressure* the sender (TSQ semantics) instead of
  dropping, exactly the behaviour that motivates the paper's congestion
  model.
* :mod:`repro.tc.netem` — delay, jitter (normal/uniform) and packet loss.
* :mod:`repro.tc.u32` — the two-level hash filter on the destination IP's
  third and fourth octets, giving constant-time classification.
* :mod:`repro.tc.tcal` — the per-container TC Abstraction Layer: one netem +
  htb chain per destination, usage counters, netlink-style updates.
* :mod:`repro.tc.netlink` — the rtnetlink wire format (framing, tcmsg,
  aligned TLV attributes) and the kernel-side dispatcher, reproducing the
  byte-level channel the real TCAL uses instead of spawning ``tc``.
"""

from repro.tc.htb import HtbClass, HtbQdisc
from repro.tc.netem import NetemQdisc
from repro.tc.u32 import U32Filter
from repro.tc.ip import Ipv4Address, IpAllocator
from repro.tc.tcal import PathShaping, Tcal
from repro.tc.netlink import (
    KernelTcDispatcher,
    NetlinkError,
    NetlinkMessage,
    decode_message,
    encode_message,
)

__all__ = [
    "HtbQdisc",
    "HtbClass",
    "NetemQdisc",
    "U32Filter",
    "Ipv4Address",
    "IpAllocator",
    "Tcal",
    "PathShaping",
    "KernelTcDispatcher",
    "NetlinkError",
    "NetlinkMessage",
    "decode_message",
    "encode_message",
]
