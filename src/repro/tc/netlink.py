"""rtnetlink wire format and the TCAL's kernel channel (§3, §4.1).

The real TCAL avoids spawning a ``tc`` process per update: "we rely on
netlink sockets that communicate directly with the kernel".  This module
reproduces that interface at the byte level:

* :func:`encode_message` / :func:`decode_message` — netlink framing
  (``nlmsghdr``), the traffic-control payload (``tcmsg``) and nested
  type-length-value attributes with the kernel's 4-byte alignment;
* command builders for the operations the Emulation Core issues every
  loop: change an htb class rate, change netem parameters, read and reset
  class byte counters;
* :class:`KernelTcDispatcher` — the "kernel side": decodes a request,
  applies it to a :class:`~repro.tc.tcal.Tcal`, and encodes the reply.

The byte format follows ``linux/netlink.h`` / ``linux/rtnetlink.h``
closely enough that the framing invariants (alignment, length prefixes,
attribute nesting) are real; the attribute *numbers* are scoped to this
project rather than copied from kernel headers.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "NetlinkError",
    "Attribute",
    "NetlinkMessage",
    "encode_message",
    "decode_message",
    "new_tclass_request",
    "new_netem_request",
    "get_stats_request",
    "KernelTcDispatcher",
    "RTM_NEWTCLASS",
    "RTM_NEWQDISC",
    "RTM_GETTCLASS",
    "NLMSG_ERROR",
    "NLMSG_DONE",
]


class NetlinkError(ValueError):
    """Malformed netlink frame or an unsupported request."""


# Message types (rtnetlink numbering for the real ones).
RTM_NEWQDISC = 36
RTM_NEWTCLASS = 40
RTM_GETTCLASS = 42
NLMSG_ERROR = 2
NLMSG_DONE = 3

# Attribute types (project-scoped).
TCA_KIND = 1          # qdisc kind: b"htb" / b"netem"
TCA_RATE = 2          # u64, bits per second
TCA_LATENCY = 3       # u64, nanoseconds
TCA_JITTER = 4        # u64, nanoseconds
TCA_LOSS = 5          # u32, loss probability scaled by 2**32 - 1 (netem's
                      # own fixed-point convention)
TCA_STATS_BYTES = 6   # u64, bytes since last poll
TCA_CLASS_NAME = 7    # destination container name, NUL-terminated
TCA_NESTED_STATS = 8  # nested: one TCA_CLASS_NAME + TCA_STATS_BYTES each

_NLMSGHDR = struct.Struct("<IHHII")   # length, type, flags, seq, pid
_TCMSG = struct.Struct("<BxxxiIII")   # family, ifindex, handle, parent, info
_NLATTR = struct.Struct("<HH")        # length, type

_LOSS_SCALE = 0xFFFFFFFF


def _align4(length: int) -> int:
    return (length + 3) & ~3


@dataclass
class Attribute:
    """One netlink TLV attribute; ``value`` is raw bytes."""

    kind: int
    value: bytes

    @classmethod
    def u32(cls, kind: int, value: int) -> "Attribute":
        return cls(kind, struct.pack("<I", value))

    @classmethod
    def u64(cls, kind: int, value: int) -> "Attribute":
        return cls(kind, struct.pack("<Q", value))

    @classmethod
    def string(cls, kind: int, text: str) -> "Attribute":
        return cls(kind, text.encode() + b"\x00")

    @classmethod
    def nested(cls, kind: int, attributes: List["Attribute"]) -> "Attribute":
        return cls(kind, _encode_attributes(attributes))

    def as_u32(self) -> int:
        if len(self.value) != 4:
            raise NetlinkError(f"attribute {self.kind} is not a u32")
        return struct.unpack("<I", self.value)[0]

    def as_u64(self) -> int:
        if len(self.value) != 8:
            raise NetlinkError(f"attribute {self.kind} is not a u64")
        return struct.unpack("<Q", self.value)[0]

    def as_string(self) -> str:
        return self.value.rstrip(b"\x00").decode()

    def as_nested(self) -> List["Attribute"]:
        return _decode_attributes(self.value)


@dataclass
class NetlinkMessage:
    """A decoded netlink frame: header fields + tcmsg + attributes."""

    kind: int
    sequence: int
    handle: int = 0
    parent: int = 0
    attributes: List[Attribute] = field(default_factory=list)

    def attribute(self, kind: int) -> Attribute:
        for attribute in self.attributes:
            if attribute.kind == kind:
                return attribute
        raise NetlinkError(f"missing attribute {kind}")

    def maybe(self, kind: int) -> Optional[Attribute]:
        for attribute in self.attributes:
            if attribute.kind == kind:
                return attribute
        return None


def _encode_attributes(attributes: List[Attribute]) -> bytes:
    chunks = []
    for attribute in attributes:
        length = _NLATTR.size + len(attribute.value)
        chunks.append(_NLATTR.pack(length, attribute.kind))
        chunks.append(attribute.value)
        chunks.append(b"\x00" * (_align4(length) - length))
    return b"".join(chunks)


def _decode_attributes(payload: bytes) -> List[Attribute]:
    attributes = []
    offset = 0
    while offset < len(payload):
        if offset + _NLATTR.size > len(payload):
            raise NetlinkError("truncated attribute header")
        length, kind = _NLATTR.unpack_from(payload, offset)
        if length < _NLATTR.size or offset + length > len(payload):
            raise NetlinkError(f"bad attribute length {length}")
        value = payload[offset + _NLATTR.size:offset + length]
        attributes.append(Attribute(kind, value))
        offset += _align4(length)
    return attributes


def encode_message(message: NetlinkMessage) -> bytes:
    """Serialize to the on-wire frame (nlmsghdr + tcmsg + attributes)."""
    body = _TCMSG.pack(0, 0, message.handle, message.parent, 0)
    body += _encode_attributes(message.attributes)
    total = _NLMSGHDR.size + len(body)
    header = _NLMSGHDR.pack(total, message.kind, 0, message.sequence, 0)
    return header + body


def decode_message(frame: bytes) -> NetlinkMessage:
    """Parse one frame; validates lengths and alignment."""
    if len(frame) < _NLMSGHDR.size:
        raise NetlinkError("frame shorter than nlmsghdr")
    total, kind, _flags, sequence, _pid = _NLMSGHDR.unpack_from(frame)
    if total != len(frame):
        raise NetlinkError(f"length field {total} != frame size {len(frame)}")
    body = frame[_NLMSGHDR.size:]
    if len(body) < _TCMSG.size:
        raise NetlinkError("frame shorter than tcmsg")
    _family, _ifindex, handle, parent, _info = _TCMSG.unpack_from(body)
    attributes = _decode_attributes(body[_TCMSG.size:])
    return NetlinkMessage(kind=kind, sequence=sequence, handle=handle,
                          parent=parent, attributes=attributes)


# ------------------------------------------------------------ request builders
def new_tclass_request(sequence: int, destination: str,
                       rate_bps: float) -> bytes:
    """RTM_NEWTCLASS: set the htb class rate towards ``destination``."""
    return encode_message(NetlinkMessage(
        kind=RTM_NEWTCLASS, sequence=sequence,
        attributes=[Attribute.string(TCA_KIND, "htb"),
                    Attribute.string(TCA_CLASS_NAME, destination),
                    Attribute.u64(TCA_RATE, int(rate_bps))]))


def new_netem_request(sequence: int, destination: str, *,
                      latency: Optional[float] = None,
                      jitter: Optional[float] = None,
                      loss: Optional[float] = None) -> bytes:
    """RTM_NEWQDISC: reconfigure the netem qdisc towards ``destination``."""
    attributes = [Attribute.string(TCA_KIND, "netem"),
                  Attribute.string(TCA_CLASS_NAME, destination)]
    if latency is not None:
        attributes.append(Attribute.u64(TCA_LATENCY, int(latency * 1e9)))
    if jitter is not None:
        attributes.append(Attribute.u64(TCA_JITTER, int(jitter * 1e9)))
    if loss is not None:
        if not 0.0 <= loss <= 1.0:
            raise NetlinkError(f"loss outside [0,1]: {loss}")
        attributes.append(Attribute.u32(TCA_LOSS,
                                        int(loss * _LOSS_SCALE)))
    return encode_message(NetlinkMessage(kind=RTM_NEWQDISC,
                                         sequence=sequence,
                                         attributes=attributes))


def get_stats_request(sequence: int) -> bytes:
    """RTM_GETTCLASS: read-and-reset all class byte counters."""
    return encode_message(NetlinkMessage(kind=RTM_GETTCLASS,
                                         sequence=sequence))


# ----------------------------------------------------------------- the kernel
class KernelTcDispatcher:
    """The kernel side of the TCAL's netlink socket.

    Decodes requests, applies them to the container's :class:`Tcal`, and
    returns the encoded reply — NLMSG_DONE on success (with the stats dump
    for RTM_GETTCLASS), NLMSG_ERROR carrying the failure for bad requests.
    """

    def __init__(self, tcal) -> None:
        self.tcal = tcal
        self.requests_served = 0

    def handle(self, frame: bytes) -> bytes:
        try:
            request = decode_message(frame)
            reply = self._dispatch(request)
        except (NetlinkError, KeyError, ValueError) as error:
            sequence = 0
            try:
                sequence = decode_message(frame).sequence
            except NetlinkError:
                pass
            return encode_message(NetlinkMessage(
                kind=NLMSG_ERROR, sequence=sequence,
                attributes=[Attribute.string(TCA_KIND, str(error))]))
        self.requests_served += 1
        return reply

    def _dispatch(self, request: NetlinkMessage) -> bytes:
        if request.kind == RTM_NEWTCLASS:
            destination = request.attribute(TCA_CLASS_NAME).as_string()
            rate = request.attribute(TCA_RATE).as_u64()
            self.tcal.set_bandwidth(destination, float(rate))
            return encode_message(NetlinkMessage(
                kind=NLMSG_DONE, sequence=request.sequence))
        if request.kind == RTM_NEWQDISC:
            destination = request.attribute(TCA_CLASS_NAME).as_string()
            latency = request.maybe(TCA_LATENCY)
            jitter = request.maybe(TCA_JITTER)
            loss = request.maybe(TCA_LOSS)
            self.tcal.set_netem(
                destination,
                latency=(latency.as_u64() / 1e9 if latency else None),
                jitter=(jitter.as_u64() / 1e9 if jitter else None),
                loss=(loss.as_u32() / _LOSS_SCALE if loss else None))
            return encode_message(NetlinkMessage(
                kind=NLMSG_DONE, sequence=request.sequence))
        if request.kind == RTM_GETTCLASS:
            entries = []
            for destination, bits in self.tcal.poll_usage().items():
                entries.append(Attribute.nested(TCA_NESTED_STATS, [
                    Attribute.string(TCA_CLASS_NAME, destination),
                    Attribute.u64(TCA_STATS_BYTES, int(bits // 8)),
                ]))
            return encode_message(NetlinkMessage(
                kind=NLMSG_DONE, sequence=request.sequence,
                attributes=entries))
        raise NetlinkError(f"unsupported message type {request.kind}")


def decode_stats_reply(frame: bytes) -> Dict[str, float]:
    """Parse an RTM_GETTCLASS reply into destination -> bits."""
    reply = decode_message(frame)
    if reply.kind == NLMSG_ERROR:
        raise NetlinkError(reply.attribute(TCA_KIND).as_string())
    usage: Dict[str, float] = {}
    for attribute in reply.attributes:
        if attribute.kind != TCA_NESTED_STATS:
            continue
        nested = {inner.kind: inner for inner in attribute.as_nested()}
        name = nested[TCA_CLASS_NAME].as_string()
        usage[name] = nested[TCA_STATS_BYTES].as_u64() * 8.0
    return usage
