"""IPv4 addressing for emulated containers.

The u32 filter hashes on the third and fourth octets of the destination
address (§3), so containers receive addresses from a /16 (default
``10.1.0.0/16``) with the low 16 bits allocated sequentially — mirroring how
Docker overlay networks hand out addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator

__all__ = ["Ipv4Address", "IpAllocator"]


@dataclass(frozen=True, order=True)
class Ipv4Address:
    """A dotted-quad address with octet accessors."""

    value: int

    @classmethod
    def from_octets(cls, a: int, b: int, c: int, d: int) -> "Ipv4Address":
        for octet in (a, b, c, d):
            if not 0 <= octet <= 255:
                raise ValueError(f"octet out of range: {octet}")
        return cls((a << 24) | (b << 16) | (c << 8) | d)

    @classmethod
    def parse(cls, text: str) -> "Ipv4Address":
        parts = text.split(".")
        if len(parts) != 4:
            raise ValueError(f"not a dotted quad: {text!r}")
        return cls.from_octets(*(int(part) for part in parts))

    @property
    def octets(self) -> tuple:
        return ((self.value >> 24) & 0xFF, (self.value >> 16) & 0xFF,
                (self.value >> 8) & 0xFF, self.value & 0xFF)

    @property
    def third_octet(self) -> int:
        return (self.value >> 8) & 0xFF

    @property
    def fourth_octet(self) -> int:
        return self.value & 0xFF

    def __str__(self) -> str:
        return ".".join(str(octet) for octet in self.octets)


class IpAllocator:
    """Sequential allocation inside a /16 network."""

    def __init__(self, network: str = "10.1.0.0") -> None:
        base = Ipv4Address.parse(network)
        self._base = base.value & 0xFFFF0000
        self._next = 1  # .0.0 is the network address
        self._assigned: Dict[str, Ipv4Address] = {}

    def assign(self, container: str) -> Ipv4Address:
        """Return the container's address, allocating on first request."""
        if container in self._assigned:
            return self._assigned[container]
        if self._next >= 0xFFFF:
            raise RuntimeError("address space exhausted (/16)")
        address = Ipv4Address(self._base | self._next)
        self._next += 1
        self._assigned[container] = address
        return address

    def lookup(self, container: str) -> Ipv4Address:
        try:
            return self._assigned[container]
        except KeyError:
            raise KeyError(f"no address assigned to {container!r}") from None

    def reverse(self, address: Ipv4Address) -> str:
        for container, assigned in self._assigned.items():
            if assigned == address:
                return container
        raise KeyError(f"no container with address {address}")

    def items(self) -> Iterator:
        return iter(self._assigned.items())

    def __len__(self) -> int:
        return len(self._assigned)
