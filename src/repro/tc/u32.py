"""u32 two-level hash filter.

The real u32 classifier offers no true hashing — only a 256-entry index — so
Kollaps builds a two-level table: the destination address's *third* octet
selects the first-level bucket and the *fourth* octet the second-level slot,
giving collision-free constant-time lookup inside a /16 (§3).  This module
reproduces that structure literally (two levels of 256-entry arrays) so the
constant-lookup property is structural, not accidental.
"""

from __future__ import annotations

from typing import List, Optional

from repro.tc.ip import Ipv4Address

__all__ = ["U32Filter"]


class U32Filter:
    """Maps destination IPv4 addresses to class identifiers."""

    def __init__(self) -> None:
        # First level: indexed by third octet; entries are lazily created
        # 256-slot second-level tables indexed by the fourth octet.
        self._level_one: List[Optional[List[Optional[int]]]] = [None] * 256
        self.rules = 0

    def add_match(self, address: Ipv4Address, class_id: int) -> None:
        """Install ``address -> class_id``; replaces an existing rule."""
        bucket = self._level_one[address.third_octet]
        if bucket is None:
            bucket = self._level_one[address.third_octet] = [None] * 256
        if bucket[address.fourth_octet] is None:
            self.rules += 1
        bucket[address.fourth_octet] = class_id

    def classify(self, address: Ipv4Address) -> Optional[int]:
        """Constant-time lookup; ``None`` when no rule matches."""
        bucket = self._level_one[address.third_octet]
        if bucket is None:
            return None
        return bucket[address.fourth_octet]

    def remove_match(self, address: Ipv4Address) -> None:
        bucket = self._level_one[address.third_octet]
        if bucket is None or bucket[address.fourth_octet] is None:
            raise KeyError(f"no filter rule for {address}")
        bucket[address.fourth_octet] = None
        self.rules -= 1
