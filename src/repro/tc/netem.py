"""netem qdisc: delay, jitter and packet loss.

Kollaps applies latency, jitter and loss with a netem qdisc chained in front
of the htb class (§3).  Per-packet delay is ``latency + noise`` where noise
follows the configured distribution — the paper's default is a normal
distribution whose standard deviation equals the link's jitter attribute; a
uniform alternative is provided (the composition formulas in §3 mention
both).  Samples are truncated so a packet is never delivered before the
speed-of-light latency floor.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["NetemQdisc"]


@dataclass
class NetemQdisc:
    """Delay/jitter/loss stage for one destination."""

    latency: float = 0.0
    jitter: float = 0.0
    loss: float = 0.0
    distribution: str = "normal"
    rng: Optional[random.Random] = None
    packets_dropped: int = field(default=0, repr=False)
    packets_delayed: int = field(default=0, repr=False)

    def configure(self, latency: Optional[float] = None,
                  jitter: Optional[float] = None,
                  loss: Optional[float] = None,
                  distribution: Optional[str] = None) -> None:
        """Update any subset of the netem parameters (netlink-style)."""
        if latency is not None:
            self.latency = latency
        if jitter is not None:
            self.jitter = jitter
        if loss is not None:
            if not 0.0 <= loss <= 1.0:
                raise ValueError(f"loss outside [0,1]: {loss}")
            self.loss = loss
        if distribution is not None:
            if distribution not in ("normal", "uniform"):
                raise ValueError(f"unknown distribution {distribution!r}")
            self.distribution = distribution

    def sample_delay(self) -> float:
        """One per-packet delay draw (seconds)."""
        if self.jitter <= 0.0:
            return self.latency
        rng = self.rng or random
        if self.distribution == "normal":
            noise = rng.gauss(0.0, self.jitter)
        else:
            # Uniform with matching standard deviation: half-width = sqrt(3)σ.
            half_width = self.jitter * (3.0 ** 0.5)
            noise = rng.uniform(-half_width, half_width)
        # Never deliver earlier than half the nominal latency: netem clamps
        # negative offsets, and physical links have a propagation floor.
        return max(self.latency * 0.5, self.latency + noise)

    def process(self) -> Optional[float]:
        """Process one packet: ``None`` means dropped, else the added delay."""
        rng = self.rng or random
        if self.loss > 0.0 and rng.random() < self.loss:
            self.packets_dropped += 1
            return None
        self.packets_delayed += 1
        return self.sample_delay()
