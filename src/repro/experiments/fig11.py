"""Figure 11 — the what-if scenario: halve the inter-region latency.

Paper: keep the Figure 10 deployment but move the 4 Sydney replicas to
Seoul (ap-northeast), halving the inter-region RTT.  Cassandra responds as
expected: update latencies drop by about half (reads, already local,
barely move) and the saturation point shifts to higher throughput.  In
Kollaps this is a one-line change to the topology description.
"""

from __future__ import annotations

from typing import Dict

from repro.apps import CassandraCluster, YcsbClient
from repro.experiments.base import ExperimentResult, experiment, scenario_engine
from repro.sim import RngRegistry
from repro.scenario.topologies import aws_mesh

THREAD_SWEEP = [4, 16, 32]
_DURATION = 25.0


def run_curve(remote_region: str, tag: str,
              duration: float = _DURATION) -> Dict[int, Dict[str, float]]:
    results = {}
    for threads in THREAD_SWEEP:
        scenario = aws_mesh(["frankfurt", remote_region],
                            services_per_region=8, service_prefix="cas")
        engine = scenario_engine(scenario, machines=4, seed=121,
                                 enforce_bandwidth_sharing=False)
        replicas = [f"cas-{region}-{index}" for index in range(4)
                    for region in ("frankfurt", remote_region)]
        cluster = CassandraCluster(engine.sim, engine.dataplane, replicas,
                                   replication_factor=2, write_consistency=2,
                                   read_consistency=1, service_time=2e-3)
        clients = [YcsbClient(engine.sim, engine.dataplane,
                              f"cas-frankfurt-{4 + index}", cluster,
                              f"cas-frankfurt-{index}",
                              threads=max(1, threads // 4), read_fraction=0.5,
                              rng=RngRegistry(121).stream(
                                  f"{tag}:{threads}:{index}"))
                   for index in range(4)]
        engine.run(until=duration)
        reads = [l for client in clients
                 for l in client.stats.read_latencies]
        updates = [l for client in clients
                   for l in client.stats.update_latencies]
        results[threads] = {
            "throughput": sum(client.stats.throughput(duration)
                              for client in clients),
            "read": sum(reads) / len(reads),
            "update": sum(updates) / len(updates),
        }
    return results


def compute_results(duration: float = _DURATION) -> Dict[str, Dict]:
    return {"sydney": run_curve("sydney", "base", duration),
            "seoul": run_curve("seoul", "whatif", duration)}


@experiment("fig11")
def run(quick: bool = False) -> ExperimentResult:
    results = compute_results(duration=10.0 if quick else _DURATION)
    result = ExperimentResult(
        exp_id="fig11",
        title="What-if: original (Sydney) vs halved latency (Seoul)",
        paper_claim=(
            "Moving the remote replicas from Sydney (~290 ms) to Seoul "
            "(~145 ms) — a one-line topology change in Kollaps — halves "
            "the update latency, barely moves the (local) reads, and "
            "pushes the saturation point to higher throughput."),
        headers=["threads", "orig ops/s", "orig read ms", "orig update ms",
                 "what-if ops/s", "what-if read ms", "what-if update ms"],
        rows=[(threads,
               f"{results['sydney'][threads]['throughput']:.0f}",
               f"{results['sydney'][threads]['read'] * 1e3:.1f}",
               f"{results['sydney'][threads]['update'] * 1e3:.1f}",
               f"{results['seoul'][threads]['throughput']:.0f}",
               f"{results['seoul'][threads]['read'] * 1e3:.1f}",
               f"{results['seoul'][threads]['update'] * 1e3:.1f}")
              for threads in THREAD_SWEEP])
    for threads in THREAD_SWEEP:
        original = results["sydney"][threads]
        whatif = results["seoul"][threads]
        result.check(
            f"update latency roughly halves at {threads} threads",
            abs(whatif["update"] - original["update"] / 2)
            <= 0.20 * original["update"] / 2)
        result.check(f"throughput rises accordingly at {threads} threads",
                     whatif["throughput"] > original["throughput"] * 1.3)
        # Reads are served by the local (Frankfurt) replica via the snitch
        # in both deployments, so they barely move.
        result.check(f"reads barely move at {threads} threads",
                     abs(whatif["read"] - original["read"])
                     <= 0.10 * original["read"])
    return result
