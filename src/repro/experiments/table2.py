"""Table 2 — bandwidth-shaping accuracy on a point-to-point topology.

Paper: Kollaps and Mininet both land ~4-7 % below every provisioned rate
from 128 Kb/s to 1 Gb/s (the htb + iPerf3 framing cost); Mininet cannot
shape above 1 Gb/s at all (N/A rows); Trickle with default buffers
overshoots wildly, and only tracks the target after tuning (~±2 %).

Each rate row is one campaign cell executed per system through the
backend registry: kollaps and mininet run the emulation (mininet's
>1 Gb/s rows fail backend validation — the campaign's ``incompatible``
status, the paper's N/A), trickle prices the same provisioned path
through its analytic shaper model under two buffer configurations
(two labelled entries of the same backend).  :func:`campaign` is the one
grid definition; the serial runner and ``repro campaign run table2``
both execute it.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.experiments.base import ExperimentResult, campaign_factory, \
    experiment
from repro.scenario import CompiledScenario, iperf
from repro.scenario.topologies import point_to_point
from repro.baselines.trickle import (
    TRICKLE_DEFAULT_BUFFER_BYTES,
    TRICKLE_TUNED_BUFFER_BYTES,
)
from repro.units import format_rate

# (rate, paper's Kollaps error %, paper's Mininet error % or None for N/A)
TABLE2_ROWS = [
    (128e3, -5, -4),
    (256e3, -5, 11),
    (512e3, -5, -5),
    (128e6, -5, -5),
    (256e6, -5, -5),
    (512e6, -5, -5),
    (1e9, -4, -7),
    (2e9, -4, None),
    (4e9, -7, None),
]

_DURATION = 12.0
_SEED = 21
_PHYSICAL_LINK_RATE = 40e9    # the testbed NIC trickle runs on

SYSTEMS = ("kollaps", "mininet", "trickle_default", "trickle_tuned")


def point_scenario(*, rate: float, duration: float = _DURATION,
                   seed: int = _SEED):
    """One Table-2 scenario builder — the campaign's point factory."""
    return (point_to_point(rate, latency=0.001)
            .workload(iperf("client", "server", duration=duration,
                            warmup=4.0, key="iperf"))
            .deploy(machines=2, seed=seed, duration=duration))


def scenario(rate: float, duration: float = _DURATION) -> CompiledScenario:
    return point_scenario(rate=rate, duration=duration).compile()


@campaign_factory("table2")
def campaign(duration: float = _DURATION):
    """The Table-2 sweep: every provisioned rate × every shaping system."""
    from repro.campaign import Campaign
    return (Campaign("table2")
            .scenario(point_scenario)
            .grid(rate=[rate for rate, _k, _m in TABLE2_ROWS],
                  duration=[duration])
            .seeds([_SEED])
            .backend("kollaps")
            .backend("mininet")
            .backend("trickle", alias="trickle_default",
                     send_buffer_bytes=TRICKLE_DEFAULT_BUFFER_BYTES,
                     physical_link_rate=_PHYSICAL_LINK_RATE)
            .backend("trickle", alias="trickle_tuned",
                     send_buffer_bytes=TRICKLE_TUNED_BUFFER_BYTES,
                     physical_link_rate=_PHYSICAL_LINK_RATE))


def shaping_error(result, rate: float) -> Optional[float]:
    """Relative goodput error of one campaign cell; None when the backend
    is incompatible (the paper's N/A)."""
    if result is None or result.status == "incompatible":
        return None
    if result.status == "error":
        # The campaign captured the crash; the serial harness still fails
        # loudly, as the pre-campaign code did.
        raise RuntimeError(f"table2 cell {result.point.describe()} "
                           f"failed: {result.error}")
    run = result.run
    if run.engine is None:
        # A pool/store-reconstructed run has no engine, and the mininet
        # veth/userspace shortfall below is engine state: computing the
        # error without it would be silently wrong, not approximately
        # right.  The serial harness (jobs=1) always has live runs.
        raise RuntimeError(
            f"table2 cell {result.point.describe()} was reconstructed "
            "from a serialized run; shaping_error needs the live engine "
            "(run the table2 campaign with jobs=1)")
    error = run["iperf"].relative_error(rate)
    # Mininet's modelled veth/userspace shortfall is reported separately
    # from the shaping error, as the paper's Table 2 does.
    efficiency = getattr(run.engine, "bulk_efficiency", 1.0)
    return error - (1.0 - efficiency)


def compute_rows(duration: float = _DURATION) -> List[Tuple]:
    """(rate, kollaps, mininet|None, trickle_def, trickle_tuned,
    paper_kollaps, paper_mininet|None) per Table 2 row."""
    sweep = campaign(duration).run(jobs=1)
    rows = []
    for rate, paper_kollaps, paper_mininet in TABLE2_ROWS:
        cells = {system: sweep.result_for(rate=rate, backend=system)
                 for system in SYSTEMS}
        rows.append((
            rate,
            shaping_error(cells["kollaps"], rate),
            shaping_error(cells["mininet"], rate),
            shaping_error(cells["trickle_default"], rate),
            shaping_error(cells["trickle_tuned"], rate),
            paper_kollaps, paper_mininet))
    return rows


@experiment("table2")
def run(quick: bool = False) -> ExperimentResult:
    # Quick mode still needs the 4 s warmup plus a usable window.
    rows = compute_rows(duration=8.0 if quick else _DURATION)
    result = ExperimentResult(
        exp_id="table2",
        title="Bandwidth shaping accuracy (relative error)",
        paper_claim=(
            "Kollaps and Mininet land about 4-7 % below every provisioned "
            "rate from 128 Kb/s to 1 Gb/s; Mininet cannot shape above "
            "1 Gb/s (N/A); Trickle overshoots wildly with default buffers "
            "(+40 % to +184 %) and only tracks the target (+/-2 %) after "
            "tuning the TCP send buffer."),
        headers=["link", "kollaps", "mininet", "trickle(def)",
                 "trickle(tuned)", "paper-kollaps", "paper-mininet"],
        rows=[(format_rate(rate),
               f"{kollaps:+.1%}",
               "N/A" if mininet is None else f"{mininet:+.1%}",
               f"{default:+.1%}", f"{tuned:+.1%}",
               f"{paper_k:+d}%",
               "N/A" if paper_m is None else f"{paper_m:+d}%")
              for rate, kollaps, mininet, default, tuned, paper_k, paper_m
              in rows])
    for rate, kollaps, mininet, default, tuned, _, paper_mininet in rows:
        label = format_rate(rate)
        result.check(
            f"Kollaps within a few percent below target at {label}",
            -0.12 < kollaps <= 0.005)
        if paper_mininet is None:
            result.check(f"Mininet N/A above 1 Gb/s ({label})",
                         mininet is None)
        else:
            result.check(f"Mininet comparable to Kollaps at {label}",
                         mininet is not None and -0.12 < mininet <= 0.02)
        result.check(f"Trickle default buffers unusable at {label}",
                     default > 0.35)
        result.check(f"Trickle tuned within ~2 % at {label}",
                     abs(tuned - 0.02) <= 0.01)
    return result
