"""Table 2 — bandwidth-shaping accuracy on a point-to-point topology.

Paper: Kollaps and Mininet both land ~4-7 % below every provisioned rate
from 128 Kb/s to 1 Gb/s (the htb + iPerf3 framing cost); Mininet cannot
shape above 1 Gb/s at all (N/A rows); Trickle with default buffers
overshoots wildly, and only tracks the target after tuning (~±2 %).

Each rate row is one compiled scenario executed per system through the
backend registry: kollaps and mininet run the emulation (mininet's
>1 Gb/s rows fail backend validation — the paper's N/A), trickle prices
the same provisioned path through its analytic shaper model.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.experiments.base import ExperimentResult, experiment
from repro.scenario import BackendCompatibilityError, CompiledScenario, iperf
from repro.scenario.topologies import point_to_point
from repro.baselines.trickle import (
    TRICKLE_DEFAULT_BUFFER_BYTES,
    TRICKLE_TUNED_BUFFER_BYTES,
)
from repro.units import format_rate

# (rate, paper's Kollaps error %, paper's Mininet error % or None for N/A)
TABLE2_ROWS = [
    (128e3, -5, -4),
    (256e3, -5, 11),
    (512e3, -5, -5),
    (128e6, -5, -5),
    (256e6, -5, -5),
    (512e6, -5, -5),
    (1e9, -4, -7),
    (2e9, -4, None),
    (4e9, -7, None),
]

_DURATION = 12.0
_PHYSICAL_LINK_RATE = 40e9    # the testbed NIC trickle runs on


def scenario(rate: float, duration: float = _DURATION) -> CompiledScenario:
    return (point_to_point(rate, latency=0.001)
            .workload(iperf("client", "server", duration=duration,
                            warmup=4.0, key="iperf"))
            .deploy(machines=2, seed=21, duration=duration)
            .compile())


def shaping_error(compiled: CompiledScenario, rate: float, backend: str,
                  **backend_options) -> Optional[float]:
    """Relative goodput error on one backend; None when incompatible."""
    try:
        run = compiled.run(backend=backend, **backend_options)
    except BackendCompatibilityError:
        return None
    error = run["iperf"].relative_error(rate)
    # Mininet's modelled veth/userspace shortfall is reported separately
    # from the shaping error, as the paper's Table 2 does.
    efficiency = getattr(run.engine, "bulk_efficiency", 1.0)
    return error - (1.0 - efficiency)


def compute_rows(duration: float = _DURATION) -> List[Tuple]:
    """(rate, kollaps, mininet|None, trickle_def, trickle_tuned,
    paper_kollaps, paper_mininet|None) per Table 2 row."""
    rows = []
    for rate, paper_kollaps, paper_mininet in TABLE2_ROWS:
        compiled = scenario(rate, duration)
        rows.append((
            rate,
            shaping_error(compiled, rate, "kollaps"),
            shaping_error(compiled, rate, "mininet"),
            shaping_error(compiled, rate, "trickle",
                          send_buffer_bytes=TRICKLE_DEFAULT_BUFFER_BYTES,
                          physical_link_rate=_PHYSICAL_LINK_RATE),
            shaping_error(compiled, rate, "trickle",
                          send_buffer_bytes=TRICKLE_TUNED_BUFFER_BYTES,
                          physical_link_rate=_PHYSICAL_LINK_RATE),
            paper_kollaps, paper_mininet))
    return rows


@experiment("table2")
def run(quick: bool = False) -> ExperimentResult:
    # Quick mode still needs the 4 s warmup plus a usable window.
    rows = compute_rows(duration=8.0 if quick else _DURATION)
    result = ExperimentResult(
        exp_id="table2",
        title="Bandwidth shaping accuracy (relative error)",
        paper_claim=(
            "Kollaps and Mininet land about 4-7 % below every provisioned "
            "rate from 128 Kb/s to 1 Gb/s; Mininet cannot shape above "
            "1 Gb/s (N/A); Trickle overshoots wildly with default buffers "
            "(+40 % to +184 %) and only tracks the target (+/-2 %) after "
            "tuning the TCP send buffer."),
        headers=["link", "kollaps", "mininet", "trickle(def)",
                 "trickle(tuned)", "paper-kollaps", "paper-mininet"],
        rows=[(format_rate(rate),
               f"{kollaps:+.1%}",
               "N/A" if mininet is None else f"{mininet:+.1%}",
               f"{default:+.1%}", f"{tuned:+.1%}",
               f"{paper_k:+d}%",
               "N/A" if paper_m is None else f"{paper_m:+d}%")
              for rate, kollaps, mininet, default, tuned, paper_k, paper_m
              in rows])
    for rate, kollaps, mininet, default, tuned, _, paper_mininet in rows:
        label = format_rate(rate)
        result.check(
            f"Kollaps within a few percent below target at {label}",
            -0.12 < kollaps <= 0.005)
        if paper_mininet is None:
            result.check(f"Mininet N/A above 1 Gb/s ({label})",
                         mininet is None)
        else:
            result.check(f"Mininet comparable to Kollaps at {label}",
                         mininet is not None and -0.12 < mininet <= 0.02)
        result.check(f"Trickle default buffers unusable at {label}",
                     default > 0.35)
        result.check(f"Trickle tuned within ~2 % at {label}",
                     abs(tuned - 0.02) <= 0.01)
    return result
