"""Table 2 — bandwidth-shaping accuracy on a point-to-point topology.

Paper: Kollaps and Mininet both land ~4-7 % below every provisioned rate
from 128 Kb/s to 1 Gb/s (the htb + iPerf3 framing cost); Mininet cannot
shape above 1 Gb/s at all (N/A rows); Trickle with default buffers
overshoots wildly, and only tracks the target after tuning (~±2 %).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.apps import run_iperf_pair
from repro.baselines import MininetEmulator, TrickleShaper
from repro.baselines.mininet import LinkUnsupportedError
from repro.baselines.trickle import (
    TRICKLE_DEFAULT_BUFFER_BYTES,
    TRICKLE_TUNED_BUFFER_BYTES,
)
from repro.experiments.base import ExperimentResult, experiment, scenario_engine
from repro.scenario.topologies import point_to_point
from repro.topogen import point_to_point_topology
from repro.units import format_rate

# (rate, paper's Kollaps error %, paper's Mininet error % or None for N/A)
TABLE2_ROWS = [
    (128e3, -5, -4),
    (256e3, -5, 11),
    (512e3, -5, -5),
    (128e6, -5, -5),
    (256e6, -5, -5),
    (512e6, -5, -5),
    (1e9, -4, -7),
    (2e9, -4, None),
    (4e9, -7, None),
]

_DURATION = 12.0


def kollaps_error(rate: float, duration: float = _DURATION) -> float:
    engine = scenario_engine(point_to_point(rate, latency=0.001),
                             machines=2, seed=21)
    result = run_iperf_pair(engine, "client", "server", duration=duration,
                            warmup=4.0)
    return result.relative_error(rate)


def mininet_error(rate: float,
                  duration: float = _DURATION) -> Optional[float]:
    try:
        emulator = MininetEmulator(
            point_to_point_topology(rate, latency=0.001), seed=21)
    except LinkUnsupportedError:
        return None
    result = run_iperf_pair(emulator, "client", "server", duration=duration,
                            warmup=4.0)
    return result.relative_error(rate) - (1.0 - emulator.bulk_efficiency)


def compute_rows(duration: float = _DURATION) -> List[Tuple]:
    """(rate, kollaps, mininet|None, trickle_def, trickle_tuned,
    paper_kollaps, paper_mininet|None) per Table 2 row."""
    rows = []
    for rate, paper_kollaps, paper_mininet in TABLE2_ROWS:
        trickle_default = TrickleShaper(
            rate, send_buffer_bytes=TRICKLE_DEFAULT_BUFFER_BYTES,
            link_rate=40e9).relative_error()
        trickle_tuned = TrickleShaper(
            rate, send_buffer_bytes=TRICKLE_TUNED_BUFFER_BYTES,
            link_rate=40e9).relative_error()
        rows.append((rate, kollaps_error(rate, duration),
                     mininet_error(rate, duration), trickle_default,
                     trickle_tuned, paper_kollaps, paper_mininet))
    return rows


@experiment("table2")
def run(quick: bool = False) -> ExperimentResult:
    # Quick mode still needs the 4 s warmup plus a usable window.
    rows = compute_rows(duration=8.0 if quick else _DURATION)
    result = ExperimentResult(
        exp_id="table2",
        title="Bandwidth shaping accuracy (relative error)",
        paper_claim=(
            "Kollaps and Mininet land about 4-7 % below every provisioned "
            "rate from 128 Kb/s to 1 Gb/s; Mininet cannot shape above "
            "1 Gb/s (N/A); Trickle overshoots wildly with default buffers "
            "(+40 % to +184 %) and only tracks the target (+/-2 %) after "
            "tuning the TCP send buffer."),
        headers=["link", "kollaps", "mininet", "trickle(def)",
                 "trickle(tuned)", "paper-kollaps", "paper-mininet"],
        rows=[(format_rate(rate),
               f"{kollaps:+.1%}",
               "N/A" if mininet is None else f"{mininet:+.1%}",
               f"{default:+.1%}", f"{tuned:+.1%}",
               f"{paper_k:+d}%",
               "N/A" if paper_m is None else f"{paper_m:+d}%")
              for rate, kollaps, mininet, default, tuned, paper_k, paper_m
              in rows])
    for rate, kollaps, mininet, default, tuned, _, paper_mininet in rows:
        label = format_rate(rate)
        result.check(
            f"Kollaps within a few percent below target at {label}",
            -0.12 < kollaps <= 0.005)
        if paper_mininet is None:
            result.check(f"Mininet N/A above 1 Gb/s ({label})",
                         mininet is None)
        else:
            result.check(f"Mininet comparable to Kollaps at {label}",
                         mininet is not None and -0.12 < mininet <= 0.02)
        result.check(f"Trickle default buffers unusable at {label}",
                     default > 0.35)
        result.check(f"Trickle tuned within ~2 % at {label}",
                     abs(tuned - 0.02) <= 0.01)
    return result
