"""Figure 6 — connection-per-request HTTP: Mininet collapses under load.

Paper: an HTTP server behind a 100 Mb/s link serves 1/2/4/8 concurrent
curl clients (~64 KB per request, fresh TCP connection every time).  Bare
metal and Kollaps scale near-linearly with client count; Mininet's
throughput falls behind as its switches buckle under per-connection state.

One compiled scenario per client count is fanned across the three
backends via ``compiled.run(backend=...)``.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.experiments.base import ExperimentResult, experiment
from repro.scenario import CompiledScenario, curl_swarm
from repro.scenario.topologies import star

CLIENT_COUNTS = [1, 2, 4, 8]
SYSTEMS = ("baremetal", "kollaps", "mininet")
_DURATION = 20.0


def scenario(clients: int, duration: float = _DURATION) -> CompiledScenario:
    sources = [f"c{i}" for i in range(clients)]
    return (star(["server"] + sources, bandwidth=100e6, latency=0.005)
            .workload(curl_swarm(sources, "server", key="curl"))
            .deploy(machines=2, seed=71, duration=duration)
            .compile())


def compute_results(duration: float = _DURATION
                    ) -> Dict[Tuple[str, int], float]:
    results = {}
    for clients in CLIENT_COUNTS:
        compiled = scenario(clients, duration)
        for system in SYSTEMS:
            run = compiled.run(backend=system)
            results[(system, clients)] = run.metric("curl").value
    return results


@experiment("fig6")
def run(quick: bool = False) -> ExperimentResult:
    results = compute_results(duration=12.0 if quick else _DURATION)
    result = ExperimentResult(
        exp_id="fig6",
        title="HTTP throughput, connection-per-request curl clients",
        paper_claim=(
            "With 1 to 8 curl clients (fresh TCP connection per ~64 KB "
            "request) over a 100 Mb/s link, Kollaps tracks the bare-metal "
            "throughput at every load level while Mininet fails to keep "
            "up as the client count grows."),
        headers=["clients", "baremetal Mb/s", "kollaps Mb/s",
                 "mininet Mb/s"],
        rows=[(clients,
               f"{results[('baremetal', clients)] / 1e6:.1f}",
               f"{results[('kollaps', clients)] / 1e6:.1f}",
               f"{results[('mininet', clients)] / 1e6:.1f}")
              for clients in CLIENT_COUNTS])
    for clients in CLIENT_COUNTS:
        baremetal = results[("baremetal", clients)]
        kollaps = results[("kollaps", clients)]
        result.check(f"Kollaps tracks bare metal at {clients} client(s)",
                     abs(kollaps - baremetal) <= 0.15 * baremetal)
    result.check("bare metal scales with clients (8 clients > 4x 1 client)",
                 results[("baremetal", 8)] > 4 * results[("baremetal", 1)])
    result.check("Mininet lags visibly at 8 clients",
                 results[("mininet", 8)] < 0.8 * results[("baremetal", 8)])
    gap_low = results[("mininet", 1)] / results[("baremetal", 1)]
    gap_high = results[("mininet", 8)] / results[("baremetal", 8)]
    result.check("the Mininet gap widens with load (collapse signature)",
                 gap_high < gap_low)
    return result
