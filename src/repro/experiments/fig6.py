"""Figure 6 — connection-per-request HTTP: Mininet collapses under load.

Paper: an HTTP server behind a 100 Mb/s link serves 1/2/4/8 concurrent
curl clients (~64 KB per request, fresh TCP connection every time).  Bare
metal and Kollaps scale near-linearly with client count; Mininet's
throughput falls behind as its switches buckle under per-connection state.

Like Figure 5, the cross-system fan-out is a campaign: the client-count
× backend grid is declared once, runs in-process via ``jobs=1`` here,
and the *same* grid runs store-backed and parallel through
``repro campaign run fig6`` — whose deterministic
``aggregate().to_markdown()`` table is pinned by a golden fixture in
``tests/golden/fig6_aggregate.md``.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.experiments.base import ExperimentResult, campaign_factory, \
    experiment
from repro.scenario import CompiledScenario, curl_swarm
from repro.scenario.topologies import star

CLIENT_COUNTS = [1, 2, 4, 8]
SYSTEMS = ("baremetal", "kollaps", "mininet")
_DURATION = 20.0
_SEED = 71


def point_scenario(*, clients: int, duration: float = _DURATION,
                   seed: int = _SEED):
    """One Figure-6 scenario builder — the campaign's point factory."""
    sources = [f"c{i}" for i in range(clients)]
    return (star(["server"] + sources, bandwidth=100e6, latency=0.005)
            .workload(curl_swarm(sources, "server", key="curl"))
            .deploy(machines=2, seed=seed, duration=duration))


def scenario(clients: int, duration: float = _DURATION) -> CompiledScenario:
    return point_scenario(clients=clients, duration=duration).compile()


@campaign_factory("fig6")
def campaign(duration: float = _DURATION):
    """The Figure-6 sweep: client counts × systems at the paper's seed."""
    from repro.campaign import Campaign
    return (Campaign("fig6")
            .scenario(point_scenario)
            .grid(clients=CLIENT_COUNTS, duration=[duration])
            .seeds([_SEED])
            .backends(*SYSTEMS))


def compute_results(duration: float = _DURATION
                    ) -> Dict[Tuple[str, int], float]:
    sweep = campaign(duration).run(jobs=1)
    return {(system, clients):
            sweep.run_for(clients=clients, backend=system)
            .metric("curl").value
            for clients in CLIENT_COUNTS for system in SYSTEMS}


@experiment("fig6")
def run(quick: bool = False) -> ExperimentResult:
    results = compute_results(duration=12.0 if quick else _DURATION)
    result = ExperimentResult(
        exp_id="fig6",
        title="HTTP throughput, connection-per-request curl clients",
        paper_claim=(
            "With 1 to 8 curl clients (fresh TCP connection per ~64 KB "
            "request) over a 100 Mb/s link, Kollaps tracks the bare-metal "
            "throughput at every load level while Mininet fails to keep "
            "up as the client count grows."),
        headers=["clients", "baremetal Mb/s", "kollaps Mb/s",
                 "mininet Mb/s"],
        rows=[(clients,
               f"{results[('baremetal', clients)] / 1e6:.1f}",
               f"{results[('kollaps', clients)] / 1e6:.1f}",
               f"{results[('mininet', clients)] / 1e6:.1f}")
              for clients in CLIENT_COUNTS])
    for clients in CLIENT_COUNTS:
        baremetal = results[("baremetal", clients)]
        kollaps = results[("kollaps", clients)]
        result.check(f"Kollaps tracks bare metal at {clients} client(s)",
                     abs(kollaps - baremetal) <= 0.15 * baremetal)
    result.check("bare metal scales with clients (8 clients > 4x 1 client)",
                 results[("baremetal", 8)] > 4 * results[("baremetal", 1)])
    result.check("Mininet lags visibly at 8 clients",
                 results[("mininet", 8)] < 0.8 * results[("baremetal", 8)])
    gap_low = results[("mininet", 1)] / results[("baremetal", 1)]
    gap_high = results[("mininet", 8)] / results[("baremetal", 8)]
    result.check("the Mininet gap widens with load (collapse signature)",
                 gap_high < gap_low)
    return result
