"""Figure 8 — decentralized bandwidth throttling with staggered clients.

Paper (§5.4): six clients start 60 s apart on the three-bridge topology,
then stop in reverse order.  The RTT-aware min-max model predicts every
stage's shares analytically (23.08/26.92, 18.45/21.55/10, ...,
15.04/17.55/10/21.06/26.33/10 Mb/s); the decentralized emulation tracks
those values within a few percent, re-converging at every arrival and
departure.  Time is scaled 6x (10 s per stage).
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.base import ExperimentResult, experiment, scenario_engine
from repro.scenario.topologies import throttling

_STAGE = 10.0
MBPS = 1e6

# Expected share per client and stage, from the model (== paper's figures).
EXPECTED = {
    1: [50.0],
    2: [23.08, 26.92],
    3: [18.46, 21.54, 10.0],
    4: [18.46, 21.54, 10.0, 50.0],
    5: [16.93, 19.75, 10.0, 23.70, 29.62],
    6: [15.05, 17.55, 10.0, 21.07, 26.33, 10.0],
}


def compute_shares(stage: float = _STAGE) -> Dict:
    """Measured per-client Mb/s for each arrival stage plus teardown."""
    engine = scenario_engine(throttling(), machines=4, seed=91)
    # Arrivals every stage; departures in reverse order afterwards.
    for index in range(1, 7):
        engine.start_flow(f"c{index}", f"c{index}", f"s{index}",
                          start_time=(index - 1) * stage)
    for position, index in enumerate(range(6, 0, -1)):
        engine.sim.at(6 * stage + position * stage,
                      lambda index=index: engine.stop_flow(f"c{index}"))
    engine.run(until=12 * stage)

    measured: Dict = {}
    for stage_number in range(1, 7):
        window = ((stage_number - 1) * stage + stage * 0.4,
                  stage_number * stage)
        measured[stage_number] = [
            engine.fluid.mean_throughput(f"c{index}", *window) / MBPS
            for index in range(1, stage_number + 1)]
    # Tear-down: after all departures the link is quiet again.
    measured["teardown"] = engine.fluid.mean_throughput(
        "c1", 11.5 * stage, 12 * stage) / MBPS
    return measured


@experiment("fig8")
def run(quick: bool = False) -> ExperimentResult:
    # Quick stages must still outlast the flows' TCP ramp (~2-3 s).
    measured = compute_shares(stage=8.0 if quick else _STAGE)
    rows = []
    for stage in range(1, 7):
        for index, (got, want) in enumerate(zip(measured[stage],
                                                EXPECTED[stage]), start=1):
            rows.append((f"stage {stage}", f"c{index}", f"{got:.2f}",
                         f"{want:.2f}"))
    result = ExperimentResult(
        exp_id="fig8",
        title="Decentralized throttling: per-client share by stage (Mb/s)",
        paper_claim=(
            "Six clients arrive 60 s apart and depart in reverse order; "
            "the RTT-aware min-max model predicts each stage's shares "
            "(50 -> 23.08/26.92 -> 18.45/21.55/10 -> ... -> "
            "15.04/17.55/10/21.06/26.33/10 Mb/s) and the decentralized "
            "emulation re-converges to them at every transition."),
        headers=["stage", "client", "measured", "model/paper"],
        rows=rows)
    for stage in range(1, 7):
        for index, (got, want) in enumerate(zip(measured[stage],
                                                EXPECTED[stage]), start=1):
            result.check(
                f"stage {stage} c{index}: measured {got:.2f} tracks model "
                f"{want:.2f} Mb/s",
                abs(got - want) <= 0.15 * want)
    result.check("all flows quiet after teardown",
                 measured["teardown"] == 0.0)
    return result
