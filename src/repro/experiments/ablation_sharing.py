"""Ablations on the bandwidth-sharing design (§3 design choices).

Three knobs the paper's design fixes, evaluated on the §5.4 topology:

1. **RTT-aware vs plain max-min** — dropping the 1/RTT weights collapses
   the 23.08/26.92 split of Figure 8's two-flow stage to 25/25, i.e. the
   emulation would no longer mimic TCP Reno's RTT bias.
2. **Exact fixed point vs the literal two-step heuristic** — one
   redistribution pass is exact on most stages but misallocates when
   surplus must cascade across two bottlenecks (the five-flow stage).
3. **Congestion loss injection on/off** — §3 "Congestion": without netem
   loss injection the emulation cannot converge TCP flows down when the
   topology shrinks mid-flow, because htb back-pressure alone gives the
   congestion-control algorithm nothing to react to.
"""

from __future__ import annotations

from typing import Dict

from repro.core import (
    FlowDemand,
    paper_two_step_shares,
    rtt_aware_max_min,
)
from repro.experiments.base import ExperimentResult, experiment, scenario_engine
from repro.scenario.topologies import throttling
from repro.topology import DynamicEvent, EventAction, EventSchedule

MBPS = 1e6

CAPACITIES = {0: 50 * MBPS, 1: 50 * MBPS, 6: 50 * MBPS, 7: 100 * MBPS}
TWO_FLOWS = [
    FlowDemand("c1", 0.070, (0, 6, 7), path_bandwidth=50 * MBPS),
    FlowDemand("c2", 0.060, (1, 6, 7), path_bandwidth=50 * MBPS),
]

FIVE_FLOWS = [
    FlowDemand("c1", 0.070, (0, 6, 7), path_bandwidth=50 * MBPS),
    FlowDemand("c2", 0.060, (1, 6, 7), path_bandwidth=50 * MBPS),
    FlowDemand("c3", 0.060, (2, 6, 7), path_bandwidth=10 * MBPS),
    FlowDemand("c4", 0.050, (3, 7), path_bandwidth=50 * MBPS),
    FlowDemand("c5", 0.040, (4, 7), path_bandwidth=50 * MBPS),
]

FIVE_FLOW_CAPACITIES = {**CAPACITIES, 2: 10 * MBPS, 3: 50 * MBPS,
                        4: 50 * MBPS}


def rtt_weight_comparison() -> Dict[str, Dict[str, float]]:
    weighted = rtt_aware_max_min(TWO_FLOWS, CAPACITIES)
    flat = rtt_aware_max_min(
        [FlowDemand(f.key, 0.060, f.links, path_bandwidth=f.path_bandwidth)
         for f in TWO_FLOWS], CAPACITIES)
    return {"weighted": weighted, "flat": flat}


def solver_comparison() -> Dict[str, Dict[str, float]]:
    return {"exact": rtt_aware_max_min(FIVE_FLOWS, FIVE_FLOW_CAPACITIES),
            "two_step": paper_two_step_shares(FIVE_FLOWS,
                                              FIVE_FLOW_CAPACITIES)}


def loss_injection_comparison(duration: float = 20.0) -> Dict[str, Dict]:
    """Shrink a link mid-flow with and without loss injection."""

    def run_variant(sensitivity: float) -> Dict[str, float]:
        schedule = EventSchedule([DynamicEvent(
            time=duration * 0.4, action=EventAction.SET_LINK, origin="b1",
            destination="b2", changes={"bandwidth": 10 * MBPS})])
        engine = scenario_engine(throttling(), schedule,
                                 machines=2, seed=131,
                                 congestion_sensitivity=sensitivity)
        flow = engine.start_flow("c1", "c1", "s1")
        engine.run(until=duration)
        return {
            "goodput": engine.fluid.mean_throughput(
                "c1", duration * 0.6, duration),
            "loss_events": flow.loss_events,
            "final_cwnd": flow.cwnd,
        }

    return {"with-loss": run_variant(1.0), "without-loss": run_variant(0.0)}


@experiment("ablation-sharing")
def run(quick: bool = False) -> ExperimentResult:
    rtt = rtt_weight_comparison()
    solver = solver_comparison()
    loss = loss_injection_comparison(duration=12.0 if quick else 20.0)

    rows = [
        ("rtt-aware two-flow split (paper 23.08/26.92)",
         f"{rtt['weighted']['c1'] / MBPS:.2f}/"
         f"{rtt['weighted']['c2'] / MBPS:.2f}"),
        ("flat max-min two-flow split",
         f"{rtt['flat']['c1'] / MBPS:.2f}/{rtt['flat']['c2'] / MBPS:.2f}"),
        ("exact five-flow c4/c5 (paper 23.74/29.62)",
         f"{solver['exact']['c4'] / MBPS:.2f}/"
         f"{solver['exact']['c5'] / MBPS:.2f}"),
        ("two-step five-flow c4/c5",
         f"{solver['two_step']['c4'] / MBPS:.2f}/"
         f"{solver['two_step']['c5'] / MBPS:.2f}"),
        ("goodput after shrink, loss injection on",
         f"{loss['with-loss']['goodput'] / MBPS:.2f} Mb/s"),
        ("goodput after shrink, loss injection off",
         f"{loss['without-loss']['goodput'] / MBPS:.2f} Mb/s"),
        ("final cwnd on/off (Mbit)",
         f"{loss['with-loss']['final_cwnd'] / 1e6:.2f}/"
         f"{loss['without-loss']['final_cwnd'] / 1e6:.2f}"),
    ]
    result = ExperimentResult(
        exp_id="ablation-sharing",
        title="Ablation: sharing-model design choices",
        paper_claim=(
            "The RTT-aware weights produce Figure 8's 23.08/26.92 split "
            "(plain max-min would give 25/25); the maximization step must "
            "cascade surplus across bottlenecks; and congestion loss "
            "injection is what lets TCP converge when capacity shrinks "
            "(§3)."),
        headers=["metric", "value"],
        rows=rows)
    result.check("RTT weights reproduce the paper's two-flow split",
                 abs(rtt["weighted"]["c1"] / MBPS - 23.08) < 0.3
                 and abs(rtt["weighted"]["c2"] / MBPS - 26.92) < 0.3)
    result.check("flat max-min collapses the split to 25/25",
                 abs(rtt["flat"]["c1"] / MBPS - 25.0) < 0.3)
    result.check("two-step heuristic under-allocates cascading surplus",
                 solver["two_step"]["c4"] < solver["exact"]["c4"] * 0.97
                 and solver["two_step"]["c5"] < solver["exact"]["c5"] * 0.97)
    for link, capacity in FIVE_FLOW_CAPACITIES.items():
        used = sum(solver["two_step"][flow.key] for flow in FIVE_FLOWS
                   if link in flow.links)
        result.check(f"two-step never oversubscribes link {link}",
                     used <= capacity * 1.001)
    result.check("with injection TCP converges to the shrunk link",
                 abs(loss["with-loss"]["goodput"] - 10 * MBPS)
                 <= 0.15 * 10 * MBPS)
    result.check("injection produced TCP loss events",
                 loss["with-loss"]["loss_events"] > 0)
    result.check("no injection, no loss events",
                 loss["without-loss"]["loss_events"] == 0)
    result.check("without injection the window stays inflated",
                 loss["without-loss"]["final_cwnd"]
                 > 2 * loss["with-loss"]["final_cwnd"])
    return result
