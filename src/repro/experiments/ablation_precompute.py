"""Ablation — pre-computed vs online dynamic-topology handling (§3, §6).

The paper pre-computes the whole graph sequence offline because online
recomputation of all-pairs shortest paths "could take several seconds for
large graphs, precluding accurate emulation of sub-second dynamics".  This
ablation quantifies that: the cost of applying one pre-computed state swap
versus collapsing a large topology from scratch at event time.
"""

from __future__ import annotations

from typing import Dict

from repro.core import collapse
from repro.telemetry import Stopwatch
from repro.core.dynamic import DynamicTopologyPlan
from repro.experiments.base import ExperimentResult, experiment, scenario_engine
from repro.scenario.topologies import scale_free
from repro.topology import DynamicEvent, EventAction, EventSchedule

SIZE = 600


def build_schedule(topology) -> EventSchedule:
    """Ten property changes on backbone links, 100 ms apart."""
    links = [link for link in topology.links()
             if link.source.startswith("sw")][:10]
    return EventSchedule([
        DynamicEvent(time=0.1 * (index + 1), action=EventAction.SET_LINK,
                     origin=link.source, destination=link.destination,
                     changes={"latency": 0.005}, bidirectional=False)
        for index, link in enumerate(links)])


def compute_results(size: int = SIZE) -> Dict[str, float]:
    topology = scale_free(size, seed=17).compile().topology
    schedule = build_schedule(topology)

    # Offline pre-computation (what Kollaps does before the run).
    with Stopwatch() as precompute:
        plan = DynamicTopologyPlan(topology, schedule)

    # Per-event swap cost at runtime with the plan in hand.
    engine = scenario_engine(topology, schedule, machines=2, seed=17,
                             enforce_bandwidth_sharing=False)
    with Stopwatch() as runtime:
        engine.run(until=schedule.horizon() + 0.1)
    runtime_cost = runtime.elapsed / len(schedule)

    # Online alternative: collapse from scratch at event time.  The memo
    # must be bypassed — the plan above already collapsed this topology,
    # and a cache hit would measure a dict lookup, not the ablated cost.
    with Stopwatch() as online:
        collapse(topology, memo=False)

    return {"precompute_total": precompute.elapsed,
            "swap_per_event": runtime_cost,
            "online_per_event": online.elapsed,
            "states": len(plan),
            "expected_states": len(schedule) + 1}


@experiment("ablation-precompute")
def run(quick: bool = False) -> ExperimentResult:
    results = compute_results(size=300 if quick else SIZE)
    result = ExperimentResult(
        exp_id="ablation-precompute",
        title="Ablation: pre-computed vs online dynamic-event handling",
        paper_claim=(
            "Kollaps pre-computes the whole graph sequence offline because "
            "online recomputation of all-pairs shortest paths could take "
            "seconds on large graphs, precluding sub-second dynamics (§3, "
            "§6)."),
        headers=["metric", "value"],
        rows=[("offline pre-computation (all states)",
               f"{results['precompute_total'] * 1e3:.1f} ms"),
              ("runtime cost per event, pre-computed",
               f"{results['swap_per_event'] * 1e3:.1f} ms"),
              ("online collapse per event (ablation)",
               f"{results['online_per_event'] * 1e3:.1f} ms"),
              ("pre-computed states", results["states"])])
    result.check(
        "pre-computed swap at least 2x cheaper than online collapse",
        results["swap_per_event"] < results["online_per_event"] / 2)
    result.check("one state per distinct event time plus the base",
                 results["states"] == results["expected_states"])
    return result
