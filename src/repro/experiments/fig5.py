"""Figure 5 — deviation from bare metal for long- and short-lived flows.

Paper: one server, two clients behind a 1 Gb/s switch.  Long-lived iPerf3
flows under Cubic and Reno, and short-lived wrk2 HTTP traffic, run on bare
metal, Kollaps and Mininet; the deviation of measured bandwidth from the
bare-metal baseline stays below ~10 % (long-lived) and ~2 % (short-lived),
with Kollaps generally at least as close as Mininet.
"""

from __future__ import annotations

from typing import Dict

from repro.apps import HttpServer, Wrk2Client, run_iperf_pair
from repro.baselines import BareMetalTestbed, MininetEmulator
from repro.experiments.base import ExperimentResult, experiment, scenario_engine
from repro.topogen import star_topology

_DURATION = 15.0
GBPS = 1e9

WORKLOADS = ("cubic", "reno", "wrk2")
SYSTEMS = ("baremetal", "kollaps", "mininet")


def topology():
    return star_topology(["server", "client1", "client2"],
                         bandwidth=GBPS, latency=0.0005)


def systems():
    return {
        "baremetal": BareMetalTestbed(topology(), seed=61),
        "kollaps": scenario_engine(topology(), machines=3, seed=61),
        "mininet": MininetEmulator(topology(), seed=61),
    }


def long_lived(system, congestion_control: str,
               duration: float = _DURATION) -> float:
    result = run_iperf_pair(system, "client1", "server", duration=duration,
                            congestion_control=congestion_control,
                            warmup=3.0)
    return result.mean_goodput


def short_lived(system, duration: float = _DURATION) -> float:
    server = HttpServer(system.sim, system.dataplane, "server")
    client = Wrk2Client(system.sim, system.dataplane, "client2", server,
                        connections=100)
    start = system.sim.now
    system.run(until=start + duration)
    return client.stats.throughput(duration)


def compute_results(duration: float = _DURATION) -> Dict:
    results = {}
    for congestion_control in ("cubic", "reno"):
        for name, system in systems().items():
            results[(congestion_control, name)] = long_lived(
                system, congestion_control, duration)
    for name, system in systems().items():
        results[("wrk2", name)] = short_lived(system, duration)
    return results


@experiment("fig5")
def run(quick: bool = False) -> ExperimentResult:
    results = compute_results(duration=6.0 if quick else _DURATION)

    def deviation(workload: str, name: str) -> float:
        baseline = results[(workload, "baremetal")]
        return abs(1.0 - results[(workload, name)] / baseline)

    result = ExperimentResult(
        exp_id="fig5",
        title="Deviation from bare metal, long- and short-lived flows",
        paper_claim=(
            "Long-lived iPerf3 flows (Cubic and Reno) and short-lived wrk2 "
            "traffic over a 1 Gb/s switch: both Kollaps and Mininet stay "
            "within ~10 % (long) / ~2 % (short) of the bare-metal "
            "bandwidth, with Kollaps generally at least as close."),
        headers=["workload", "baremetal", "kollaps", "mininet",
                 "kollaps dev", "mininet dev"],
        rows=[(workload,
               f"{results[(workload, 'baremetal')] / 1e6:.1f} Mb/s",
               f"{results[(workload, 'kollaps')] / 1e6:.1f} Mb/s",
               f"{results[(workload, 'mininet')] / 1e6:.1f} Mb/s",
               f"{deviation(workload, 'kollaps'):.2%}",
               f"{deviation(workload, 'mininet'):.2%}")
              for workload in WORKLOADS])
    for congestion_control in ("cubic", "reno"):
        result.check(f"Kollaps within 10 % of bare metal "
                     f"({congestion_control})",
                     deviation(congestion_control, "kollaps") < 0.10)
        result.check(f"Mininet within 10 % of bare metal "
                     f"({congestion_control})",
                     deviation(congestion_control, "mininet") < 0.10)
    result.check("Kollaps close on short-lived wrk2 flows",
                 deviation("wrk2", "kollaps") < 0.10)
    result.check("Mininet close on short-lived wrk2 flows",
                 deviation("wrk2", "mininet") < 0.15)
    return result
