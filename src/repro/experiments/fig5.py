"""Figure 5 — deviation from bare metal for long- and short-lived flows.

Paper: one server, two clients behind a 1 Gb/s switch.  Long-lived iPerf3
flows under Cubic and Reno, and short-lived wrk2 HTTP traffic, run on bare
metal, Kollaps and Mininet; the deviation of measured bandwidth from the
bare-metal baseline stays below ~10 % (long-lived) and ~2 % (short-lived),
with Kollaps generally at least as close as Mininet.

The cross-system fan-out is a campaign: :func:`campaign` declares the
workload × backend grid once, the serial runner executes it in-process
(``jobs=1``), and ``repro campaign run fig5 --jobs N`` runs the *same*
grid in parallel against a persistent store — one definition, two
execution modes.  Deviations come from
:meth:`~repro.scenario.results.ScenarioRun.compare` against the
bare-metal run.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.base import ExperimentResult, campaign_factory, \
    experiment
from repro.scenario import CompiledScenario, ScenarioRun, http_load, iperf
from repro.scenario.topologies import star

_DURATION = 15.0
_SEED = 61
GBPS = 1e9

WORKLOADS = ("cubic", "reno", "wrk2")
SYSTEMS = ("baremetal", "kollaps", "mininet")


def point_scenario(*, traffic: str, duration: float = _DURATION,
                   seed: int = _SEED):
    """One Figure-5 scenario builder — the campaign's point factory.

    ``traffic`` names the workload kind (``cubic``/``reno``/``wrk2``);
    the axis is not called ``workload`` because that column name belongs
    to the campaign aggregate's own per-workload rows.
    """
    builder = star(["server", "client1", "client2"],
                   bandwidth=GBPS, latency=0.0005)
    if traffic == "wrk2":
        builder.workload(http_load("client2", "server", connections=100,
                                   key="wrk2"))
    else:
        builder.workload(iperf("client1", "server", duration=duration,
                               congestion_control=traffic, warmup=3.0,
                               key=traffic))
    return builder.deploy(machines=3, seed=seed, duration=duration)


def scenario(workload: str, duration: float = _DURATION) -> CompiledScenario:
    """One compiled Figure-5 scenario, ready for any backend."""
    return point_scenario(traffic=workload, duration=duration).compile()


@campaign_factory("fig5")
def campaign(duration: float = _DURATION):
    """The Figure-5 sweep: workloads × systems at the paper's seed."""
    from repro.campaign import Campaign
    return (Campaign("fig5")
            .scenario(point_scenario)
            .grid(traffic=WORKLOADS, duration=[duration])
            .seeds([_SEED])
            .backends(*SYSTEMS))


def compute_runs(duration: float = _DURATION
                 ) -> Dict[str, Dict[str, ScenarioRun]]:
    """workload -> backend -> the run of one campaign grid cell."""
    sweep = campaign(duration).run(jobs=1)
    return {workload: {system: sweep.run_for(traffic=workload,
                                             backend=system)
                       for system in SYSTEMS}
            for workload in WORKLOADS}


def measured(run: ScenarioRun, workload: str) -> float:
    """The headline bandwidth of one run (bits/s)."""
    return run.metric(workload).value


@experiment("fig5")
def run(quick: bool = False) -> ExperimentResult:
    runs = compute_runs(duration=6.0 if quick else _DURATION)

    def deviation(workload: str, name: str) -> float:
        comparison = runs[workload]["baremetal"].compare(runs[workload][name])
        return comparison.deviation(workload)

    result = ExperimentResult(
        exp_id="fig5",
        title="Deviation from bare metal, long- and short-lived flows",
        paper_claim=(
            "Long-lived iPerf3 flows (Cubic and Reno) and short-lived wrk2 "
            "traffic over a 1 Gb/s switch: both Kollaps and Mininet stay "
            "within ~10 % (long) / ~2 % (short) of the bare-metal "
            "bandwidth, with Kollaps generally at least as close."),
        headers=["workload", "baremetal", "kollaps", "mininet",
                 "kollaps dev", "mininet dev"],
        rows=[(workload,
               f"{measured(runs[workload]['baremetal'], workload) / 1e6:.1f}"
               " Mb/s",
               f"{measured(runs[workload]['kollaps'], workload) / 1e6:.1f}"
               " Mb/s",
               f"{measured(runs[workload]['mininet'], workload) / 1e6:.1f}"
               " Mb/s",
               f"{deviation(workload, 'kollaps'):.2%}",
               f"{deviation(workload, 'mininet'):.2%}")
              for workload in WORKLOADS])
    for congestion_control in ("cubic", "reno"):
        result.check(f"Kollaps within 10 % of bare metal "
                     f"({congestion_control})",
                     deviation(congestion_control, "kollaps") < 0.10)
        result.check(f"Mininet within 10 % of bare metal "
                     f"({congestion_control})",
                     deviation(congestion_control, "mininet") < 0.10)
    result.check("Kollaps close on short-lived wrk2 flows",
                 deviation("wrk2", "kollaps") < 0.10)
    result.check("Mininet close on short-lived wrk2 flows",
                 deviation("wrk2", "mininet") < 0.15)
    return result
