"""Experiment harness: structured results, a registry and reporting.

Every table and figure of the paper's evaluation has a runner module in
this package.  A runner computes the same rows/series the paper reports
and returns an :class:`ExperimentResult` carrying:

* the formatted rows (what the paper's table/plot shows),
* the paper's own claim for side-by-side comparison,
* a list of :class:`Check` objects — the *shape* assertions (who wins, by
  roughly what factor, where crossovers fall) that decide whether the
  reproduction holds.

The benchmarks under ``benchmarks/`` call the same runners (so the timed
harness and the report can never drift apart), and
:func:`render_markdown` turns a set of results into the repository's
``EXPERIMENTS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

__all__ = ["Check", "ExperimentResult", "experiment", "registered",
           "get_runner", "run_experiments", "scenario_engine",
           "campaign_factory", "as_campaign", "campaigns_registered",
           "format_table", "render_markdown"]


def scenario_engine(source, schedule=None, *, backend: str = "kollaps",
                    machines: int = 1, seed: int = 0, placement=None,
                    backend_options=None, **tunables):
    """A live execution system via the Scenario API and backend registry.

    Every experiment runner that drives a system by hand assembles it
    through this one helper, so all reproduction workloads flow through
    the unified :mod:`repro.scenario` choke point (validation included)
    *and* the :mod:`repro.scenario.backends` registry — no runner
    constructs an engine or baseline class directly.  ``source`` is a
    :class:`~repro.scenario.Scenario` builder (preferred — compiled once)
    or a bare :class:`~repro.topology.model.Topology` (adopted via
    ``Scenario.from_topology``).  ``backend`` selects the executing
    system (default: the Kollaps engine); ``tunables`` are
    :class:`~repro.core.engine.EngineConfig` fields
    (``enforce_bandwidth_sharing``, ``congestion_sensitivity``, ...).
    """
    from repro.scenario import Scenario, resolve_backend
    if isinstance(source, Scenario):
        builder = source
        for event in (schedule or []):
            builder.event(event)
    else:
        builder = Scenario.from_topology(source, schedule)
    builder.deploy(machines=machines, seed=seed, placement=placement,
                   **tunables)
    return resolve_backend(backend, **(backend_options or {})).prepare(
        builder.compile())


@dataclass
class Check:
    """One shape assertion with its outcome."""

    description: str
    passed: bool

    def __str__(self) -> str:
        marker = "PASS" if self.passed else "FAIL"
        return f"[{marker}] {self.description}"


@dataclass
class ExperimentResult:
    """Everything one table/figure reproduction produced."""

    exp_id: str                     # e.g. "table2", "fig8"
    title: str
    paper_claim: str                # what the paper reports, one paragraph
    headers: Sequence[str]
    rows: List[Sequence[object]]
    checks: List[Check] = field(default_factory=list)
    notes: str = ""

    def check(self, description: str, condition: bool) -> None:
        """Record one shape assertion."""
        self.checks.append(Check(description, bool(condition)))

    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def failures(self) -> List[Check]:
        return [check for check in self.checks if not check.passed]

    def assert_all(self) -> None:
        """Raise AssertionError on the first failing check (for pytest)."""
        for check in self.checks:
            assert check.passed, f"{self.exp_id}: {check.description}"


_REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {}
_CAMPAIGNS: Dict[str, Callable] = {}

# Presentation order for the report: the paper's own order.
_ORDER = ["table2", "table3", "fig3", "fig4", "fig5", "fig6", "fig7",
          "fig8", "table4", "fig9", "fig10", "fig11"]


def experiment(exp_id: str):
    """Register ``run(quick=False) -> ExperimentResult`` under ``exp_id``."""

    def decorator(function: Callable[..., ExperimentResult]):
        if exp_id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {exp_id!r}")
        _REGISTRY[exp_id] = function
        return function

    return decorator


def campaign_factory(exp_id: str):
    """Register ``campaign(**kwargs) -> Campaign`` under ``exp_id``.

    The decorated factory is the *one* definition of an experiment's
    sweep: the serial runner iterates the campaign it returns (with
    ``jobs=1`` and no store) and ``repro campaign run <exp_id>`` executes
    the very same grid in parallel against a persistent store — the two
    paths cannot drift.
    """

    def decorator(function: Callable):
        if exp_id in _CAMPAIGNS:
            raise ValueError(f"duplicate campaign id {exp_id!r}")
        _CAMPAIGNS[exp_id] = function
        return function

    return decorator


def campaigns_registered() -> List[str]:
    """Every experiment id that also exposes a campaign form."""
    _load_all()
    return sorted(_CAMPAIGNS)


def as_campaign(exp_id: str, **kwargs):
    """The campaign form of a registered experiment (fig5, table2, ...)."""
    _load_all()
    try:
        factory = _CAMPAIGNS[exp_id]
    except KeyError:
        raise KeyError(
            f"experiment {exp_id!r} has no campaign form; "
            f"available: {', '.join(campaigns_registered()) or 'none'}"
        ) from None
    return factory(**kwargs)


def registered() -> List[str]:
    """All experiment ids, paper order first, extras alphabetically after."""
    _load_all()
    extras = sorted(set(_REGISTRY) - set(_ORDER))
    return [exp_id for exp_id in _ORDER if exp_id in _REGISTRY] + extras


def get_runner(exp_id: str) -> Callable[..., ExperimentResult]:
    _load_all()
    try:
        return _REGISTRY[exp_id]
    except KeyError:
        raise KeyError(f"unknown experiment {exp_id!r}; "
                       f"known: {registered()}") from None


def run_experiments(only: Optional[Iterable[str]] = None, *,
                    quick: bool = False,
                    progress: Optional[Callable[[str], None]] = None
                    ) -> List[ExperimentResult]:
    """Run the selected (default: all) experiments in paper order."""
    _load_all()
    wanted = list(only) if only is not None else registered()
    for exp_id in wanted:
        if exp_id not in _REGISTRY:
            raise KeyError(f"unknown experiment {exp_id!r}; "
                           f"known: {registered()}")
    results = []
    for exp_id in registered():
        if exp_id not in wanted:
            continue
        if progress is not None:
            progress(exp_id)
        results.append(_REGISTRY[exp_id](quick=quick))
    return results


def _load_all() -> None:
    """Import every runner module so the registry is populated."""
    from repro.experiments import (  # noqa: F401
        ablation_perdest, ablation_precompute, ablation_sharing,
        fig3, fig4, fig5, fig6, fig7, fig8, fig9, fig10, fig11,
        table2, table3, table4,
    )


# ------------------------------------------------------------- presentation
def format_table(result: ExperimentResult) -> str:
    """Aligned plain-text rendering (what the benchmarks print)."""
    rows = [[str(cell) for cell in row] for row in result.rows]
    widths = [len(header) for header in result.headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [f"=== {result.title} ==="]
    lines.append("  ".join(header.ljust(width)
                           for header, width in zip(result.headers, widths)))
    lines.append("-" * len(lines[-1]))
    for row in rows:
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(row, widths)))
    return "\n".join(lines)


def _markdown_table(result: ExperimentResult) -> str:
    def row_text(cells: Sequence[object]) -> str:
        return "| " + " | ".join(str(cell) for cell in cells) + " |"

    lines = [row_text(result.headers),
             "|" + "|".join("---" for _ in result.headers) + "|"]
    lines.extend(row_text(row) for row in result.rows)
    return "\n".join(lines)


def render_markdown(results: Sequence[ExperimentResult]) -> str:
    """The EXPERIMENTS.md document: paper-vs-measured for every experiment."""
    lines = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Generated by `python -m repro.experiments` (also exercised, with",
        "identical code paths, by `pytest benchmarks/ --benchmark-only`).",
        "Absolute numbers come from the simulated substrate and are not",
        "expected to match the authors' testbed; each experiment instead",
        "records *shape checks* — who wins, by what factor, where the",
        "crossovers fall — mirroring the paper's qualitative claims.",
        "",
        "## Summary",
        "",
        "| Experiment | Title | Checks | Verdict |",
        "|---|---|---|---|",
    ]
    for result in results:
        verdict = "reproduced" if result.passed() else "NOT reproduced"
        lines.append(f"| {result.exp_id} | {result.title} | "
                     f"{sum(c.passed for c in result.checks)}"
                     f"/{len(result.checks)} | {verdict} |")
    lines.append("")
    for result in results:
        lines.append(f"## {result.exp_id}: {result.title}")
        lines.append("")
        lines.append(f"**Paper:** {result.paper_claim}")
        lines.append("")
        lines.append("**Measured:**")
        lines.append("")
        lines.append(_markdown_table(result))
        lines.append("")
        if result.notes:
            lines.append(f"**Notes:** {result.notes}")
            lines.append("")
        lines.append("**Shape checks:**")
        lines.append("")
        for check in result.checks:
            marker = "x" if check.passed else " "
            lines.append(f"- [{marker}] {check.description}")
        lines.append("")
    return "\n".join(lines) + "\n"
