"""Ablation — per-destination vs per-flow bandwidth enforcement (§3).

Kollaps "enforces bandwidth sharing per destination, not per flow", which
(together with only-active-flows reporting) is why Figure 3's metadata
traffic is flat in the number of containers.  This ablation measures the
metadata volume with per-destination aggregation (one record per container
pair, what Kollaps ships) against hypothetical per-flow reporting (one
record per TCP connection), for a memcached-style workload where clients
hold many connections to one server.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.base import ExperimentResult, experiment, scenario_engine
from repro.metadata.encoding import FlowRecord, MetadataMessage, encoded_size
from repro.scenario.topologies import star

CONNECTIONS_PER_CLIENT = 10
CLIENTS = 8


def compute_results(duration: float = 5.0) -> Dict[str, float]:
    # Drive real traffic so the engine's own (per-destination) metadata
    # volume is measured, not synthesized.
    scenario = star(["server"] + [f"c{i}" for i in range(CLIENTS)],
                    bandwidth=1e9, latency=0.002)
    engine = scenario_engine(scenario, machines=2, seed=141)
    for index in range(CLIENTS):
        # Each client's many connections aggregate into ONE shaped flow.
        engine.start_flow(f"f{index}", f"c{index}", "server", demand=20e6)
    engine.run(until=duration)
    per_destination_rate = engine.total_metadata_wire_bytes() / duration

    # Hypothetical per-flow encoding of the same instant: one record per
    # TCP connection rather than per container pair.
    per_dest_message = MetadataMessage(sender=0, flows=tuple(
        FlowRecord(i, CLIENTS, 20e6, (0, 1)) for i in range(CLIENTS)))
    per_flow_message = MetadataMessage(sender=0, flows=tuple(
        FlowRecord(i, CLIENTS, 2e6, (0, 1))
        for i in range(CLIENTS)
        for _connection in range(CONNECTIONS_PER_CLIENT)))
    return {
        "measured_rate": per_destination_rate,
        "per_dest_bytes": encoded_size(per_dest_message),
        "per_flow_bytes": encoded_size(per_flow_message),
    }


@experiment("ablation-perdest")
def run(quick: bool = False) -> ExperimentResult:
    results = compute_results(duration=2.0 if quick else 5.0)
    result = ExperimentResult(
        exp_id="ablation-perdest",
        title="Ablation: per-destination vs per-flow metadata",
        paper_claim=(
            "Kollaps enforces bandwidth sharing per destination, not per "
            "flow (§3); with many connections per container pair, per-flow "
            "reporting would multiply the metadata volume by the "
            "connection count."),
        headers=["metric", "value"],
        rows=[("measured wire rate (per-destination design)",
               f"{results['measured_rate'] / 1e3:.1f} KB/s"),
              ("report size, per-destination",
               f"{results['per_dest_bytes']} B"),
              (f"report size, per-flow ({CONNECTIONS_PER_CLIENT} "
               "conns/client)", f"{results['per_flow_bytes']} B")])
    result.check(
        "per-flow reporting an order of magnitude heavier",
        results["per_flow_bytes"]
        >= results["per_dest_bytes"] * CONNECTIONS_PER_CLIENT * 0.9)
    result.check("per-destination metadata flows on the wire",
                 results["measured_rate"] > 0)
    return result
