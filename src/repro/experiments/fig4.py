"""Figure 4 — memcached throughput is invariant to physical distribution.

Paper: a 4-region geo-topology with one memcached server and three memtier
clients per region (each server handles two local clients and one remote),
deployed over 1, 2, 4, 8 and 16 physical hosts.  Aggregate client
throughput stays flat as hosts are added (left plot), and per-host
metadata traffic stays in the tens of KB/s (right plot).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.apps import KvServer, MemtierClient
from repro.experiments.base import ExperimentResult, experiment, scenario_engine
from repro.sim import RngRegistry
from repro.scenario.topologies import aws_mesh

REGIONS = ["virginia", "oregon", "ireland", "saopaulo"]
HOSTS = [1, 2, 4, 8, 16]
_DURATION = 10.0


def run_deployment(hosts: int, connections: int,
                   duration: float = _DURATION) -> Tuple[float, float]:
    """(aggregate ops/s, mean per-host metadata bytes/s)."""
    scenario = aws_mesh(REGIONS, services_per_region=4,
                        service_prefix="node")
    engine = scenario_engine(scenario, machines=hosts, seed=51)
    rng = RngRegistry(51)
    clients = []
    for index, region in enumerate(REGIONS):
        server = KvServer(engine.sim, engine.dataplane,
                          f"node-{region}-0")
        # Two local clients plus one from the next region over.
        sources = [f"node-{region}-1", f"node-{region}-2",
                   f"node-{REGIONS[(index + 1) % len(REGIONS)]}-3"]
        for source in sources:
            clients.append(MemtierClient(
                engine.sim, engine.dataplane, source, server,
                connections=connections,
                rng=rng.stream(f"memtier:{source}")))
    engine.run(until=duration)
    aggregate = sum(client.stats.throughput(duration) for client in clients)
    metadata = engine.total_metadata_wire_bytes() / duration / hosts
    return aggregate, metadata


def compute_results(duration: float = _DURATION
                    ) -> Dict[Tuple[int, int], Tuple[float, float]]:
    results = {}
    for hosts in HOSTS:
        for connections in (1, 10):
            results[(hosts, connections)] = run_deployment(
                hosts, connections, duration)
    return results


@experiment("fig4")
def run(quick: bool = False) -> ExperimentResult:
    results = compute_results(duration=4.0 if quick else _DURATION)
    result = ExperimentResult(
        exp_id="fig4",
        title="memcached aggregate throughput and metadata per host",
        paper_claim=(
            "Aggregate throughput of the twelve memtier clients is "
            "consistent whether the emulation runs on 1, 2, 4, 8 or 16 "
            "physical hosts, for both 1 and 10 connections per client; "
            "per-host metadata traffic grows with hosts but stays "
            "negligible (< 30 KB/s)."),
        headers=["hosts", "ops/s (1 conn)", "ops/s (10 conn)",
                 "metadata/host KB/s (1)", "metadata/host KB/s (10)"],
        rows=[(hosts,
               f"{results[(hosts, 1)][0]:.0f}",
               f"{results[(hosts, 10)][0]:.0f}",
               f"{results[(hosts, 1)][1] / 1e3:.1f}",
               f"{results[(hosts, 10)][1] / 1e3:.1f}")
              for hosts in HOSTS])
    for connections in (1, 10):
        rates = [results[(hosts, connections)][0] for hosts in HOSTS]
        for hosts, rate in zip(HOSTS[1:], rates[1:]):
            result.check(
                f"throughput flat at {hosts} hosts ({connections} conn)",
                abs(rate - rates[0]) <= 0.10 * rates[0])
    result.check("10 connections per client beat 1 by > 2x",
                 results[(16, 10)][0] > results[(16, 1)][0] * 2)
    for hosts in HOSTS[1:]:
        result.check(f"metadata per host modest at {hosts} hosts",
                     results[(hosts, 10)][1] < 50e3)
    return result
