"""Figure 4 — memcached throughput is invariant to physical distribution.

Paper: a 4-region geo-topology with one memcached server and three memtier
clients per region (each server handles two local clients and one remote),
deployed over 1, 2, 4, 8 and 16 physical hosts.  Aggregate client
throughput stays flat as hosts are added (left plot), and per-host
metadata traffic stays in the tens of KB/s (right plot).

The hosts × connections fan-out is a campaign: :func:`campaign` is the
one grid definition, the memtier cluster installs through a ``custom``
workload (the Figure 10 pattern), and the serial runner drives
``Campaign.run(jobs=1)`` — so ``repro campaign run fig4`` (or a
distributed fleet) executes exactly the reproduction's code path.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.experiments.base import ExperimentResult, campaign_factory, \
    experiment
from repro.scenario import custom
from repro.scenario.topologies import aws_mesh
from repro.sim import RngRegistry

REGIONS = ["virginia", "oregon", "ireland", "saopaulo"]
HOSTS = [1, 2, 4, 8, 16]
_DURATION = 10.0
_SEED = 51


def point_scenario(*, hosts: int, connections: int,
                   duration: float = _DURATION, seed: int = _SEED):
    """One Figure-4 scenario builder — the campaign's point factory."""

    def install(engine):
        from repro.apps import KvServer, MemtierClient
        rng = RngRegistry(seed)
        clients = []
        for index, region in enumerate(REGIONS):
            server = KvServer(engine.sim, engine.dataplane,
                              f"node-{region}-0")
            # Two local clients plus one from the next region over.
            sources = [f"node-{region}-1", f"node-{region}-2",
                       f"node-{REGIONS[(index + 1) % len(REGIONS)]}-3"]
            for source in sources:
                clients.append(MemtierClient(
                    engine.sim, engine.dataplane, source, server,
                    connections=connections,
                    rng=rng.stream(f"memtier:{source}")))
        return clients

    def collect_ops(engine, until, clients) -> float:
        return sum(client.stats.throughput(until) for client in clients)

    def collect_metadata(engine, until, _state) -> float:
        return engine.total_metadata_wire_bytes() / until / hosts

    return (aws_mesh(REGIONS, services_per_region=4, service_prefix="node")
            .workload(custom("ops", install, collect=collect_ops))
            .workload(custom("metadata", collect=collect_metadata))
            .deploy(machines=hosts, seed=seed, duration=duration))


@campaign_factory("fig4")
def campaign(duration: float = _DURATION):
    """The Figure-4 sweep: host counts × connections per client."""
    from repro.campaign import Campaign
    return (Campaign("fig4")
            .scenario(point_scenario)
            .grid(hosts=HOSTS, connections=[1, 10], duration=[duration])
            .seeds([_SEED])
            .backends("kollaps"))


def compute_results(duration: float = _DURATION
                    ) -> Dict[Tuple[int, int], Tuple[float, float]]:
    """(hosts, connections) -> (aggregate ops/s, per-host metadata B/s)."""
    sweep = campaign(duration).run(jobs=1)
    results = {}
    for hosts in HOSTS:
        for connections in (1, 10):
            run = sweep.run_for(hosts=hosts, connections=connections)
            results[(hosts, connections)] = (run.metric("ops").value,
                                             run.metric("metadata").value)
    return results


@experiment("fig4")
def run(quick: bool = False) -> ExperimentResult:
    results = compute_results(duration=4.0 if quick else _DURATION)
    result = ExperimentResult(
        exp_id="fig4",
        title="memcached aggregate throughput and metadata per host",
        paper_claim=(
            "Aggregate throughput of the twelve memtier clients is "
            "consistent whether the emulation runs on 1, 2, 4, 8 or 16 "
            "physical hosts, for both 1 and 10 connections per client; "
            "per-host metadata traffic grows with hosts but stays "
            "negligible (< 30 KB/s)."),
        headers=["hosts", "ops/s (1 conn)", "ops/s (10 conn)",
                 "metadata/host KB/s (1)", "metadata/host KB/s (10)"],
        rows=[(hosts,
               f"{results[(hosts, 1)][0]:.0f}",
               f"{results[(hosts, 10)][0]:.0f}",
               f"{results[(hosts, 1)][1] / 1e3:.1f}",
               f"{results[(hosts, 10)][1] / 1e3:.1f}")
              for hosts in HOSTS])
    for connections in (1, 10):
        rates = [results[(hosts, connections)][0] for hosts in HOSTS]
        for hosts, rate in zip(HOSTS[1:], rates[1:]):
            result.check(
                f"throughput flat at {hosts} hosts ({connections} conn)",
                abs(rate - rates[0]) <= 0.10 * rates[0])
    result.check("10 connections per client beat 1 by > 2x",
                 results[(16, 10)][0] > results[(16, 1)][0] * 2)
    for hosts in HOSTS[1:]:
        result.check(f"metadata per host modest at {hosts} hosts",
                     results[(hosts, 10)][1] < 50e3)
    return result
