"""Table 3 — jitter-shaping accuracy against measured AWS links.

Paper: for each of 12 regions (from us-east-1), a link carries the
measured EC2 latency and jitter; 10 000 pings then measure the emulated
jitter.  Kollaps tracks the configured values closely (overall MSE between
observed and emulated jitter of 0.2029 ms^2, emulated slightly above
measured because of container-networking noise).
"""

from __future__ import annotations

from typing import Dict

from repro.apps import Pinger
from repro.experiments.base import ExperimentResult, experiment, scenario_engine
from repro.scenario.topologies import (
    AWS_REGION_LATENCY_FROM_US_EAST_1,
    aws_star,
)

_PINGS = 3000  # the paper uses 10 000; jitter stabilizes well before


def compute_stats(pings: int = _PINGS) -> Dict[str, object]:
    """Ping stats per destination region from the us-east-1 probe."""
    engine = scenario_engine(aws_star(), machines=2, seed=31,
                             enforce_bandwidth_sharing=False)
    pingers = {}
    for region in AWS_REGION_LATENCY_FROM_US_EAST_1:
        pingers[region] = Pinger(
            engine.sim, engine.dataplane, "probe", f"target-{region}",
            count=pings, interval=0.002).start()
    engine.run(until=pings * 0.002 + 2.0)
    return {region: pinger.stats for region, pinger in pingers.items()}


@experiment("table3")
def run(quick: bool = False) -> ExperimentResult:
    stats = compute_stats(pings=800 if quick else _PINGS)
    rows = []
    squared_error = 0.0
    for region, (latency_ms, ec2_jitter_ms) in \
            AWS_REGION_LATENCY_FROM_US_EAST_1.items():
        emulated_ms = stats[region].jitter * 1e3
        squared_error += (emulated_ms - ec2_jitter_ms) ** 2
        rows.append((region, f"{latency_ms:.0f}", f"{ec2_jitter_ms:.4f}",
                     f"{emulated_ms:.4f}"))
    mse = squared_error / len(AWS_REGION_LATENCY_FROM_US_EAST_1)
    rows.append(("MSE (paper: 0.2029)", "", "", f"{mse:.4f}"))

    result = ExperimentResult(
        exp_id="table3",
        title="Jitter shaping accuracy vs AWS inter-region links (ms)",
        paper_claim=(
            "Emulated jitter tracks the measured EC2 jitter for all 12 "
            "region pairs, consistently slightly above it; the overall "
            "mean squared error is 0.2029 ms^2."),
        headers=["destination", "latency", "EC2 jitter", "emulated jitter"],
        rows=rows)
    for region, (_, ec2_jitter_ms) in \
            AWS_REGION_LATENCY_FROM_US_EAST_1.items():
        result.check(
            f"emulated jitter within 20 % of configured for {region}",
            abs(stats[region].jitter * 1e3 - ec2_jitter_ms)
            <= 0.20 * ec2_jitter_ms)
    result.check("overall MSE in the paper's ballpark (< 0.25 ms^2)",
                 mse < 0.25)
    return result
