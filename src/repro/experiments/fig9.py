"""Figure 9 — reproducing the BFT-SMaRt vs Wheat geo-replication study.

Paper: one replica + one client per region (Virginia, Oregon, Ireland,
São Paulo, Sydney), replicated counter, leader in Virginia.  The figure
shows 50th/90th-percentile client latency per region, original EC2 run
(left) vs Kollaps (right): Kollaps reproduces the EC2 results within 7.3 %
(Wheat, Ireland 90th) and 2.7 % (BFT-SMaRt).  The qualitative structure:
Wheat beats BFT-SMaRt in every region, and remote clients (São Paulo,
Sydney) pay the most.
"""

from __future__ import annotations

from typing import Dict

from repro.apps import SmrDeployment
from repro.experiments.base import ExperimentResult, experiment, scenario_engine
from repro.scenario.topologies import aws_mesh

REGIONS = ["virginia", "oregon", "ireland", "saopaulo", "sydney"]
_OPERATIONS = 60


def run_protocol(protocol: str, operations: int = _OPERATIONS) -> Dict:
    scenario = aws_mesh(REGIONS, services_per_region=2,
                        service_prefix="n", jitter_ms=2.0)
    engine = scenario_engine(scenario, machines=5, seed=101,
                             enforce_bandwidth_sharing=False)
    replicas = [f"n-{region}-0" for region in REGIONS]
    deployment = SmrDeployment(engine.sim, engine.dataplane, replicas,
                               protocol=protocol, leader="n-virginia-0")
    stats = {region: deployment.run_client(f"n-{region}-1",
                                           operations=operations)
             for region in REGIONS}
    engine.run(until=180.0)
    return stats


def compute_results(operations: int = _OPERATIONS) -> Dict[str, Dict]:
    return {"bftsmart": run_protocol("bftsmart", operations),
            "wheat": run_protocol("wheat", operations)}


@experiment("fig9")
def run(quick: bool = False) -> ExperimentResult:
    operations = 25 if quick else _OPERATIONS
    results = compute_results(operations)
    rows = []
    for region in REGIONS:
        bft = results["bftsmart"][region]
        wheat = results["wheat"][region]
        rows.append((region,
                     f"{bft.percentile(0.5) * 1e3:.0f}",
                     f"{bft.percentile(0.9) * 1e3:.0f}",
                     f"{wheat.percentile(0.5) * 1e3:.0f}",
                     f"{wheat.percentile(0.9) * 1e3:.0f}"))
    result = ExperimentResult(
        exp_id="fig9",
        title="BFT-SMaRt vs Wheat client latency percentiles (ms)",
        paper_claim=(
            "Replicated counter over 5 AWS regions, leader in Virginia.  "
            "Kollaps reproduces the original EC2 latencies within 7.3 % "
            "(Wheat) / 2.7 % (BFT-SMaRt); Wheat's weighted quorums beat "
            "BFT-SMaRt in every region, and clients far from the quorum "
            "(São Paulo, Sydney) pay the most."),
        headers=["client region", "BFT p50", "BFT p90", "Wheat p50",
                 "Wheat p90"],
        rows=rows)
    for region in REGIONS:
        bft = results["bftsmart"][region]
        wheat = results["wheat"][region]
        result.check(f"all {region} operations completed",
                     len(bft.latencies) == operations)
        result.check(f"Wheat beats BFT-SMaRt in {region}",
                     wheat.percentile(0.5) < bft.percentile(0.5))
    for protocol in ("bftsmart", "wheat"):
        p50 = {region: results[protocol][region].percentile(0.5)
               for region in REGIONS}
        result.check(f"distance ordering holds for {protocol}",
                     p50["virginia"] < p50["saopaulo"]
                     < p50["sydney"] * 1.5)
        result.check(f"sydney pays more than oregon ({protocol})",
                     p50["sydney"] > p50["oregon"])
    result.check("latencies in the figure's range (50-600 ms)",
                 0.05 < results["bftsmart"]["virginia"].percentile(0.5)
                 < 0.6)
    return result
