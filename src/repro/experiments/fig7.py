"""Figure 7 — mixed long- and short-lived flows across three hosts.

Paper: host 1 runs an HTTP server and an iPerf3 client, host 2 runs a wrk2
client against host 1, host 3 runs the iPerf3 server.  The long-lived flow
runs for the whole experiment; the wrk2 client is active only in the
middle third.  Kollaps and Mininet both stay within a few percent of bare
metal on each host's measured bandwidth, with a spike at the transitions.

The whole mixed workload is one compiled scenario fanned across the three
backends; per-phase bandwidths are read off each run's fluid series.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.base import ExperimentResult, experiment
from repro.scenario import CompiledScenario, ScenarioRun, flow, http_load
from repro.scenario.topologies import star

# The experiment is 6 minutes in the paper; scaled 6x (phases of 20 s).
_PHASE = 20.0
GBPS = 1e9

METRICS = ["long_phase1", "long_phase2", "long_phase3", "short_phase2"]
SYSTEMS = ("baremetal", "kollaps", "mininet")


def scenario(phase: float = _PHASE) -> CompiledScenario:
    return (star(["host1", "host2", "host3"],
                 bandwidth=GBPS, latency=0.0005)
            .workload(flow("host1", "host3", key="iperf"),
                      http_load("host2", "host1", connections=100,
                                start=phase, stop=2 * phase, key="wrk2"))
            .deploy(machines=3, seed=81, duration=3 * phase)
            .compile())


def phase_metrics(run: ScenarioRun, phase: float) -> Dict[str, float]:
    total = 3 * phase
    fluid = run.engine.fluid
    return {
        "long_phase1": fluid.mean_throughput("iperf", 2.0, phase),
        "long_phase2": fluid.mean_throughput("iperf", phase, 2 * phase),
        "long_phase3": fluid.mean_throughput("iperf", 2 * phase + 2, total),
        "short_phase2": run["wrk2"].throughput(phase),
    }


def compute_results(phase: float = _PHASE) -> Dict[str, Dict[str, float]]:
    compiled = scenario(phase)
    return {system: phase_metrics(compiled.run(backend=system), phase)
            for system in SYSTEMS}


@experiment("fig7")
def run(quick: bool = False) -> ExperimentResult:
    results = compute_results(phase=12.0 if quick else _PHASE)

    def deviation(name: str, metric: str) -> float:
        return abs(1.0 - results[name][metric] / results["baremetal"][metric])

    result = ExperimentResult(
        exp_id="fig7",
        title="Mixed long- and short-lived flows, bandwidth per phase",
        paper_claim=(
            "An iPerf3 flow runs for the whole experiment while a wrk2 "
            "client is active only in the middle third.  On each of the "
            "three hosts, Kollaps and Mininet stay mostly below 5 % "
            "deviation from bare metal, with spikes only at the "
            "transitions."),
        headers=["metric", "baremetal", "kollaps", "mininet",
                 "kollaps dev", "mininet dev"],
        rows=[(metric,
               f"{results['baremetal'][metric] / 1e6:.1f}",
               f"{results['kollaps'][metric] / 1e6:.1f}",
               f"{results['mininet'][metric] / 1e6:.1f}",
               f"{deviation('kollaps', metric):.2%}",
               f"{deviation('mininet', metric):.2%}")
              for metric in METRICS])
    for metric in METRICS:
        result.check(f"Kollaps within 12 % of bare metal on {metric}",
                     deviation("kollaps", metric) < 0.12)
        result.check(f"Mininet within 15 % of bare metal on {metric}",
                     deviation("mininet", metric) < 0.15)
    result.check("the long flow keeps most of the gigabit in phase 2",
                 results["baremetal"]["long_phase2"] > 0.5 * GBPS)
    return result
