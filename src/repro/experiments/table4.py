"""Table 4 — RTT accuracy on large scale-free topologies.

Paper: preferential-attachment topologies of 1000/2000/4000 elements;
end-nodes ping random end-nodes for 10 minutes and the RTTs are compared
against the theoretical shortest-path values.  MSE (ms^2):

    size   Kollaps   Mininet   Maxinet
    1000   0.0261    0.0079    28.0779
    2000   0.0384    N/A       347.5303
    4000   0.0721    N/A       N/A

Mininet is slightly better at 1000 (no cross-machine hops) but cannot go
further; Maxinet's controller pushes it three orders of magnitude off.
Sizes are scaled (250/500/1000) to keep the harness fast — the error
*sources* (container networking, physical hops, controller round trips)
are size-independent.

Each size is one compiled scenario (probe pairs as ping workloads) fanned
across the kollaps/mininet/maxinet backends; Mininet's over-budget sizes
fail backend validation, which is the paper's N/A.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.experiments.base import ExperimentResult, experiment
from repro.scenario import (
    BackendCompatibilityError,
    CompiledScenario,
    ScenarioRun,
    ping,
)
from repro.scenario.topologies import scale_free
from repro.sim import RngRegistry

SIZES = [250, 500, 1000]
_PAIRS = 30       # probe pairs per run
_PINGS = 40       # pings per pair
_MININET_BUDGET = 400  # scaled single-machine element budget

BACKENDS = {
    "kollaps": {},
    "mininet": {"element_budget": _MININET_BUDGET},
    "maxinet": {"workers": 4},
}


def pick_pairs(compiled: CompiledScenario, seed: int,
               pair_count: int = _PAIRS):
    rng = RngRegistry(seed).stream("pairs")
    containers = compiled.topology.container_names()
    collapsed = compiled.collapsed()
    pairs = []
    while len(pairs) < pair_count:
        a, b = rng.sample(containers, 2)
        if collapsed.path(a, b) and collapsed.path(b, a):
            pairs.append((a, b))
    return pairs


def scenario(size: int, pings: int = _PINGS,
             pair_count: int = _PAIRS) -> Tuple[CompiledScenario, Dict]:
    """The probing scenario plus the theoretical RTT per probe pair."""
    builder = scale_free(size, seed=size)
    bare = builder.compile()
    pairs = pick_pairs(bare, seed=size, pair_count=pair_count)
    collapsed = bare.collapsed()
    theory = {(a, b): collapsed.rtt(a, b) for a, b in pairs}
    for index, (a, b) in enumerate(pairs):
        builder.workload(ping(a, b, count=pings, interval=0.05,
                              start=index * 0.001, key=(a, b)))
    compiled = builder.deploy(machines=4, seed=size,
                              enforce_bandwidth_sharing=False,
                              duration=pings * 0.05 + 3.0).compile()
    return compiled, theory


def mse_of(run: ScenarioRun, theory: Dict) -> float:
    squared = []
    for (a, b), expected in theory.items():
        stats = run[(a, b)]
        if not stats.rtts:
            continue
        # Median: the steady-state RTT, as the paper's 10-minute runs see
        # it (flow-setup transients amortize to nothing there; our runs
        # are short enough that a mean would still carry them).
        error_ms = (stats.median_rtt - expected) * 1e3
        squared.append(error_ms ** 2)
    return sum(squared) / len(squared)


def compute_results(pings: int = _PINGS, pair_count: int = _PAIRS
                    ) -> Dict[Tuple[str, int], Optional[float]]:
    results: Dict[Tuple[str, int], Optional[float]] = {}
    for size in SIZES:
        compiled, theory = scenario(size, pings, pair_count)
        for system, options in BACKENDS.items():
            if system == "maxinet" and size > SIZES[1]:
                # The paper stops Maxinet at 2000 of 4000 elements.
                results[(system, size)] = None
                continue
            try:
                run = compiled.run(backend=system, **options)
            except BackendCompatibilityError:
                results[(system, size)] = None
                continue
            results[(system, size)] = mse_of(run, theory)
    return results


@experiment("table4")
def run(quick: bool = False) -> ExperimentResult:
    results = compute_results(pings=25 if quick else _PINGS,
                              pair_count=20 if quick else _PAIRS)

    def cell(system: str, size: int) -> str:
        value = results[(system, size)]
        return "N/A" if value is None else f"{value:.4f}"

    result = ExperimentResult(
        exp_id="table4",
        title="RTT mean squared error (ms^2) on scale-free topologies",
        paper_claim=(
            "Kollaps: 0.0261/0.0384/0.0721 ms^2 at 1000/2000/4000 "
            "elements.  Mininet is slightly better at 1000 (0.0079, no "
            "cross-machine hops) but cannot run larger topologies; "
            "Maxinet is orders of magnitude worse (28.1/347.5) and gives "
            "up at 4000.  Sizes here are scaled to 250/500/1000."),
        headers=["size", "kollaps", "mininet", "maxinet"],
        rows=[(size, cell("kollaps", size), cell("mininet", size),
               cell("maxinet", size)) for size in SIZES],
        notes=("Topology sizes scaled 4x down (250/500/1000) to keep the "
               "harness fast; the error sources are size-independent."))
    smallest = SIZES[0]
    for size in SIZES:
        result.check(f"Kollaps MSE < 0.5 ms^2 at size {size}",
                     results[("kollaps", size)] < 0.5)
    result.check("Mininet accurate at the smallest size",
                 results[("mininet", smallest)] < 0.5)
    result.check("Mininet beats Kollaps at the smallest size (paper order)",
                 results[("mininet", smallest)]
                 < results[("kollaps", smallest)])
    result.check("Mininet N/A beyond one machine",
                 results[("mininet", SIZES[1])] is None)
    result.check("Maxinet orders of magnitude worse than Kollaps",
                 results[("maxinet", smallest)]
                 > 50 * results[("kollaps", smallest)])
    result.check("Maxinet gives up at the largest size",
                 results[("maxinet", SIZES[2])] is None)
    return result
