"""Table 4 — RTT accuracy on large scale-free topologies.

Paper: preferential-attachment topologies of 1000/2000/4000 elements;
end-nodes ping random end-nodes for 10 minutes and the RTTs are compared
against the theoretical shortest-path values.  MSE (ms^2):

    size   Kollaps   Mininet   Maxinet
    1000   0.0261    0.0079    28.0779
    2000   0.0384    N/A       347.5303
    4000   0.0721    N/A       N/A

Mininet is slightly better at 1000 (no cross-machine hops) but cannot go
further; Maxinet's controller pushes it three orders of magnitude off.
Sizes are scaled (250/500/1000) to keep the harness fast — the error
*sources* (container networking, physical hops, controller round trips)
are size-independent.

Each size is one campaign cell (probe pairs as ping workloads) fanned
across the kollaps/mininet/maxinet backends; Mininet's over-budget sizes
fail backend validation — the campaign's ``incompatible`` status, the
paper's N/A.  :func:`campaign` is the one grid definition; the serial
runner and ``repro campaign run table4`` both execute it.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Optional, Tuple

from repro.experiments.base import ExperimentResult, campaign_factory, \
    experiment
from repro.scenario import CompiledScenario, ScenarioRun, ping
from repro.scenario.topologies import scale_free
from repro.sim import RngRegistry

SIZES = [250, 500, 1000]
_PAIRS = 30       # probe pairs per run
_PINGS = 40       # pings per pair
_MININET_BUDGET = 400  # scaled single-machine element budget

BACKENDS = {
    "kollaps": {},
    "mininet": {"element_budget": _MININET_BUDGET},
    "maxinet": {"workers": 4},
}


def pick_pairs(compiled: CompiledScenario, seed: int,
               pair_count: int = _PAIRS):
    rng = RngRegistry(seed).stream("pairs")
    containers = compiled.topology.container_names()
    collapsed = compiled.collapsed()
    pairs = []
    while len(pairs) < pair_count:
        a, b = rng.sample(containers, 2)
        if collapsed.path(a, b) and collapsed.path(b, a):
            pairs.append((a, b))
    return pairs


@lru_cache(maxsize=None)
def probe_plan(size: int, pair_count: int = _PAIRS) -> Tuple[Tuple, Dict]:
    """The probe pairs and their theoretical RTTs for one topology size.

    Cached: the campaign factory runs once per backend, and the
    all-pairs collapse of a scale-free topology is the expensive part.
    """
    bare = scale_free(size, seed=size).compile()
    pairs = tuple(pick_pairs(bare, seed=size, pair_count=pair_count))
    collapsed = bare.collapsed()
    theory = {(a, b): collapsed.rtt(a, b) for a, b in pairs}
    return pairs, theory


def point_scenario(*, size: int, pings: int = _PINGS,
                   pair_count: int = _PAIRS, seed: int = 0):
    """One Table-4 probing scenario — the campaign's point factory.

    The engine seed is ``size + seed``: campaign seed 0 reproduces the
    historical per-size seeding, further seeds vary the run.
    """
    pairs, _theory = probe_plan(size, pair_count)
    builder = scale_free(size, seed=size)
    for index, (a, b) in enumerate(pairs):
        builder.workload(ping(a, b, count=pings, interval=0.05,
                              start=index * 0.001, key=(a, b)))
    return builder.deploy(machines=4, seed=size + seed,
                          enforce_bandwidth_sharing=False,
                          duration=pings * 0.05 + 3.0)


def scenario(size: int, pings: int = _PINGS,
             pair_count: int = _PAIRS) -> Tuple[CompiledScenario, Dict]:
    """The probing scenario plus the theoretical RTT per probe pair."""
    compiled = point_scenario(size=size, pings=pings,
                              pair_count=pair_count).compile()
    _pairs, theory = probe_plan(size, pair_count)
    return compiled, theory


@campaign_factory("table4")
def campaign(pings: int = _PINGS, pair_count: int = _PAIRS):
    """The Table-4 sweep: sizes × systems, minus the paper's givens.

    Maxinet stops at the middle size (the paper stops it at 2000 of
    4000 elements), so those cells are excluded rather than executed.
    """
    from repro.campaign import Campaign
    builder = (Campaign("table4")
               .scenario(point_scenario)
               .grid(size=SIZES, pings=[pings], pair_count=[pair_count])
               .seeds([0]))
    for system, options in BACKENDS.items():
        builder.backend(system, **options)
    return builder.exclude(
        lambda point: point.label == "maxinet"
        and dict(point.params)["size"] > SIZES[1])


def mse_of(run: ScenarioRun, theory: Dict) -> float:
    squared = []
    for (a, b), expected in theory.items():
        stats = run[(a, b)]
        if not stats.rtts:
            continue
        # Median: the steady-state RTT, as the paper's 10-minute runs see
        # it (flow-setup transients amortize to nothing there; our runs
        # are short enough that a mean would still carry them).
        error_ms = (stats.median_rtt - expected) * 1e3
        squared.append(error_ms ** 2)
    return sum(squared) / len(squared)


def compute_results(pings: int = _PINGS, pair_count: int = _PAIRS
                    ) -> Dict[Tuple[str, int], Optional[float]]:
    sweep = campaign(pings, pair_count).run(jobs=1)
    results: Dict[Tuple[str, int], Optional[float]] = {}
    for size in SIZES:
        _pairs, theory = probe_plan(size, pair_count)
        for system in BACKENDS:
            cell = sweep.result_for(size=size, backend=system)
            if cell is None or cell.status == "incompatible":
                # Excluded (Maxinet beyond the paper's sizes) or failed
                # backend validation (Mininet over budget): the N/A cells.
                results[(system, size)] = None
                continue
            if cell.status == "error":
                raise RuntimeError(f"table4 cell {cell.point.describe()} "
                                   f"failed: {cell.error}")
            results[(system, size)] = mse_of(cell.run, theory)
    return results


@experiment("table4")
def run(quick: bool = False) -> ExperimentResult:
    results = compute_results(pings=25 if quick else _PINGS,
                              pair_count=20 if quick else _PAIRS)

    def cell(system: str, size: int) -> str:
        value = results[(system, size)]
        return "N/A" if value is None else f"{value:.4f}"

    result = ExperimentResult(
        exp_id="table4",
        title="RTT mean squared error (ms^2) on scale-free topologies",
        paper_claim=(
            "Kollaps: 0.0261/0.0384/0.0721 ms^2 at 1000/2000/4000 "
            "elements.  Mininet is slightly better at 1000 (0.0079, no "
            "cross-machine hops) but cannot run larger topologies; "
            "Maxinet is orders of magnitude worse (28.1/347.5) and gives "
            "up at 4000.  Sizes here are scaled to 250/500/1000."),
        headers=["size", "kollaps", "mininet", "maxinet"],
        rows=[(size, cell("kollaps", size), cell("mininet", size),
               cell("maxinet", size)) for size in SIZES],
        notes=("Topology sizes scaled 4x down (250/500/1000) to keep the "
               "harness fast; the error sources are size-independent."))
    smallest = SIZES[0]
    for size in SIZES:
        result.check(f"Kollaps MSE < 0.5 ms^2 at size {size}",
                     results[("kollaps", size)] < 0.5)
    result.check("Mininet accurate at the smallest size",
                 results[("mininet", smallest)] < 0.5)
    result.check("Mininet beats Kollaps at the smallest size (paper order)",
                 results[("mininet", smallest)]
                 < results[("kollaps", smallest)])
    result.check("Mininet N/A beyond one machine",
                 results[("mininet", SIZES[1])] is None)
    result.check("Maxinet orders of magnitude worse than Kollaps",
                 results[("maxinet", smallest)]
                 > 50 * results[("kollaps", smallest)])
    result.check("Maxinet gives up at the largest size",
                 results[("maxinet", SIZES[2])] is None)
    return result
