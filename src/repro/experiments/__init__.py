"""Per-table/figure experiment runners and the EXPERIMENTS.md generator.

One module per experiment of the paper's evaluation (§5): each exposes a
registered ``run(quick=False) -> ExperimentResult`` plus the underlying
compute functions the benchmarks reuse.  ``python -m repro.experiments``
runs any subset and regenerates ``EXPERIMENTS.md``.
"""

from repro.experiments.base import (
    Check,
    ExperimentResult,
    as_campaign,
    campaign_factory,
    campaigns_registered,
    experiment,
    format_table,
    get_runner,
    registered,
    render_markdown,
    run_experiments,
)

__all__ = [
    "Check",
    "ExperimentResult",
    "as_campaign",
    "campaign_factory",
    "campaigns_registered",
    "experiment",
    "format_table",
    "get_runner",
    "registered",
    "render_markdown",
    "run_experiments",
]
