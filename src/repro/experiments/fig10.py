"""Figure 10 — geo-replicated Cassandra throughput/latency on Kollaps.

Paper: 4 replicas in Frankfurt + 4 in Sydney (RF = 2), 4 YCSB clients in
Frankfurt, 50/50 read/update, R = ONE / W = QUORUM.  The EC2 deployment
and the Kollaps emulation produce near-identical throughput-latency
curves: flat latency until the replicas saturate, then a sharp climb.
Here the "EC2" reference is the bare-metal run of the same workload over
the full physical topology; Kollaps is the collapsed emulation.

The Cassandra cluster rides a ``custom`` workload, so the same compiled
scenario fans across the baremetal and kollaps backends like every other
cross-system experiment.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.experiments.base import ExperimentResult, experiment
from repro.scenario import CompiledScenario, custom
from repro.scenario.topologies import aws_mesh
from repro.sim import RngRegistry

THREAD_SWEEP = [1, 4, 8, 16, 32]
_DURATION = 25.0
_REGIONS = ("frankfurt", "sydney")

# Independent YCSB request streams per backend, as the paper's two
# deployments are independent runs.
_SEED_TAGS = {"baremetal": "e", "kollaps": "k"}


def replica_names():
    return [f"cas-{region}-{index}" for index in range(4)
            for region in _REGIONS]


def _install_cassandra(threads: int):
    def install(system):
        from repro.apps import CassandraCluster, YcsbClient
        cluster = CassandraCluster(system.sim, system.dataplane,
                                   replica_names(), replication_factor=2,
                                   write_consistency=2, read_consistency=1,
                                   service_time=2e-3)
        tag = _SEED_TAGS.get(getattr(system, "scenario_backend", "kollaps"),
                             "k")
        return [YcsbClient(system.sim, system.dataplane,
                           f"cas-frankfurt-{4 + index}", cluster,
                           f"cas-frankfurt-{index}",
                           threads=max(1, threads // 4), read_fraction=0.5,
                           rng=RngRegistry(111).stream(
                               f"ycsb:{tag}{threads}:{index}"))
                for index in range(4)]
    return install


def _collect_cassandra(system, until, clients) -> Tuple[float, float]:
    throughput = sum(client.stats.throughput(until) for client in clients)
    latencies = sorted(latency for client in clients
                       for latency in client.stats.all_latencies())
    mean_latency = (sum(latencies) / len(latencies)) if latencies else 0.0
    return throughput, mean_latency


def scenario(threads: int, duration: float = _DURATION) -> CompiledScenario:
    # 4 replicas per region; 4 YCSB clients ride extra Frankfurt services.
    return (aws_mesh(list(_REGIONS), services_per_region=8,
                     service_prefix="cas")
            .workload(custom(f"ycsb-{threads}",
                             _install_cassandra(threads),
                             collect=_collect_cassandra,
                             needs=("packet",), duration=duration))
            .deploy(machines=4, seed=111, duration=duration,
                    enforce_bandwidth_sharing=False)
            .compile())


def compute_curve(duration: float = _DURATION
                  ) -> Dict[Tuple[str, int], Tuple[float, float]]:
    curve = {}
    for threads in THREAD_SWEEP:
        compiled = scenario(threads, duration)
        curve[("ec2", threads)] = \
            compiled.run(backend="baremetal")[f"ycsb-{threads}"]
        curve[("kollaps", threads)] = \
            compiled.run(backend="kollaps")[f"ycsb-{threads}"]
    return curve


@experiment("fig10")
def run(quick: bool = False) -> ExperimentResult:
    curve = compute_curve(duration=10.0 if quick else _DURATION)
    result = ExperimentResult(
        exp_id="fig10",
        title="Cassandra throughput/latency, EC2(baremetal) vs Kollaps",
        paper_claim=(
            "Geo-replicated Cassandra (Frankfurt + Sydney, W=QUORUM, "
            "R=ONE, 50/50 mix) produces near-identical throughput-latency "
            "curves on EC2 and on Kollaps: flat latency until the "
            "replicas saturate, then a sharp climb, with only slight "
            "differences after the turning point."),
        headers=["threads", "EC2 ops/s", "EC2 lat ms", "Kollaps ops/s",
                 "Kollaps lat ms"],
        rows=[(threads,
               f"{curve[('ec2', threads)][0]:.0f}",
               f"{curve[('ec2', threads)][1] * 1e3:.1f}",
               f"{curve[('kollaps', threads)][0]:.0f}",
               f"{curve[('kollaps', threads)][1] * 1e3:.1f}")
              for threads in THREAD_SWEEP])
    for threads in THREAD_SWEEP:
        ec2_tp, ec2_lat = curve[("ec2", threads)]
        kol_tp, kol_lat = curve[("kollaps", threads)]
        result.check(f"throughput matches at {threads} threads",
                     abs(kol_tp - ec2_tp) <= 0.12 * ec2_tp)
        result.check(f"latency matches at {threads} threads",
                     abs(kol_lat - ec2_lat) <= 0.15 * ec2_lat)
    result.check("throughput grows with offered load before saturation",
                 curve[("kollaps", 16)][0] > 2.5 * curve[("kollaps", 1)][0])
    result.check("latency eventually climbs (the hockey stick)",
                 curve[("kollaps", 32)][1] >= curve[("kollaps", 1)][1] * 0.9)
    return result
