"""``python -m repro.experiments`` — regenerate EXPERIMENTS.md.

Usage::

    python -m repro.experiments                    # all, full fidelity
    python -m repro.experiments --quick            # shorter runs
    python -m repro.experiments --only fig8 table2
    python -m repro.experiments -o /tmp/report.md
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments.base import (
    format_table,
    registered,
    render_markdown,
    run_experiments,
)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables and figures and write "
                    "the EXPERIMENTS.md report.")
    parser.add_argument("--only", nargs="+", metavar="EXP",
                        help="run only these experiment ids")
    parser.add_argument("--quick", action="store_true",
                        help="shorter runs (smoke-test fidelity)")
    parser.add_argument("--list", action="store_true",
                        help="list experiment ids and exit")
    parser.add_argument("-o", "--output", default="EXPERIMENTS.md",
                        help="report path (default: %(default)s); "
                             "'-' prints to stdout")
    arguments = parser.parse_args(argv)

    if arguments.list:
        from repro.experiments.base import _load_all
        _load_all()
        for exp_id in registered():
            print(exp_id)
        return 0

    def progress(exp_id: str) -> None:
        print(f"[{time.strftime('%H:%M:%S')}] running {exp_id} ...",
              file=sys.stderr, flush=True)

    results = run_experiments(arguments.only, quick=arguments.quick,
                              progress=progress)
    for result in results:
        print(format_table(result), file=sys.stderr)
        print(file=sys.stderr)

    report = render_markdown(results)
    if arguments.output == "-":
        print(report)
    else:
        with open(arguments.output, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"wrote {arguments.output}", file=sys.stderr)

    failed = [result for result in results if not result.passed()]
    for result in failed:
        for check in result.failures():
            print(f"FAILED {result.exp_id}: {check.description}",
                  file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
