"""Figure 3 — metadata network traffic vs containers, flows and hosts.

Paper: dumbbell topologies with (C containers, F flows) on 1-4 physical
hosts, iPerf3 at 50 Mb/s through the shared link.  Metadata traffic is
zero on one host (shared memory only), grows with the number of *hosts*,
and is essentially flat in the number of *containers* — the
decentralization claim.  Absolute volume stays in the hundreds of KB/s at
the largest configuration (paper: ~493 KB/s at 160 containers, 4 hosts).

The sweep is a campaign: :func:`campaign` declares the (containers,
flows) × hosts grid once — the configurations the paper never measured
are ``exclude``\\ d — with the metadata rate collected by a ``custom``
workload, so the serial runner (``jobs=1``), ``repro campaign run fig3
--jobs N`` and a distributed ``repro campaign fleet fig3`` all execute
the identical per-point path.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.experiments.base import ExperimentResult, campaign_factory, \
    experiment
from repro.netstack.plane import BULK_PLANE
from repro.scenario import custom, flow
from repro.scenario.topologies import dumbbell

# (containers, flows) configurations of Figure 3 (scaled to half size so
# the full sweep stays fast; the relationships are size-independent).
CONFIGS = [(20, 10), (40, 10), (40, 20), (80, 10), (80, 20), (80, 40)]
HOSTS = [1, 2, 3, 4]
_DURATION = 5.0
_SEED = 41


def _metadata_rate(engine, until, _state) -> float:
    """Total metadata wire traffic in bytes/s over the whole run."""
    return engine.total_metadata_wire_bytes() / until


def point_scenario(*, containers: int, flows: int, hosts: int,
                   duration: float = _DURATION, seed: int = _SEED):
    """One Figure-3 scenario builder — the campaign's point factory."""
    builder = dumbbell(containers // 2, shared_bandwidth=50e6)
    for index in range(flows):
        builder.workload(flow(f"client{index}", f"server{index}",
                              key=f"f{index}"))
    builder.workload(custom("metadata", collect=_metadata_rate,
                            needs=(BULK_PLANE,)))
    return builder.deploy(machines=hosts, seed=seed, duration=duration)


@campaign_factory("fig3")
def campaign(duration: float = _DURATION):
    """The Figure-3 sweep: measured (containers, flows) cells × hosts."""
    from repro.campaign import Campaign
    return (Campaign("fig3")
            .scenario(point_scenario)
            .grid(containers=sorted({c for c, _f in CONFIGS}),
                  flows=sorted({f for _c, f in CONFIGS}),
                  hosts=HOSTS,
                  duration=[duration])
            .seeds([_SEED])
            .backends("kollaps")
            .exclude(lambda point: (point.params_dict()["containers"],
                                    point.params_dict()["flows"])
                     not in CONFIGS))


def compute_results(duration: float = _DURATION
                    ) -> Dict[Tuple[int, int, int], float]:
    """(containers, flows, hosts) -> metadata bytes/s, via the campaign."""
    sweep = campaign(duration).run(jobs=1)
    return {(containers, flows, hosts):
            sweep.run_for(containers=containers, flows=flows,
                          hosts=hosts).metric("metadata").value
            for containers, flows in CONFIGS for hosts in HOSTS}


@experiment("fig3")
def run(quick: bool = False) -> ExperimentResult:
    results = compute_results(duration=2.0 if quick else _DURATION)
    result = ExperimentResult(
        exp_id="fig3",
        title="Metadata traffic (KB/s) by (containers, flows) x hosts",
        paper_claim=(
            "Metadata traffic is zero on a single host (shared memory "
            "only), grows with the number of physical hosts, and is flat "
            "in the number of containers; the largest configuration "
            "(160 containers, 4 hosts) needs only ~493 KB/s."),
        headers=["config"] + [f"{h} hosts" for h in HOSTS],
        rows=[(f"c={containers} f={flows}",
               *(f"{results[(containers, flows, hosts)] / 1e3:.1f}"
                 for hosts in HOSTS))
              for containers, flows in CONFIGS])
    for containers, flows in CONFIGS:
        result.check(
            f"zero network metadata on one host (c={containers} f={flows})",
            results[(containers, flows, 1)] == 0.0)
        result.check(
            f"traffic grows with host count (c={containers} f={flows})",
            results[(containers, flows, 4)]
            > results[(containers, flows, 2)] > 0.0)
    base = results[(20, 10, 4)]
    wide = results[(80, 10, 4)]
    result.check("flat in containers: 4x containers, same traffic (+/-30 %)",
                 abs(wide - base) <= 0.30 * base)
    result.check("modest absolute volume (< 500 KB/s everywhere)",
                 max(results.values()) < 500e3)
    return result
