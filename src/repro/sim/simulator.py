"""The discrete-event simulator: clock, event queue and processes.

Design notes
------------
The kernel is a classic calendar queue built on :mod:`heapq`.  Events are
ordered by ``(time, priority, sequence)``; the monotonically increasing
sequence number makes the ordering total and therefore the whole simulation
deterministic for a fixed set of seeds.

Callbacks are plain callables.  Periodic activities (the Kollaps emulation
loop, application request generators, the fluid-engine integrator) are
modelled as :class:`Process` objects which reschedule themselves.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = ["Simulator", "Event", "Process", "SimError"]


class SimError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. scheduling in the past)."""


@dataclass(order=True)
class Event:
    """A scheduled callback.  Comparison uses (time, priority, seq) only."""

    time: float
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)

    def cancel(self) -> None:
        """Mark the event so the dispatcher skips it (O(1) lazy deletion)."""
        self.cancelled = True


class Simulator:
    """Event loop with a simulated clock starting at time 0.0 seconds."""

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self.events_dispatched = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def at(self, time: float, callback: Callable[[], None], *,
           priority: int = 0, label: str = "") -> Event:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimError(
                f"cannot schedule event at {time:.9f}, now is {self._now:.9f}")
        event = Event(time, priority, next(self._seq), callback, label=label)
        heapq.heappush(self._queue, event)
        return event

    def after(self, delay: float, callback: Callable[[], None], *,
              priority: int = 0, label: str = "") -> Event:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimError(f"negative delay: {delay}")
        return self.at(self._now + delay, callback, priority=priority, label=label)

    def run(self, until: Optional[float] = None) -> float:
        """Dispatch events in order until the queue drains or ``until``.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fires earlier, so back-to-back ``run`` calls
        compose naturally.  Returns the final simulated time.
        """
        self._running = True
        try:
            while self._queue:
                event = self._queue[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                self._now = event.time
                self.events_dispatched += 1
                event.callback()
        finally:
            self._running = False
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def step(self) -> bool:
        """Dispatch a single event.  Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self.events_dispatched += 1
            event.callback()
            return True
        return False

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for event in self._queue if not event.cancelled)


class Process:
    """A periodic activity: calls :meth:`tick` every ``period`` seconds.

    Subclasses override :meth:`tick`; alternatively a callable can be passed
    directly.  The process stops when :meth:`stop` is called or when
    :meth:`tick` returns ``False``.
    """

    def __init__(self, sim: Simulator, period: float,
                 tick: Optional[Callable[[], Any]] = None, *,
                 name: str = "", start_after: float = 0.0,
                 priority: int = 0) -> None:
        if period <= 0:
            raise SimError(f"process period must be positive, got {period}")
        self.sim = sim
        self.period = period
        self.name = name or type(self).__name__
        self._tick_fn = tick
        self._priority = priority
        self._stopped = False
        self._event: Optional[Event] = None
        self.ticks = 0
        self._event = sim.after(start_after, self._run, priority=priority,
                                label=self.name)

    def tick(self) -> Any:
        """One iteration of the activity; override or pass ``tick=`` at init."""
        if self._tick_fn is None:
            raise NotImplementedError
        return self._tick_fn()

    def _run(self) -> None:
        if self._stopped:
            return
        result = self.tick()
        self.ticks += 1
        if result is False or self._stopped:
            self._stopped = True
            return
        self._event = self.sim.after(self.period, self._run,
                                     priority=self._priority, label=self.name)

    def stop(self) -> None:
        """Stop the process; any queued tick is cancelled."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()

    @property
    def stopped(self) -> bool:
        return self._stopped
