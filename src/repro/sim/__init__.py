"""Deterministic discrete-event simulation kernel.

Everything in this reproduction — the emulated cluster, the traffic-control
qdiscs, the packet network, the Kollaps emulation loop, the applications —
executes on top of this kernel.  It provides:

* :class:`~repro.sim.simulator.Simulator` — the event loop and clock,
* :class:`~repro.sim.simulator.Process` — long-running simulated activities,
* :class:`~repro.sim.rng.RngRegistry` — named, seeded random streams so that
  every experiment is reproducible bit-for-bit.
"""

from repro.sim.rng import RngRegistry
from repro.sim.simulator import Event, Process, SimError, Simulator

__all__ = ["Simulator", "Process", "Event", "SimError", "RngRegistry"]
