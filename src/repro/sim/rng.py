"""Named, seeded random streams.

Every stochastic component (netem jitter, application think times, workload
key choice, ...) draws from its own stream derived from a root seed and a
stable name.  This keeps components independent: adding a new random draw in
one module does not perturb the sequence observed by any other module, which
is essential when comparing emulators against a "bare-metal" ground truth run
on the same seed.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngRegistry"]


class RngRegistry:
    """Factory for deterministic per-component :class:`random.Random` streams."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The per-stream seed is a SHA-256 of ``(root_seed, name)`` so streams
        are uncorrelated and stable across runs and platforms.
        """
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.root_seed}:{name}".encode()).digest()
            self._streams[name] = random.Random(
                int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def fork(self, name: str) -> "RngRegistry":
        """Derive a child registry (e.g. one per emulated host)."""
        digest = hashlib.sha256(f"{self.root_seed}:fork:{name}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))
