"""Unit parsing and formatting for rates, durations and sizes.

The topology description language (Listing 1 in the paper) expresses link
properties as human-readable strings such as ``"10Mbps"``, ``"50ms"`` or
``"64KB"``.  Internally the whole code base works in SI base units:

* bandwidth — bits per second (``float``)
* time — seconds (``float``)
* data — bits (``float``), with byte helpers where natural

These helpers are deliberately strict: a malformed unit string raises
:class:`UnitError` instead of silently defaulting, because a typo in an
experiment description would otherwise corrupt a whole evaluation run.
"""

from repro.units.rates import (
    UnitError,
    format_rate,
    format_size,
    format_time,
    parse_rate,
    parse_size,
    parse_time,
)

__all__ = [
    "UnitError",
    "parse_rate",
    "parse_time",
    "parse_size",
    "format_rate",
    "format_time",
    "format_size",
]
