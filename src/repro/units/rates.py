"""Parsers and formatters for bandwidth, time and size unit strings."""

from __future__ import annotations

import re

__all__ = [
    "UnitError",
    "parse_rate",
    "parse_time",
    "parse_size",
    "format_rate",
    "format_time",
    "format_size",
]


class UnitError(ValueError):
    """Raised when a unit string cannot be parsed."""


_RATE_MULTIPLIERS = {
    "bps": 1.0,
    "kbps": 1e3,
    "mbps": 1e6,
    "gbps": 1e9,
    "tbps": 1e12,
    # Paper uses "Kb/s", "Mb/s", "Gb/s" spellings as well.
    "b/s": 1.0,
    "kb/s": 1e3,
    "mb/s": 1e6,
    "gb/s": 1e9,
    "tb/s": 1e12,
}

_TIME_MULTIPLIERS = {
    "s": 1.0,
    "sec": 1.0,
    "secs": 1.0,
    "ms": 1e-3,
    "us": 1e-6,
    "ns": 1e-9,
    "min": 60.0,
    "h": 3600.0,
}

_SIZE_MULTIPLIERS = {
    # bits
    "b": 1.0,
    "kb": 1e3,
    "mb": 1e6,
    "gb": 1e9,
    # bytes (uppercase B by convention); parsing is case-insensitive so the
    # byte-forms must be spelled with a trailing "yte" marker internally.
    "byte": 8.0,
    "bytes": 8.0,
    "kib": 8 * 1024.0,
    "mib": 8 * 1024.0 ** 2,
    "gib": 8 * 1024.0 ** 3,
}

_NUMBER_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([a-zA-Z/]*)\s*$")


def _split(text: str) -> tuple[float, str]:
    match = _NUMBER_RE.match(text)
    if match is None:
        raise UnitError(f"cannot parse unit string: {text!r}")
    return float(match.group(1)), match.group(2)


def parse_rate(value: "str | float | int", default_unit: str = "bps") -> float:
    """Parse a bandwidth value into bits per second.

    Accepts plain numbers (interpreted in ``default_unit``) or strings such
    as ``"10Mbps"``, ``"50 Mb/s"``, ``"128Kbps"``.
    """
    if isinstance(value, (int, float)):
        return float(value) * _RATE_MULTIPLIERS[default_unit.lower()]
    number, unit = _split(value)
    unit = unit.lower() or default_unit.lower()
    if unit not in _RATE_MULTIPLIERS:
        raise UnitError(f"unknown rate unit {unit!r} in {value!r}")
    return number * _RATE_MULTIPLIERS[unit]


def parse_time(value: "str | float | int", default_unit: str = "s") -> float:
    """Parse a duration into seconds.

    Plain numbers are interpreted in ``default_unit`` (seconds unless
    stated otherwise — the topology language uses milliseconds for link
    latency, so callers pass ``default_unit="ms"`` there).
    """
    if isinstance(value, (int, float)):
        return float(value) * _TIME_MULTIPLIERS[default_unit.lower()]
    number, unit = _split(value)
    unit = unit.lower() or default_unit.lower()
    if unit not in _TIME_MULTIPLIERS:
        raise UnitError(f"unknown time unit {unit!r} in {value!r}")
    return number * _TIME_MULTIPLIERS[unit]


def parse_size(value: "str | float | int", default_unit: str = "byte") -> float:
    """Parse a data size into bits.

    Byte units: ``KB``/``MB``/``GB`` are *decimal bytes* here (the paper's
    "64KB requests"); ``KiB``-style units are binary bytes.  Bare ``b`` is a
    bit, ``B``-suffixed strings are routed to byte units by case.
    """
    if isinstance(value, (int, float)):
        return float(value) * _SIZE_MULTIPLIERS[default_unit.lower()]
    number, unit = _split(value)
    if not unit:
        return number * _SIZE_MULTIPLIERS[default_unit.lower()]
    # Case-sensitive byte/bit distinction before lowercasing: "KB" means
    # kilobytes, "Kb" / "kb" means kilobits.
    if unit.endswith("B"):
        prefix = unit[:-1].lower()
        scale = {"": 1.0, "k": 1e3, "m": 1e6, "g": 1e9,
                 "ki": 1024.0, "mi": 1024.0 ** 2, "gi": 1024.0 ** 3}.get(prefix)
        if scale is None:
            raise UnitError(f"unknown size unit {unit!r} in {value!r}")
        return number * scale * 8.0
    unit_l = unit.lower()
    if unit_l in _SIZE_MULTIPLIERS:
        return number * _SIZE_MULTIPLIERS[unit_l]
    raise UnitError(f"unknown size unit {unit!r} in {value!r}")


def format_rate(bits_per_second: float) -> str:
    """Render a rate with an auto-selected SI unit, e.g. ``"50.0Mbps"``."""
    for unit, factor in (("Gbps", 1e9), ("Mbps", 1e6), ("Kbps", 1e3)):
        if abs(bits_per_second) >= factor:
            return f"{bits_per_second / factor:.4g}{unit}"
    return f"{bits_per_second:.4g}bps"


def format_time(seconds: float) -> str:
    """Render a duration with an auto-selected unit, e.g. ``"10ms"``."""
    if abs(seconds) >= 1.0:
        return f"{seconds:.4g}s"
    if abs(seconds) >= 1e-3:
        return f"{seconds * 1e3:.4g}ms"
    if abs(seconds) >= 1e-6:
        return f"{seconds * 1e6:.4g}us"
    return f"{seconds * 1e9:.4g}ns"


def format_size(bits: float) -> str:
    """Render a size in bytes with an auto-selected unit."""
    size_bytes = bits / 8.0
    for unit, factor in (("GB", 1e9), ("MB", 1e6), ("KB", 1e3)):
        if abs(size_bytes) >= factor:
            return f"{size_bytes / factor:.4g}{unit}"
    return f"{size_bytes:.4g}B"
