"""Render deployment plans as Compose / Kubernetes manifest files.

The real Deployment Generator writes ``docker-compose.yml`` or Kubernetes
manifest files that "users can customize before starting an actual
deployment" (§4).  This module serializes the plan documents produced by
:class:`~repro.orchestration.generator.DeploymentGenerator` into YAML text.

The serializer is deliberately small and self-contained (no PyYAML
dependency): it emits the subset of YAML the plan documents need — nested
mappings, sequences, strings, numbers and booleans — with deterministic key
order so generated files diff cleanly between runs.
"""

from __future__ import annotations

import re
from typing import Dict, List

from repro.orchestration.generator import DeploymentPlan

__all__ = ["to_yaml", "render_compose_file", "render_kubernetes_manifests",
           "render_plan"]

# Strings that are safe to emit without quotes.  Anything that could be
# mistaken for another YAML scalar type (numbers, booleans, null, flow
# syntax) gets quoted.
_PLAIN_RE = re.compile(r"^[A-Za-z/][A-Za-z0-9_./:\- ]*$")
_AMBIGUOUS = {"true", "false", "null", "yes", "no", "on", "off", "~"}


def _scalar(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if value is None:
        return "null"
    text = str(value)
    # ':' is only safe in a plain scalar when not followed by a space (so
    # volume specs like "/a:/b:ro" stay unquoted but "needs: quoting" not).
    if (_PLAIN_RE.match(text) and text.lower() not in _AMBIGUOUS
            and not text.endswith((" ", ":")) and ": " not in text):
        return text
    return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'


def _emit(value: object, indent: int, lines: List[str]) -> None:
    prefix = "  " * indent
    if isinstance(value, dict):
        if not value:
            lines[-1] += " {}"
            return
        for key, item in value.items():
            lines.append(f"{prefix}{_scalar(key)}:")
            if isinstance(item, (dict, list)):
                _emit(item, indent + 1, lines)
            else:
                lines[-1] += f" {_scalar(item)}"
    elif isinstance(value, list):
        if not value:
            lines[-1] += " []"
            return
        for item in value:
            lines.append(f"{prefix}-")
            if isinstance(item, (dict, list)):
                _emit_inline_block(item, indent, lines)
            else:
                lines[-1] += f" {_scalar(item)}"
    else:  # pragma: no cover - callers always pass containers
        lines.append(f"{prefix}{_scalar(value)}")


def _emit_inline_block(item: object, indent: int, lines: List[str]) -> None:
    """Emit a mapping/sequence as the body of a ``-`` list entry."""
    marker_line = len(lines) - 1
    _emit(item, indent + 1, lines)
    # Fold the first child line onto the '-' marker ("- key: value").
    if len(lines) > marker_line + 1:
        first_child = lines[marker_line + 1].lstrip()
        lines[marker_line] += " " + first_child
        del lines[marker_line + 1]


def to_yaml(document: Dict) -> str:
    """Serialize a plan document to YAML text (trailing newline included)."""
    lines: List[str] = []
    _emit(document, 0, lines)
    return "\n".join(lines) + "\n"


def render_compose_file(plan: DeploymentPlan) -> str:
    """The ``docker-compose.yml`` for a Swarm plan."""
    if plan.orchestrator != "swarm":
        raise ValueError(f"not a swarm plan: {plan.orchestrator!r}")
    return to_yaml(plan.document)


def render_kubernetes_manifests(plan: DeploymentPlan) -> str:
    """Kubernetes manifests as one multi-document YAML stream."""
    if plan.orchestrator != "kubernetes":
        raise ValueError(f"not a kubernetes plan: {plan.orchestrator!r}")
    documents = [to_yaml(item) for item in plan.document["items"]]
    return "---\n" + "---\n".join(documents)


def render_plan(plan: DeploymentPlan) -> str:
    """Dispatch on the plan's orchestrator."""
    if plan.orchestrator == "swarm":
        return render_compose_file(plan)
    if plan.orchestrator == "kubernetes":
        return render_kubernetes_manifests(plan)
    raise ValueError(f"unknown orchestrator {plan.orchestrator!r}")
