"""The Swarm bootstrapping flow (§4 "Privileged bootstrapping").

Docker Swarm cannot grant ``CAP_NET_ADMIN`` to service containers, so a
bootstrapper container deployed globally (one per machine) launches the
privileged Emulation Manager *outside* Swarm, sharing the host PID
namespace.  The manager then watches the local Docker daemon for container
creations and attaches an Emulation Core to every container carrying the
Kollaps supervision tag.

This module reproduces that control flow as explicit state so the tests can
assert the sequencing (bootstrap -> manager -> core per tagged container)
and that untagged containers are left alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.orchestration.generator import KOLLAPS_TAG

__all__ = ["SwarmBootstrapper", "LaunchedManager"]


@dataclass
class LaunchedManager:
    """The privileged Emulation Manager process a bootstrapper started."""

    machine: str
    privileged: bool = True
    shares_host_pid: bool = True
    supervised_containers: List[str] = field(default_factory=list)

    def on_container_created(self, container: str,
                             labels: Dict[str, str]) -> bool:
        """Docker-daemon watch callback; returns True when supervised."""
        if labels.get(KOLLAPS_TAG) != "true":
            return False
        self.supervised_containers.append(container)
        return True


class SwarmBootstrapper:
    """One bootstrapper per Swarm node."""

    def __init__(self, machine: str) -> None:
        self.machine = machine
        self.manager: Optional[LaunchedManager] = None

    def bootstrap(self) -> LaunchedManager:
        """Launch the Emulation Manager outside Swarm (idempotent)."""
        if self.manager is None:
            self.manager = LaunchedManager(machine=self.machine)
        return self.manager
