"""Deployment generation and container-orchestrator integration (§4).

The Deployment Generator turns an experiment description into a
ready-to-deploy plan: a Docker-Compose-like document for Swarm mode (which
additionally needs the privileged *bootstrapper* per machine, since Swarm
cannot grant ``CAP_NET_ADMIN``) or a Kubernetes-manifest-like document
(where the Emulation Manager deploys as a DaemonSet and no bootstrapper is
needed).
"""

from repro.orchestration.generator import (
    DeploymentGenerator,
    DeploymentPlan,
    KOLLAPS_TAG,
    campaign_fleet_plan,
)
from repro.orchestration.bootstrap import SwarmBootstrapper
from repro.orchestration.discovery import (
    Endpoint,
    KubernetesDiscovery,
    ResolutionError,
    SwarmDiscovery,
)
from repro.orchestration.emitters import (
    render_compose_file,
    render_kubernetes_manifests,
    render_plan,
    to_yaml,
)

__all__ = [
    "DeploymentGenerator",
    "DeploymentPlan",
    "KOLLAPS_TAG",
    "SwarmBootstrapper",
    "campaign_fleet_plan",
    "Endpoint",
    "KubernetesDiscovery",
    "ResolutionError",
    "SwarmDiscovery",
    "render_compose_file",
    "render_kubernetes_manifests",
    "render_plan",
    "to_yaml",
]
