"""Service-name resolution: the Swarm DNS / Kubernetes API stand-in.

At initialization each Emulation Core "resolves the names of all services
to obtain their IP addresses via the internal Swarm discovering service or
Kubernetes's API" (§4.1).  This module models both resolution styles over
the simulated cluster:

* :class:`SwarmDiscovery` — Swarm-style: a service name resolves to a
  virtual IP plus the set of task (container) addresses; individual
  replicas resolve via the ``tasks.<service>`` convention.
* :class:`KubernetesDiscovery` — API-style: endpoints are looked up per
  service and carry readiness; a container only appears once marked ready.

Both are thin, deterministic facades over the same
:class:`~repro.tc.ip.IpAllocator` the engine uses, so a resolved address is
always the address the TCAL filters match on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.tc.ip import IpAllocator
from repro.topology.model import Topology, TopologyError

__all__ = ["ResolutionError", "Endpoint", "SwarmDiscovery",
           "KubernetesDiscovery"]


class ResolutionError(LookupError):
    """A name that the discovery service cannot resolve."""


@dataclass(frozen=True)
class Endpoint:
    """One resolvable container address."""

    container: str
    address: str
    ready: bool = True


class _DiscoveryBase:
    """Shared mapping from topology services to allocated addresses."""

    def __init__(self, topology: Topology, allocator: IpAllocator) -> None:
        self._topology = topology
        self._allocator = allocator
        self._endpoints: Dict[str, List[Endpoint]] = {}
        for service in topology.services.values():
            endpoints = []
            for container in service.container_names():
                endpoints.append(Endpoint(
                    container, str(allocator.assign(container))))
            self._endpoints[service.name] = endpoints

    def services(self) -> List[str]:
        return sorted(self._endpoints)

    def _service_endpoints(self, service: str) -> List[Endpoint]:
        try:
            return self._endpoints[service]
        except KeyError:
            raise ResolutionError(f"unknown service {service!r}") from None


class SwarmDiscovery(_DiscoveryBase):
    """Swarm-style DNS: service VIPs and ``tasks.<service>`` expansion."""

    def resolve(self, name: str) -> str:
        """Resolve a service or container name to one address.

        A bare service name returns the first task's address (standing in
        for the VIP); a concrete container name (``svc.2``) returns that
        container's address.
        """
        if name in self._endpoints:
            return self._endpoints[name][0].address
        try:
            return str(self._allocator.lookup(name))
        except KeyError:
            raise ResolutionError(f"cannot resolve {name!r}") from None

    def resolve_tasks(self, service: str) -> List[str]:
        """``tasks.<service>``: every replica's address, in replica order."""
        return [endpoint.address
                for endpoint in self._service_endpoints(service)]


class KubernetesDiscovery(_DiscoveryBase):
    """Kubernetes-API-style lookup with per-endpoint readiness."""

    def __init__(self, topology: Topology, allocator: IpAllocator) -> None:
        super().__init__(topology, allocator)
        self._ready: Dict[str, bool] = {
            endpoint.container: True
            for endpoints in self._endpoints.values()
            for endpoint in endpoints}

    def set_ready(self, container: str, ready: bool) -> None:
        if container not in self._ready:
            raise ResolutionError(f"unknown container {container!r}")
        self._ready[container] = ready

    def endpoints(self, service: str) -> List[Endpoint]:
        """The service's endpoint list, readiness included."""
        return [Endpoint(e.container, e.address, self._ready[e.container])
                for e in self._service_endpoints(service)]

    def ready_addresses(self, service: str) -> List[str]:
        return [endpoint.address for endpoint in self.endpoints(service)
                if endpoint.ready]
