"""The Deployment Generator: experiment description -> deployment plan.

Mirrors §3/§4: services become orchestrator service entries tagged with the
Kollaps supervision label; the topology descriptor is mounted for every
Emulation Manager; Swarm plans add the bootstrapper global service, while
Kubernetes plans express the manager as a privileged DaemonSet with host
PID namespace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.topology.model import Service, Topology

__all__ = ["DeploymentGenerator", "DeploymentPlan", "KOLLAPS_TAG",
           "campaign_fleet_plan"]

# The label that tells the Emulation Manager which containers to supervise
# (the "tag injected in the configuration" of §4).
KOLLAPS_TAG = "kollaps.emulated"


@dataclass
class DeploymentPlan:
    """A generated, orchestrator-specific deployment document."""

    orchestrator: str                    # "swarm" | "kubernetes"
    document: Dict                       # compose- or manifest-like dict
    placement: Dict[str, str]            # container -> machine
    needs_bootstrapper: bool

    def emulated_containers(self) -> List[str]:
        return sorted(self.placement)


class DeploymentGenerator:
    """Generates Swarm or Kubernetes deployment plans for a topology."""

    def __init__(self, topology: Topology, *,
                 topology_descriptor_path: str = "/etc/kollaps/topology.yaml"
                 ) -> None:
        self.topology = topology
        self.descriptor_path = topology_descriptor_path

    # ----------------------------------------------------------- placement
    def place(self, machines: List[str],
              strategy: str = "spread") -> Dict[str, str]:
        """Assign containers to machines.

        ``spread`` round-robins containers for even load; ``pack`` fills a
        machine before moving on (useful to minimize cross-host metadata).
        """
        containers = self.topology.container_names()
        if not machines:
            raise ValueError("no machines to place on")
        placement: Dict[str, str] = {}
        if strategy == "spread":
            for index, container in enumerate(containers):
                placement[container] = machines[index % len(machines)]
        elif strategy == "pack":
            per_machine = -(-len(containers) // len(machines))
            for index, container in enumerate(containers):
                placement[container] = machines[index // per_machine]
        else:
            raise ValueError(f"unknown placement strategy {strategy!r}")
        return placement

    # --------------------------------------------------------------- swarm
    def swarm_plan(self, machines: List[str],
                   strategy: str = "spread") -> DeploymentPlan:
        """A Docker-Compose (stack) document plus the bootstrapper."""
        placement = self.place(machines, strategy)
        services: Dict[str, Dict] = {}
        for service in self.topology.services.values():
            services[service.name] = {
                "image": service.image,
                "deploy": {"replicas": service.replicas},
                "labels": {KOLLAPS_TAG: "true"},
                "networks": ["kollaps_overlay"],
            }
            if service.command:
                services[service.name]["command"] = service.command
        # The bootstrapper runs once per machine (mode: global) and starts
        # the privileged Emulation Manager outside Swarm (§4).
        services["kollaps-bootstrapper"] = {
            "image": "kollaps/bootstrapper",
            "deploy": {"mode": "global"},
            "labels": {KOLLAPS_TAG: "false"},
            "volumes": ["/var/run/docker.sock:/var/run/docker.sock",
                        f"{self.descriptor_path}:{self.descriptor_path}:ro"],
            "networks": ["kollaps_overlay"],
        }
        document = {
            "version": "3.7",
            "services": services,
            "networks": {"kollaps_overlay": {"driver": "overlay",
                                             "attachable": True}},
        }
        return DeploymentPlan(orchestrator="swarm", document=document,
                              placement=placement, needs_bootstrapper=True)

    # ---------------------------------------------------------- kubernetes
    def kubernetes_plan(self, machines: List[str],
                        strategy: str = "spread") -> DeploymentPlan:
        """Kubernetes manifests: Deployments + the EM DaemonSet."""
        placement = self.place(machines, strategy)
        items: List[Dict] = []
        for service in self.topology.services.values():
            items.append({
                "apiVersion": "apps/v1",
                "kind": "Deployment",
                "metadata": {"name": service.name,
                             "labels": {KOLLAPS_TAG: "true"}},
                "spec": {
                    "replicas": service.replicas,
                    "selector": {"matchLabels": {"app": service.name}},
                    "template": {
                        "metadata": {"labels": {"app": service.name,
                                                KOLLAPS_TAG: "true"}},
                        "spec": {"containers": [{
                            "name": service.name,
                            "image": service.image,
                        }]},
                    },
                },
            })
        # Under Kubernetes the Emulation Manager deploys directly as a
        # privileged DaemonSet — no bootstrapper needed (§4).
        items.append({
            "apiVersion": "apps/v1",
            "kind": "DaemonSet",
            "metadata": {"name": "kollaps-emulation-manager"},
            "spec": {"template": {"spec": {
                "hostPID": True,
                "containers": [{
                    "name": "emulation-manager",
                    "image": "kollaps/emulation-manager",
                    "securityContext": {
                        "privileged": True,
                        "capabilities": {"add": ["NET_ADMIN"]},
                    },
                    "volumeMounts": [{
                        "name": "topology",
                        "mountPath": self.descriptor_path,
                        "readOnly": True,
                    }],
                }],
            }}},
        })
        document = {"apiVersion": "v1", "kind": "List", "items": items}
        return DeploymentPlan(orchestrator="kubernetes", document=document,
                              placement=placement, needs_bootstrapper=False)


# ---------------------------------------------------------------------------
# Campaign fleets: the coordinator/worker deployment for distributed sweeps.
# ---------------------------------------------------------------------------
def campaign_fleet_plan(source: str, workers: int, *,
                        orchestrator: str = "swarm",
                        store: str = "/campaigns",
                        image: str = "kollaps/repro",
                        machines: Optional[List[str]] = None
                        ) -> DeploymentPlan:
    """The deployment document for one campaign's coordinator/worker fleet.

    The fleet's control plane is the campaign store directory itself
    (:mod:`repro.campaign.distributed`), so the whole deployment is one
    coordinator, ``workers`` worker replicas, and a shared ``campaigns``
    volume mounted at ``store`` — no message bus, no service mesh.
    ``source`` is the campaign source as seen *inside* the containers (a
    registered experiment id like ``table2``, or a ``.py`` path on the
    shared volume).  Swarm plans express the fleet as compose services;
    Kubernetes plans as a coordinator Job plus a worker Job with
    ``parallelism``, sharing a PersistentVolumeClaim.  Neither needs the
    privileged bootstrapper: campaign workers run simulations, not
    ``tc``.
    """
    if workers < 1:
        raise ValueError("a campaign fleet needs at least one worker")
    if machines is None:
        machines = [f"host-{index}" for index in range(workers)]
    serve_command = ["python", "-m", "repro.cli", "campaign", "serve",
                     source, "--store", store]
    work_command = ["python", "-m", "repro.cli", "campaign", "work",
                    source, "--store", store]
    placement = {"campaign-coordinator": machines[0]}
    for index in range(workers):
        placement[f"campaign-worker-{index}"] = machines[index % len(machines)]

    if orchestrator == "swarm":
        document = {
            "version": "3.7",
            "services": {
                "campaign-coordinator": {
                    "image": image,
                    "command": serve_command,
                    "deploy": {"replicas": 1},
                    "volumes": [f"campaigns:{store}"],
                },
                "campaign-worker": {
                    "image": image,
                    "command": work_command,
                    "deploy": {"replicas": workers},
                    "volumes": [f"campaigns:{store}"],
                },
            },
            "volumes": {"campaigns": {}},
        }
        return DeploymentPlan(orchestrator="swarm", document=document,
                              placement=placement, needs_bootstrapper=False)

    if orchestrator == "kubernetes":
        volume = {"name": "campaigns",
                  "persistentVolumeClaim": {"claimName": "campaigns"}}
        mount = [{"name": "campaigns", "mountPath": store}]
        items: List[Dict] = [{
            "apiVersion": "v1",
            "kind": "PersistentVolumeClaim",
            "metadata": {"name": "campaigns"},
            "spec": {"accessModes": ["ReadWriteMany"],
                     "resources": {"requests": {"storage": "1Gi"}}},
        }, {
            "apiVersion": "batch/v1",
            "kind": "Job",
            "metadata": {"name": "campaign-coordinator"},
            "spec": {"template": {"spec": {
                "restartPolicy": "OnFailure",
                "containers": [{"name": "coordinator", "image": image,
                                "command": serve_command,
                                "volumeMounts": mount}],
                "volumes": [volume],
            }}},
        }, {
            "apiVersion": "batch/v1",
            "kind": "Job",
            "metadata": {"name": "campaign-worker"},
            "spec": {
                "parallelism": workers,
                "completions": workers,
                "template": {"spec": {
                    "restartPolicy": "OnFailure",
                    "containers": [{"name": "worker", "image": image,
                                    "command": work_command,
                                    "volumeMounts": mount}],
                    "volumes": [volume],
                }},
            },
        }]
        document = {"apiVersion": "v1", "kind": "List", "items": items}
        return DeploymentPlan(orchestrator="kubernetes", document=document,
                              placement=placement, needs_bootstrapper=False)

    raise ValueError(f"unknown orchestrator {orchestrator!r}")
