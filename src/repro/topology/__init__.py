"""Topology description: model, parsers, validation and dynamic events.

The experiment description language mirrors the paper's Listing 1/2:
``services`` (sets of containers sharing an image), ``bridges`` (switches and
routers), ``links`` (uni- or bi-directional, with latency / bandwidth /
jitter / loss), and ``dynamic`` events that mutate any of these while the
experiment runs.

The ``parse_*`` functions are deprecation shims over the unified Scenario
API; new code should build through :class:`repro.scenario.Scenario`
(``from_text`` / ``from_dict`` / ``from_xml`` / the fluent builder).
"""

from repro.topology.model import (
    Bridge,
    Link,
    LinkProperties,
    Service,
    Topology,
    TopologyError,
)
from repro.topology.events import (
    DynamicEvent,
    EventAction,
    EventSchedule,
)
from repro.topology.parser import (
    parse_experiment,
    parse_experiment_text,
    parse_modelnet_xml,
)
from repro.topology.thunderstorm import (
    ThunderstormError,
    compile_scenario,
    parse_scenario,
)

__all__ = [
    "Topology",
    "Service",
    "Bridge",
    "Link",
    "LinkProperties",
    "TopologyError",
    "DynamicEvent",
    "EventAction",
    "EventSchedule",
    "parse_experiment",
    "parse_experiment_text",
    "parse_modelnet_xml",
    "ThunderstormError",
    "compile_scenario",
    "parse_scenario",
]
