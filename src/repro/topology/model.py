"""The topology object model: services, bridges, links and the graph.

Terminology follows §3 of the paper:

* **service** — a named set of containers sharing the same image; a service
  with ``replicas = n`` expands into containers ``name.0 … name.(n-1)``.
* **bridge** — a network element (switch or router).  Bridges are never
  emulated directly; they exist only so paths can be computed and then
  collapsed away.
* **link** — a *unidirectional* edge with latency, bandwidth, jitter and
  packet-loss properties.  Declaring a bidirectional link creates two
  mirrored unidirectional links (upload/download bandwidths may differ).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.units import format_rate, format_time

__all__ = [
    "TopologyError",
    "LinkProperties",
    "Service",
    "Bridge",
    "Link",
    "Topology",
]


class TopologyError(ValueError):
    """Raised for malformed or inconsistent topology descriptions."""


@dataclass(frozen=True)
class LinkProperties:
    """Immutable per-link network properties, in SI base units.

    ``latency`` seconds, ``bandwidth`` bits/s, ``jitter`` seconds (standard
    deviation of the latency distribution), ``loss`` a probability in
    [0, 1].  ``jitter_distribution`` names how netem samples per-packet
    delay: ``normal`` (the paper's default) or ``uniform``.
    """

    latency: float = 0.0
    bandwidth: float = float("inf")
    jitter: float = 0.0
    loss: float = 0.0
    jitter_distribution: str = "normal"

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise TopologyError(f"negative latency: {self.latency}")
        if self.bandwidth <= 0:
            raise TopologyError(f"non-positive bandwidth: {self.bandwidth}")
        if self.jitter < 0:
            raise TopologyError(f"negative jitter: {self.jitter}")
        if not 0.0 <= self.loss <= 1.0:
            raise TopologyError(f"loss outside [0,1]: {self.loss}")
        if self.jitter_distribution not in ("normal", "uniform"):
            raise TopologyError(
                f"unknown jitter distribution: {self.jitter_distribution!r}")

    def describe(self) -> str:
        parts = [format_rate(self.bandwidth), format_time(self.latency)]
        if self.jitter:
            parts.append(f"±{format_time(self.jitter)}")
        if self.loss:
            parts.append(f"loss={self.loss:.2%}")
        return " ".join(parts)


@dataclass
class Service:
    """A named set of containers sharing a Docker image."""

    name: str
    image: str = "scratch"
    replicas: int = 1
    command: Optional[str] = None
    tags: Dict[str, str] = field(default_factory=dict)
    # Set by the emulation engine: whether Kollaps manages this service's
    # network (the paper's injected tag distinguishing emulated containers).
    supervised: bool = True

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise TopologyError(
                f"service {self.name!r} needs >=1 replicas, got {self.replicas}")

    def container_names(self) -> List[str]:
        """Expand to concrete container names (``svc.0``, ``svc.1``, ...)."""
        if self.replicas == 1:
            return [self.name]
        return [f"{self.name}.{index}" for index in range(self.replicas)]


@dataclass
class Bridge:
    """A switch/router.  Only identity matters — state is never emulated."""

    name: str


@dataclass
class Link:
    """A unidirectional link ``source -> destination``."""

    source: str
    destination: str
    properties: LinkProperties
    network: str = "default"
    link_id: int = -1

    @property
    def key(self) -> Tuple[str, str]:
        return (self.source, self.destination)

    def describe(self) -> str:
        return f"{self.source}->{self.destination} [{self.properties.describe()}]"


class Topology:
    """A mutable directed multigraph of services, bridges and links.

    The emulation engine snapshots topologies (:meth:`copy`) when
    pre-computing the dynamic graph sequence, so mutation here never races
    with a running experiment.
    """

    def __init__(self, name: str = "experiment") -> None:
        self.name = name
        self.services: Dict[str, Service] = {}
        self.bridges: Dict[str, Bridge] = {}
        self._links: Dict[Tuple[str, str], Link] = {}
        self._link_ids = itertools.count()

    # ------------------------------------------------------------------ nodes
    def add_service(self, service: Service) -> Service:
        self._check_fresh_name(service.name)
        self.services[service.name] = service
        return service

    def add_bridge(self, bridge: Bridge) -> Bridge:
        self._check_fresh_name(bridge.name)
        self.bridges[bridge.name] = bridge
        return bridge

    def remove_service(self, name: str) -> None:
        if name not in self.services:
            raise TopologyError(f"unknown service: {name!r}")
        service = self.services.pop(name)
        self._drop_links_touching(set(service.container_names()) | {name})

    def remove_bridge(self, name: str) -> None:
        if name not in self.bridges:
            raise TopologyError(f"unknown bridge: {name!r}")
        del self.bridges[name]
        self._drop_links_touching({name})

    def _drop_links_touching(self, names: set) -> None:
        doomed = [key for key in self._links
                  if key[0] in names or key[1] in names]
        for key in doomed:
            del self._links[key]

    def _check_fresh_name(self, name: str) -> None:
        if name in self.services or name in self.bridges:
            raise TopologyError(f"duplicate node name: {name!r}")

    def has_node(self, name: str) -> bool:
        return name in self.services or name in self.bridges

    def node_names(self) -> List[str]:
        return list(self.services) + list(self.bridges)

    # ------------------------------------------------------------------ links
    def add_link(self, source: str, destination: str,
                 properties: LinkProperties, *, bidirectional: bool = True,
                 down_properties: Optional[LinkProperties] = None,
                 network: str = "default") -> List[Link]:
        """Add a link; bidirectional declarations create two mirror links.

        ``down_properties`` overrides the reverse direction (the language's
        distinct ``up``/``down`` bandwidth attributes).
        """
        for endpoint in (source, destination):
            if not self.has_node(endpoint):
                raise TopologyError(f"link endpoint {endpoint!r} is not declared")
        if source == destination:
            raise TopologyError(f"self-loop on {source!r}")
        created = [self._install(Link(source, destination, properties,
                                      network=network))]
        if bidirectional:
            reverse = down_properties or properties
            created.append(self._install(Link(destination, source, reverse,
                                              network=network)))
        return created

    def _install(self, link: Link) -> Link:
        if link.key in self._links:
            raise TopologyError(f"duplicate link {link.key}")
        link.link_id = next(self._link_ids)
        self._links[link.key] = link
        return link

    def remove_link(self, source: str, destination: str, *,
                    bidirectional: bool = True) -> None:
        keys = [(source, destination)]
        if bidirectional:
            keys.append((destination, source))
        for key in keys:
            if key not in self._links:
                raise TopologyError(f"no such link: {key}")
            del self._links[key]

    def get_link(self, source: str, destination: str) -> Link:
        try:
            return self._links[(source, destination)]
        except KeyError:
            raise TopologyError(f"no such link: {(source, destination)}") from None

    def set_link_properties(self, source: str, destination: str,
                            properties: LinkProperties, *,
                            bidirectional: bool = False) -> None:
        self.get_link(source, destination).properties = properties
        if bidirectional:
            self.get_link(destination, source).properties = properties

    def update_link(self, source: str, destination: str, **changes) -> Link:
        """Replace selected properties of an existing link (e.g. jitter only)."""
        link = self.get_link(source, destination)
        link.properties = replace(link.properties, **changes)
        return link

    def links(self) -> Iterator[Link]:
        return iter(self._links.values())

    def link_count(self) -> int:
        return len(self._links)

    # ----------------------------------------------------------- containers
    def container_names(self) -> List[str]:
        """All concrete container names across all services."""
        names: List[str] = []
        for service in self.services.values():
            names.extend(service.container_names())
        return names

    def service_of_container(self, container: str) -> Service:
        base = container.split(".")[0]
        try:
            return self.services[base]
        except KeyError:
            raise TopologyError(f"no service for container {container!r}") from None

    # ------------------------------------------------------------- utilities
    def neighbours(self, node: str) -> List[Tuple[str, Link]]:
        return [(link.destination, link)
                for link in self._links.values() if link.source == node]

    def copy(self) -> "Topology":
        """Deep-enough copy: nodes are shared metadata, links are re-created."""
        clone = Topology(self.name)
        clone.services = dict(self.services)
        clone.bridges = dict(self.bridges)
        for link in self._links.values():
            copied = Link(link.source, link.destination, link.properties,
                          network=link.network)
            copied.link_id = link.link_id
            clone._links[copied.key] = copied
        clone._link_ids = itertools.count(
            max((l.link_id for l in self._links.values()), default=-1) + 1)
        return clone

    def validate(self) -> None:
        """Check structural invariants; raises :class:`TopologyError`."""
        if not self.services:
            raise TopologyError("topology has no services")
        for link in self._links.values():
            for endpoint in (link.source, link.destination):
                if not self.has_node(endpoint):
                    raise TopologyError(
                        f"link {link.key} references unknown node {endpoint!r}")

    def describe(self) -> str:
        lines = [f"topology {self.name!r}: "
                 f"{len(self.services)} services, {len(self.bridges)} bridges, "
                 f"{len(self._links)} links"]
        for link in self._links.values():
            lines.append("  " + link.describe())
        return "\n".join(lines)
