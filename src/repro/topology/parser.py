"""Parsers for the experiment description language (deprecation shims).

These functions are kept for backwards compatibility; they are now thin
front-ends over the unified Scenario API (:mod:`repro.scenario`), which is
the single validated path from any description form to a runnable
experiment.  New code should use :class:`repro.scenario.Scenario` directly
(``Scenario.from_text(...)`` / ``.from_dict(...)`` / ``.from_xml(...)``)
and keep the builder, rather than immediately flattening to a
``(Topology, EventSchedule)`` pair.

Three input forms are supported, mirroring §3 "Deployment Generator":

* **dict form** — a plain Python dictionary (what a YAML loader would give
  for a cleaned-up description); the canonical programmatic input.
* **listing text** — the paper's lean YAML-like syntax from Listings 1 and 2,
  which is *not* valid YAML (mappings restart on repeated ``name:`` /
  ``orig:`` keys), so a small dedicated parser handles it.
* **Modelnet-like XML** — for porting existing topology descriptions.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.topology.events import EventSchedule
from repro.topology.model import Topology

__all__ = ["parse_experiment", "parse_experiment_text", "parse_modelnet_xml"]


def _warn_shim(old: str, new: str) -> None:
    # Lazy import: repro.topogen pulls in repro.scenario, which this
    # module must not load at import time.
    from repro.topogen._deprecation import warn_shim
    warn_shim(f"repro.topology.{old}", f"repro.scenario.{new}",
              module="repro.scenario", stacklevel=4)


def parse_experiment(description: Dict) -> Tuple[Topology, EventSchedule]:
    """Parse the dict form into a topology plus its dynamic schedule.

    Expected shape (all sections optional except ``services``)::

        {"experiment": {
            "services": [{"name": ..., "image": ..., "replicas": ...}, ...],
            "bridges":  [{"name": ...}, ...],
            "links":    [{"orig": ..., "dest": ..., "latency": ..., ...}, ...],
        },
         "dynamic": [{"time": ..., "action"/properties...}, ...]}
    """
    _warn_shim("parse_experiment", "Scenario.from_dict")
    from repro.scenario.frontends import scenario_from_dict
    compiled = scenario_from_dict(description).compile()
    return compiled.topology, compiled.schedule


def parse_experiment_text(text: str) -> Tuple[Topology, EventSchedule]:
    """Parse the paper's listing syntax (Listings 1 and 2).

    The syntax is indentation-free within stanzas: a new stanza starts at
    each ``name:`` (services/bridges), ``orig:`` (links/dynamic link events)
    or ``action:`` (node events) key, under the current section header
    (``services:``, ``bridges:``, ``links:``, ``dynamic:``).
    """
    _warn_shim("parse_experiment_text", "Scenario.from_text")
    from repro.scenario.frontends import scenario_from_text
    compiled = scenario_from_text(text).compile()
    return compiled.topology, compiled.schedule


def parse_modelnet_xml(text: str) -> Tuple[Topology, EventSchedule]:
    """Parse a Modelnet-style XML topology.

    ``role="virtnode"`` maps to services, everything else to bridges;
    latency/jitter default to milliseconds as in Modelnet files.
    """
    _warn_shim("parse_modelnet_xml", "Scenario.from_xml")
    from repro.scenario.frontends import scenario_from_xml
    compiled = scenario_from_xml(text).compile()
    return compiled.topology, compiled.schedule
