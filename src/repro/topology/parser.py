"""Parsers for the experiment description language.

Three input forms are supported, mirroring §3 "Deployment Generator":

* **dict form** — a plain Python dictionary (what a YAML loader would give
  for a cleaned-up description); the canonical programmatic input.
* **listing text** — the paper's lean YAML-like syntax from Listings 1 and 2,
  which is *not* valid YAML (mappings restart on repeated ``name:`` /
  ``orig:`` keys), so a small dedicated parser handles it.
* **Modelnet-like XML** — for porting existing topology descriptions.
"""

from __future__ import annotations

import xml.etree.ElementTree as ElementTree
from typing import Dict, List, Optional, Tuple

from repro.topology.events import DynamicEvent, EventAction, EventSchedule
from repro.topology.model import (
    Bridge,
    LinkProperties,
    Service,
    Topology,
    TopologyError,
)
from repro.units import parse_rate, parse_time

__all__ = ["parse_experiment", "parse_experiment_text", "parse_modelnet_xml"]

# Fields of a link stanza that describe properties rather than endpoints.
_LINK_PROPERTY_KEYS = ("latency", "up", "down", "bandwidth", "jitter", "loss",
                       "jitter_distribution")


def _link_properties(spec: Dict, *, direction: str = "up") -> LinkProperties:
    """Build :class:`LinkProperties` from a link stanza.

    ``latency`` defaults to milliseconds and bandwidth accepts ``10Mbps``
    style strings; ``up`` and ``down`` select the direction's capacity with
    ``bandwidth`` as a symmetric fallback.
    """
    bandwidth_spec = spec.get(direction, spec.get("bandwidth"))
    bandwidth = parse_rate(bandwidth_spec) if bandwidth_spec is not None else float("inf")
    latency = parse_time(spec.get("latency", 0.0), default_unit="ms")
    jitter = parse_time(spec.get("jitter", 0.0), default_unit="ms")
    loss = float(spec.get("loss", 0.0))
    distribution = spec.get("jitter_distribution", "normal")
    return LinkProperties(latency=latency, bandwidth=bandwidth, jitter=jitter,
                          loss=loss, jitter_distribution=distribution)


def parse_experiment(description: Dict) -> Tuple[Topology, EventSchedule]:
    """Parse the dict form into a topology plus its dynamic schedule.

    Expected shape (all sections optional except ``services``)::

        {"experiment": {
            "services": [{"name": ..., "image": ..., "replicas": ...}, ...],
            "bridges":  [{"name": ...}, ...],
            "links":    [{"orig": ..., "dest": ..., "latency": ..., ...}, ...],
        },
         "dynamic": [{"time": ..., "action"/properties...}, ...]}
    """
    body = description.get("experiment", description)
    topology = Topology(body.get("name", "experiment"))

    for spec in body.get("services", []):
        topology.add_service(Service(
            name=_require(spec, "name", "service"),
            image=spec.get("image", "scratch"),
            replicas=int(spec.get("replicas", 1)),
            command=spec.get("command"),
            tags=dict(spec.get("tags", {})),
        ))
    for spec in body.get("bridges", []):
        topology.add_bridge(Bridge(name=_require(spec, "name", "bridge")))
    for spec in body.get("links", []):
        origin = _require(spec, "orig", "link")
        destination = _require(spec, "dest", "link")
        bidirectional = bool(spec.get("bidirectional", True))
        topology.add_link(
            origin, destination,
            _link_properties(spec, direction="up"),
            bidirectional=bidirectional,
            down_properties=_link_properties(spec, direction="down")
            if bidirectional else None,
            network=spec.get("network", "default"),
        )

    schedule = EventSchedule(
        [_parse_event(spec) for spec in description.get("dynamic", [])])
    topology.validate()
    return topology, schedule


def _require(spec: Dict, key: str, kind: str) -> str:
    try:
        return spec[key]
    except KeyError:
        raise TopologyError(f"{kind} stanza missing {key!r}: {spec}") from None


def _parse_event(spec: Dict) -> DynamicEvent:
    """Parse one dynamic stanza (Listing 2 style) into a DynamicEvent."""
    time = parse_time(_require(spec, "time", "dynamic event"))
    action_name = spec.get("action")
    if action_name in ("join", "leave") and "name" in spec:
        action = (EventAction.JOIN_NODE if action_name == "join"
                  else EventAction.LEAVE_NODE)
        return DynamicEvent(time=time, action=action, name=spec["name"])

    origin = spec.get("orig")
    destination = spec.get("dest")
    if origin is None or destination is None:
        raise TopologyError(f"link event needs orig and dest: {spec}")
    bidirectional = bool(spec.get("bidirectional", True))

    if action_name == "leave":
        return DynamicEvent(time=time, action=EventAction.LEAVE_LINK,
                            origin=origin, destination=destination,
                            bidirectional=bidirectional)
    if action_name == "join":
        return DynamicEvent(time=time, action=EventAction.JOIN_LINK,
                            origin=origin, destination=destination,
                            properties=_link_properties(spec),
                            bidirectional=bidirectional)

    # No action keyword: a property change listing only the fields to alter.
    changes: Dict[str, float] = {}
    if "latency" in spec:
        changes["latency"] = parse_time(spec["latency"], default_unit="ms")
    if "jitter" in spec:
        changes["jitter"] = parse_time(spec["jitter"], default_unit="ms")
    if "loss" in spec:
        changes["loss"] = float(spec["loss"])
    if "up" in spec or "bandwidth" in spec:
        changes["bandwidth"] = parse_rate(spec.get("up", spec.get("bandwidth")))
    if not changes:
        raise TopologyError(f"dynamic event changes nothing: {spec}")
    return DynamicEvent(time=time, action=EventAction.SET_LINK,
                        origin=origin, destination=destination,
                        changes=changes, bidirectional=bidirectional)


# --------------------------------------------------------------------------
# Listing-style text parser
# --------------------------------------------------------------------------

def parse_experiment_text(text: str) -> Tuple[Topology, EventSchedule]:
    """Parse the paper's listing syntax (Listings 1 and 2).

    The syntax is indentation-free within stanzas: a new stanza starts at
    each ``name:`` (services/bridges), ``orig:`` (links/dynamic link events)
    or ``action:`` (node events) key, under the current section header
    (``services:``, ``bridges:``, ``links:``, ``dynamic:``).
    """
    sections: Dict[str, List[Dict]] = {
        "services": [], "bridges": [], "links": [], "dynamic": []}
    section: Optional[str] = None
    stanza: Optional[Dict] = None
    stanza_opener = {"services": ("name",), "bridges": ("name",),
                     "links": ("orig",)}

    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if line.rstrip(":") in ("experiment",):
            continue
        key, _, value = line.partition(":")
        key = key.strip()
        value = value.strip().strip('"').strip("'")
        if not value and key in sections:
            section = key
            stanza = None
            continue
        if section is None:
            raise TopologyError(f"content outside any section: {raw_line!r}")
        if section == "dynamic":
            # In Listing 2 every event stanza ends with its ``time:`` key,
            # which is the only unambiguous boundary in the flat syntax.
            if stanza is None:
                stanza = {}
                sections[section].append(stanza)
            stanza[key] = value
            if key == "time":
                stanza = None
            continue
        opens_new = key in stanza_opener[section] and (
            stanza is None or key in stanza)
        if stanza is None or opens_new:
            stanza = {}
            sections[section].append(stanza)
        stanza[key] = value

    description = {"experiment": {
        "services": sections["services"],
        "bridges": sections["bridges"],
        "links": sections["links"],
    }, "dynamic": sections["dynamic"]}
    return parse_experiment(description)


# --------------------------------------------------------------------------
# Modelnet-like XML parser
# --------------------------------------------------------------------------

def parse_modelnet_xml(text: str) -> Tuple[Topology, EventSchedule]:
    """Parse a Modelnet-style XML topology.

    Supported shape::

        <topology>
          <vertices>
            <vertex name="c1" role="virtnode" image="iperf" replicas="1"/>
            <vertex name="s1" role="gateway"/>
          </vertices>
          <edges>
            <edge src="c1" dst="s1" latency="10" bw="10Mbps" jitter="0.5"
                  loss="0.0" bidirectional="true"/>
          </edges>
        </topology>

    ``role="virtnode"`` maps to services, everything else to bridges;
    latency/jitter default to milliseconds as in Modelnet files.
    """
    try:
        root = ElementTree.fromstring(text)
    except ElementTree.ParseError as exc:
        raise TopologyError(f"malformed XML topology: {exc}") from exc

    topology = Topology(root.get("name", "modelnet"))
    for vertex in root.iter("vertex"):
        name = vertex.get("name")
        if name is None:
            raise TopologyError("vertex without a name")
        if vertex.get("role", "gateway") == "virtnode":
            topology.add_service(Service(
                name=name, image=vertex.get("image", "scratch"),
                replicas=int(vertex.get("replicas", "1"))))
        else:
            topology.add_bridge(Bridge(name))

    for edge in root.iter("edge"):
        spec = {
            "latency": edge.get("latency", "0"),
            "jitter": edge.get("jitter", "0"),
            "loss": float(edge.get("loss", "0")),
        }
        bandwidth = edge.get("bw") or edge.get("bandwidth")
        if bandwidth is not None:
            spec["bandwidth"] = bandwidth
        topology.add_link(
            edge.get("src"), edge.get("dst"), _link_properties(spec),
            bidirectional=edge.get("bidirectional", "true").lower() == "true")

    topology.validate()
    return topology, EventSchedule()
