"""Dynamic topology events (the paper's Listing 2).

An :class:`EventSchedule` is an ordered list of :class:`DynamicEvent`
objects.  Applying the schedule to a base :class:`Topology` yields the
sequence of topology snapshots the Emulation Manager pre-computes offline
(§3, "Dynamic Topologies") so that even sub-second dynamics can be enacted
with no online graph recomputation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.topology.model import (
    Bridge,
    LinkProperties,
    Service,
    Topology,
    TopologyError,
)

__all__ = ["EventAction", "DynamicEvent", "EventSchedule"]


class EventAction(enum.Enum):
    """What a dynamic event does to the topology."""

    SET_LINK = "set_link"      # change properties of an existing link
    JOIN_LINK = "join_link"    # add a link
    LEAVE_LINK = "leave_link"  # remove a link
    JOIN_NODE = "join"         # (re-)add a service or bridge
    LEAVE_NODE = "leave"       # remove a service or bridge


@dataclass
class DynamicEvent:
    """A single timed mutation.

    ``time`` is seconds from experiment start.  For link events ``origin``
    and ``destination`` name the endpoints; for node events ``name`` names
    the service or bridge.  ``properties`` carries the new link properties
    (for SET_LINK only the fields present in ``changes`` are overridden).
    """

    time: float
    action: EventAction
    origin: Optional[str] = None
    destination: Optional[str] = None
    name: Optional[str] = None
    properties: Optional[LinkProperties] = None
    changes: Dict[str, float] = field(default_factory=dict)
    bidirectional: bool = True

    def apply(self, topology: Topology,
              registry: Optional[Dict[str, object]] = None) -> None:
        """Mutate ``topology`` in place according to this event.

        ``registry`` maps node names to their original :class:`Service` /
        :class:`Bridge` definitions so a ``join`` after a ``leave`` restores
        the node with its initial configuration.
        """
        if self.action is EventAction.SET_LINK:
            self._apply_set_link(topology)
        elif self.action is EventAction.JOIN_LINK:
            if self.properties is None:
                raise TopologyError("join_link event needs link properties")
            topology.add_link(self.origin, self.destination, self.properties,
                              bidirectional=self.bidirectional)
        elif self.action is EventAction.LEAVE_LINK:
            topology.remove_link(self.origin, self.destination,
                                 bidirectional=self.bidirectional)
        elif self.action is EventAction.JOIN_NODE:
            self._apply_join_node(topology, registry or {})
        elif self.action is EventAction.LEAVE_NODE:
            self._apply_leave_node(topology)
        else:  # pragma: no cover - enum is exhaustive
            raise TopologyError(f"unhandled action {self.action}")

    def _apply_set_link(self, topology: Topology) -> None:
        if self.properties is not None:
            topology.set_link_properties(self.origin, self.destination,
                                         self.properties,
                                         bidirectional=self.bidirectional)
            return
        if not self.changes:
            raise TopologyError("set_link event with neither properties nor changes")
        topology.update_link(self.origin, self.destination, **self.changes)
        if self.bidirectional:
            topology.update_link(self.destination, self.origin, **self.changes)

    def _apply_join_node(self, topology: Topology,
                         registry: Dict[str, object]) -> None:
        if self.name is None:
            raise TopologyError("join event needs a node name")
        if topology.has_node(self.name):
            raise TopologyError(f"join of already-present node {self.name!r}")
        original = registry.get(self.name)
        if isinstance(original, Bridge):
            topology.add_bridge(Bridge(original.name))
        elif isinstance(original, Service):
            topology.add_service(Service(original.name, original.image,
                                         original.replicas, original.command,
                                         dict(original.tags)))
        else:
            # Node never seen before: joins as a fresh single-replica service.
            topology.add_service(Service(self.name))

    def _apply_leave_node(self, topology: Topology) -> None:
        if self.name is None:
            raise TopologyError("leave event needs a node name")
        if self.name in topology.services:
            topology.remove_service(self.name)
        elif self.name in topology.bridges:
            topology.remove_bridge(self.name)
        else:
            raise TopologyError(f"leave of unknown node {self.name!r}")


class EventSchedule:
    """An ordered, validated collection of dynamic events."""

    def __init__(self, events: Optional[List[DynamicEvent]] = None) -> None:
        self.events: List[DynamicEvent] = sorted(
            events or [], key=lambda event: event.time)

    def add(self, event: DynamicEvent) -> None:
        self.events.append(event)
        self.events.sort(key=lambda item: item.time)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def horizon(self) -> float:
        """Time of the last event (0.0 when empty)."""
        return self.events[-1].time if self.events else 0.0

    def snapshots(self, base: Topology) -> List[Tuple[float, Topology]]:
        """Pre-compute the ordered sequence of topology states.

        Returns ``[(0.0, base), (t1, g1), (t2, g2), ...]`` where each ``gi``
        is an independent topology copy with all events up to and including
        ``ti`` applied.  Events sharing a timestamp coalesce into one
        snapshot.  This is the offline computation of §3 that makes
        sub-second dynamics affordable at runtime.
        """
        registry: Dict[str, object] = {}
        registry.update(base.services)
        registry.update(base.bridges)
        states: List[Tuple[float, Topology]] = [(0.0, base.copy())]
        current = base.copy()
        index = 0
        while index < len(self.events):
            time = self.events[index].time
            while index < len(self.events) and self.events[index].time == time:
                self.events[index].apply(current, registry)
                index += 1
            states.append((time, current.copy()))
        return states
