"""A THUNDERSTORM-style language for dynamic network scenarios.

The paper points at a dedicated DSL "to easily program more complex dynamic
patterns on top of Kollaps" (§3, citing Liechti et al., SRDS'19).  This
module provides that layer: a small line-oriented language that compiles
down to the primitive :class:`~repro.topology.events.EventSchedule` the
Emulation Manager pre-computes offline.

Grammar (one directive per line, ``#`` starts a comment)::

    at <time> set   link <A><sep><B> <prop>=<value> [...]
    at <time> leave link <A><sep><B>
    at <time> join  link <A><sep><B> [<prop>=<value> ...]
    at <time> leave <service|bridge|node> <name>
    at <time> join  <service|bridge|node> <name>
    at <time> flap  link <A><sep><B> for <duration>
    at <time> partition <n1,n2,...> | <n3,n4,...> [| ...]
    at <time> heal
    from <t0> to <t1> every <dt> <directive...>

where ``<sep>`` is ``--`` for a bidirectional link or ``->`` for a single
direction, times accept unit suffixes (``90``, ``1.5s``, ``200ms``, ``2min``)
and property values reuse the description-language units (``100Mbps``,
``10ms``, ``1%``).

Composite directives expand to primitives at compile time:

* ``flap`` becomes a ``leave`` followed by a ``join`` that restores the
  properties the link had *at the moment it was torn down* — the compiler
  replays the scenario against a shadow copy of the topology to know them.
* ``partition`` removes every link whose endpoints sit in two *different*
  listed groups; ``heal`` re-adds all links cut by earlier partitions.
* ``from .. to .. every`` stamps out its body at ``t0, t0+dt, ...`` up to
  and including ``t1``.

Compilation validates the whole scenario against the base topology, so a
typo in a link name fails fast with a line number instead of corrupting an
experiment half-way through a run.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.topology.events import DynamicEvent, EventAction, EventSchedule
from repro.topology.model import LinkProperties, Topology, TopologyError
from repro.units import UnitError, parse_rate, parse_time

__all__ = ["ThunderstormError", "compile_scenario", "parse_scenario"]


class ThunderstormError(ValueError):
    """Raised for syntax or semantic errors in a scenario script."""

    def __init__(self, message: str, line_number: Optional[int] = None) -> None:
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


# --------------------------------------------------------------------------
# Intermediate representation: one primitive, timed directive.
# --------------------------------------------------------------------------
@dataclass
class _Directive:
    time: float
    verb: str                     # set | leave | join | flap | partition | heal
    subject: str = ""             # link | service | bridge | node | ""
    origin: Optional[str] = None
    destination: Optional[str] = None
    bidirectional: bool = True
    name: Optional[str] = None
    changes: Dict[str, float] = field(default_factory=dict)
    duration: float = 0.0         # flap only
    groups: List[List[str]] = field(default_factory=list)  # partition only
    line_number: int = 0


_LINK_PROPERTY_PARSERS = {
    "latency": lambda text: parse_time(text, default_unit="ms"),
    "jitter": lambda text: parse_time(text, default_unit="ms"),
    "up": parse_rate,
    "down": parse_rate,
    "bandwidth": parse_rate,
    "loss": None,  # handled by _parse_loss
}


def _parse_loss(text: str) -> float:
    """Loss accepts ``0.02`` probabilities or ``2%`` percentages."""
    raw = text.strip()
    if raw.endswith("%"):
        value = float(raw[:-1]) / 100.0
    else:
        value = float(raw)
    if not 0.0 <= value <= 1.0:
        raise UnitError(f"loss outside [0,1]: {text!r}")
    return value


def _parse_endpoints(token: str, line_number: int) -> Tuple[str, str, bool]:
    """Split ``A--B`` (bidirectional) or ``A->B`` (one direction)."""
    for separator, bidirectional in (("--", True), ("->", False)):
        if separator in token:
            origin, _, destination = token.partition(separator)
            if not origin or not destination:
                raise ThunderstormError(
                    f"malformed link endpoints {token!r}", line_number)
            return origin, destination, bidirectional
    raise ThunderstormError(
        f"link endpoints must use 'A--B' or 'A->B', got {token!r}",
        line_number)


def _parse_assignments(tokens: Sequence[str],
                       line_number: int) -> Dict[str, float]:
    changes: Dict[str, float] = {}
    for token in tokens:
        key, separator, value = token.partition("=")
        if not separator:
            raise ThunderstormError(
                f"expected 'property=value', got {token!r}", line_number)
        if key not in _LINK_PROPERTY_PARSERS:
            raise ThunderstormError(
                f"unknown link property {key!r} (expected one of "
                f"{sorted(_LINK_PROPERTY_PARSERS)})", line_number)
        try:
            if key == "loss":
                changes[key] = _parse_loss(value)
            else:
                changes[key] = _LINK_PROPERTY_PARSERS[key](value)
        except (UnitError, ValueError) as error:
            raise ThunderstormError(
                f"bad value for {key}: {error}", line_number) from None
    return changes


def _parse_time_token(token: str, line_number: int) -> float:
    try:
        value = parse_time(token)
    except (UnitError, ValueError) as error:
        raise ThunderstormError(f"bad time {token!r}: {error}",
                                line_number) from None
    if value < 0:
        raise ThunderstormError(f"negative time {token!r}", line_number)
    return value


# --------------------------------------------------------------------------
# Parsing: text -> list of primitive directives (periodics expanded).
# --------------------------------------------------------------------------
def parse_scenario(text: str) -> List[_Directive]:
    """Parse a scenario script into primitive, time-sorted directives.

    This performs the purely syntactic half of compilation; semantic
    validation against a topology happens in :func:`compile_scenario`.
    """
    directives: List[_Directive] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        head = tokens[0].lower()
        if head == "at":
            if len(tokens) < 3:
                raise ThunderstormError("'at' needs a time and a directive",
                                        line_number)
            time = _parse_time_token(tokens[1], line_number)
            directives.append(
                _parse_body(time, tokens[2:], line_number))
        elif head == "from":
            directives.extend(_parse_periodic(tokens, line_number))
        else:
            raise ThunderstormError(
                f"directives start with 'at' or 'from', got {tokens[0]!r}",
                line_number)
    directives.sort(key=lambda directive: (directive.time,
                                           directive.line_number))
    return directives


def _parse_periodic(tokens: Sequence[str],
                    line_number: int) -> List[_Directive]:
    # from <t0> to <t1> every <dt> <body...>
    if (len(tokens) < 7 or tokens[2].lower() != "to"
            or tokens[4].lower() != "every"):
        raise ThunderstormError(
            "periodic form is 'from <t0> to <t1> every <dt> <directive>'",
            line_number)
    start = _parse_time_token(tokens[1], line_number)
    stop = _parse_time_token(tokens[3], line_number)
    step = _parse_time_token(tokens[5], line_number)
    if step <= 0:
        raise ThunderstormError("'every' interval must be positive",
                                line_number)
    if stop < start:
        raise ThunderstormError("'to' time precedes 'from' time", line_number)
    body = tokens[6:]
    expanded: List[_Directive] = []
    time = start
    # Half-open arithmetic with an epsilon so 'to' is inclusive despite
    # floating point accumulation.
    while time <= stop + 1e-9:
        expanded.append(_parse_body(time, body, line_number))
        time += step
    return expanded


def _parse_body(time: float, tokens: Sequence[str],
                line_number: int) -> _Directive:
    verb = tokens[0].lower()
    rest = tokens[1:]
    if verb == "heal":
        if rest:
            raise ThunderstormError("'heal' takes no arguments", line_number)
        return _Directive(time, "heal", line_number=line_number)
    if verb == "partition":
        return _parse_partition(time, rest, line_number)
    if verb not in ("set", "leave", "join", "flap"):
        raise ThunderstormError(f"unknown directive {verb!r}", line_number)
    if not rest:
        raise ThunderstormError(f"'{verb}' needs a subject", line_number)
    subject = rest[0].lower()
    if subject == "link":
        return _parse_link_directive(time, verb, rest[1:], line_number)
    if subject in ("service", "bridge", "node"):
        if verb not in ("leave", "join"):
            raise ThunderstormError(
                f"'{verb}' does not apply to a {subject}", line_number)
        if len(rest) != 2:
            raise ThunderstormError(
                f"'{verb} {subject}' needs exactly one name", line_number)
        return _Directive(time, verb, subject=subject, name=rest[1],
                          line_number=line_number)
    raise ThunderstormError(
        f"unknown subject {rest[0]!r} (expected link/service/bridge/node)",
        line_number)


def _parse_link_directive(time: float, verb: str, tokens: Sequence[str],
                          line_number: int) -> _Directive:
    if not tokens:
        raise ThunderstormError(f"'{verb} link' needs endpoints", line_number)
    origin, destination, bidirectional = _parse_endpoints(tokens[0],
                                                          line_number)
    directive = _Directive(time, verb, subject="link", origin=origin,
                           destination=destination,
                           bidirectional=bidirectional,
                           line_number=line_number)
    remainder = tokens[1:]
    if verb == "flap":
        if len(remainder) != 2 or remainder[0].lower() != "for":
            raise ThunderstormError(
                "flap form is 'flap link A--B for <duration>'", line_number)
        directive.duration = _parse_time_token(remainder[1], line_number)
        if directive.duration <= 0:
            raise ThunderstormError("flap duration must be positive",
                                    line_number)
        return directive
    if verb == "leave":
        if remainder:
            raise ThunderstormError("'leave link' takes no properties",
                                    line_number)
        return directive
    directive.changes = _parse_assignments(remainder, line_number)
    if verb == "set" and not directive.changes:
        raise ThunderstormError("'set link' needs at least one property",
                                line_number)
    return directive


def _parse_partition(time: float, tokens: Sequence[str],
                     line_number: int) -> _Directive:
    if not tokens:
        raise ThunderstormError(
            "'partition' needs groups separated by '|'", line_number)
    groups: List[List[str]] = [[]]
    for token in " ".join(tokens).replace("|", " | ").split():
        if token == "|":
            groups.append([])
        else:
            groups[-1].extend(name for name in token.split(",") if name)
    groups = [group for group in groups if group]
    if len(groups) < 2:
        raise ThunderstormError("'partition' needs at least two groups",
                                line_number)
    seen: Dict[str, int] = {}
    for index, group in enumerate(groups):
        for name in group:
            if name in seen:
                raise ThunderstormError(
                    f"node {name!r} appears in two partition groups",
                    line_number)
            seen[name] = index
    return _Directive(time, "partition", groups=groups,
                      line_number=line_number)


# --------------------------------------------------------------------------
# Compilation: directives + base topology -> EventSchedule.
# --------------------------------------------------------------------------
def compile_scenario(text: str, topology: Topology) -> EventSchedule:
    """Compile a scenario script against ``topology``.

    The compiler replays the scenario on a shadow copy of the topology in
    strict event-time order — exactly the order the engine will apply the
    schedule — so composite directives (``flap``, ``partition``/``heal``)
    capture the link properties to restore at the moment of tear-down,
    and every reference to a link or node is validated at the time it
    would execute.  Overlapping directives that would act on a link while
    a flap has it down therefore fail at compile time, not mid-run.
    """
    directives = parse_scenario(text)
    # Expand composites into primitive operations; a flap becomes a
    # tear-down plus a restore that reads its properties from a shared
    # slot filled when the tear-down executes.
    operations: List[_Operation] = []
    flap_slots: List[Dict[str, LinkProperties]] = []
    for directive in directives:
        if directive.verb == "flap":
            slot: Dict[str, LinkProperties] = {}
            flap_slots.append(slot)
            operations.append(_Operation(directive.time, directive,
                                         verb="flap-leave", slot=slot))
            operations.append(_Operation(
                directive.time + directive.duration, directive,
                verb="flap-join", slot=slot))
        else:
            operations.append(_Operation(directive.time, directive,
                                         verb=directive.verb))
    operations.sort(key=lambda operation: (operation.time, operation.order))

    shadow = topology.copy()
    registry: Dict[str, object] = {}
    registry.update(shadow.services)
    registry.update(shadow.bridges)
    events: List[DynamicEvent] = []
    # Links removed by partitions and not yet healed: key -> properties.
    severed: Dict[Tuple[str, str], LinkProperties] = {}

    def emit(event: DynamicEvent, line_number: int) -> None:
        try:
            event.apply(shadow, registry)
        except TopologyError as error:
            raise ThunderstormError(str(error), line_number) from None
        events.append(event)

    for operation in operations:
        directive = operation.directive
        if operation.verb == "set":
            emit(DynamicEvent(operation.time, EventAction.SET_LINK,
                              origin=directive.origin,
                              destination=directive.destination,
                              changes=_directional(directive.changes, "up"),
                              bidirectional=directive.bidirectional),
                 directive.line_number)
        elif operation.verb == "leave" and directive.subject == "link":
            emit(DynamicEvent(operation.time, EventAction.LEAVE_LINK,
                              origin=directive.origin,
                              destination=directive.destination,
                              bidirectional=directive.bidirectional),
                 directive.line_number)
        elif operation.verb == "join" and directive.subject == "link":
            emit(DynamicEvent(operation.time, EventAction.JOIN_LINK,
                              origin=directive.origin,
                              destination=directive.destination,
                              properties=_join_properties(directive),
                              bidirectional=directive.bidirectional),
                 directive.line_number)
        elif operation.verb in ("leave", "join"):
            action = (EventAction.LEAVE_NODE if operation.verb == "leave"
                      else EventAction.JOIN_NODE)
            emit(DynamicEvent(operation.time, action, name=directive.name),
                 directive.line_number)
        elif operation.verb == "flap-leave":
            _flap_tear_down(operation, shadow, registry, events)
        elif operation.verb == "flap-join":
            _flap_restore(operation, shadow, registry, events)
        elif operation.verb == "partition":
            _compile_partition(directive, shadow, registry, events, severed)
        elif operation.verb == "heal":
            _compile_heal(directive, shadow, registry, events, severed)
        else:  # pragma: no cover - parser is exhaustive
            raise ThunderstormError(f"unhandled verb {operation.verb!r}",
                                    directive.line_number)
    return EventSchedule(events)


def _directional(changes: Dict[str, float], direction: str) -> Dict[str, float]:
    """Map DSL property names onto :class:`LinkProperties` field names."""
    mapped: Dict[str, float] = {}
    for key, value in changes.items():
        if key in ("up", "down"):
            if key == direction:
                mapped["bandwidth"] = value
        else:
            mapped[key] = value
    # A symmetric 'bandwidth' always wins over nothing, but explicit
    # up/down takes precedence when both are present.
    if "bandwidth" in changes and direction not in changes:
        mapped["bandwidth"] = changes["bandwidth"]
    return mapped


def _join_properties(directive: _Directive) -> LinkProperties:
    changes = _directional(directive.changes, "up")
    try:
        return LinkProperties(
            latency=changes.get("latency", 0.0),
            bandwidth=changes.get("bandwidth", float("inf")),
            jitter=changes.get("jitter", 0.0),
            loss=changes.get("loss", 0.0))
    except TopologyError as error:
        raise ThunderstormError(str(error), directive.line_number) from None


_operation_sequence = itertools.count()


@dataclass
class _Operation:
    """One primitive, time-ordered step of a compiled scenario.

    ``order`` makes the (time, order) sort total, so simultaneous
    operations keep their script order deterministically.
    """

    time: float
    directive: _Directive
    verb: str
    slot: Optional[Dict[str, LinkProperties]] = None
    order: int = field(default_factory=lambda: next(_operation_sequence))


def _flap_tear_down(operation: _Operation, shadow: Topology,
                    registry: Dict[str, object],
                    events: List[DynamicEvent]) -> None:
    """The flap's leave: capture current properties, then remove."""
    directive = operation.directive
    try:
        operation.slot["forward"] = shadow.get_link(
            directive.origin, directive.destination).properties
        if directive.bidirectional:
            operation.slot["backward"] = shadow.get_link(
                directive.destination, directive.origin).properties
    except TopologyError as error:
        raise ThunderstormError(str(error), directive.line_number) from None
    leave = DynamicEvent(operation.time, EventAction.LEAVE_LINK,
                         origin=directive.origin,
                         destination=directive.destination,
                         bidirectional=directive.bidirectional)
    try:
        leave.apply(shadow, registry)
    except TopologyError as error:
        raise ThunderstormError(str(error), directive.line_number) from None
    events.append(leave)


def _flap_restore(operation: _Operation, shadow: Topology,
                  registry: Dict[str, object],
                  events: List[DynamicEvent]) -> None:
    """The flap's join: restore the properties captured at tear-down."""
    directive = operation.directive
    pairs = [(directive.origin, directive.destination,
              operation.slot.get("forward"))]
    if directive.bidirectional:
        pairs.append((directive.destination, directive.origin,
                      operation.slot.get("backward")))
    for origin, destination, properties in pairs:
        if properties is None:  # pragma: no cover - tear-down always ran
            raise ThunderstormError("flap restore before tear-down",
                                    directive.line_number)
        join = DynamicEvent(operation.time, EventAction.JOIN_LINK,
                            origin=origin, destination=destination,
                            properties=properties, bidirectional=False)
        try:
            join.apply(shadow, registry)
        except TopologyError as error:
            raise ThunderstormError(str(error),
                                    directive.line_number) from None
        events.append(join)


def _compile_partition(directive: _Directive, shadow: Topology,
                       registry: Dict[str, object],
                       events: List[DynamicEvent],
                       severed: Dict[Tuple[str, str], LinkProperties]) -> None:
    """Cut every link whose endpoints lie in two different groups."""
    group_of: Dict[str, int] = {}
    for index, group in enumerate(directive.groups):
        for name in group:
            if not shadow.has_node(name):
                raise ThunderstormError(
                    f"partition names unknown node {name!r}",
                    directive.line_number)
            group_of[name] = index
    doomed = [link for link in shadow.links()
              if link.source in group_of and link.destination in group_of
              and group_of[link.source] != group_of[link.destination]]
    if not doomed:
        raise ThunderstormError(
            "partition cuts no links (groups are already disconnected)",
            directive.line_number)
    for link in doomed:
        severed[link.key] = link.properties
        event = DynamicEvent(directive.time, EventAction.LEAVE_LINK,
                             origin=link.source, destination=link.destination,
                             bidirectional=False)
        event.apply(shadow, registry)
        events.append(event)


def _compile_heal(directive: _Directive, shadow: Topology,
                  registry: Dict[str, object],
                  events: List[DynamicEvent],
                  severed: Dict[Tuple[str, str], LinkProperties]) -> None:
    if not severed:
        raise ThunderstormError("'heal' with no active partition",
                                directive.line_number)
    for (source, destination), properties in severed.items():
        event = DynamicEvent(directive.time, EventAction.JOIN_LINK,
                             origin=source, destination=destination,
                             properties=properties, bidirectional=False)
        event.apply(shadow, registry)
        events.append(event)
    severed.clear()
