"""Application workloads used by the paper's evaluation.

All applications are written against the data-plane protocol only — they
run unmodified on the Kollaps plane, the bare-metal network or any baseline
emulator, mirroring the paper's "unmodified off-the-shelf application"
property.

* :mod:`repro.apps.iperf` — bulk TCP/UDP throughput measurement (§5.1–5.4),
* :mod:`repro.apps.ping` — ICMP echo RTT/jitter probes (§5.1, §5.5),
* :mod:`repro.apps.http` — an HTTP server with wrk2-like (keep-alive) and
  curl-like (connection-per-request) clients (§5.3),
* :mod:`repro.apps.kvstore` — memcached server + memtier-like client (§5.2),
* :mod:`repro.apps.cassandra` — quorum-replicated wide-column store +
  YCSB-like workload driver (§5.6),
* :mod:`repro.apps.smr` — BFT-SMaRt and Wheat state-machine replication
  message patterns (§5.6),
* :mod:`repro.apps.udpgen` — a constant-bit-rate UDP blaster that never
  backs off (§3's loss-insensitive traffic).
"""

from repro.apps.iperf import IperfResult, run_iperf_pair
from repro.apps.ping import PingStats, Pinger
from repro.apps.http import CurlSwarm, HttpServer, Wrk2Client
from repro.apps.kvstore import KvServer, MemtierClient
from repro.apps.cassandra import CassandraCluster, YcsbClient
from repro.apps.smr import SmrDeployment
from repro.apps.udpgen import UdpBlaster, UdpStats

__all__ = [
    "run_iperf_pair",
    "IperfResult",
    "Pinger",
    "PingStats",
    "HttpServer",
    "Wrk2Client",
    "CurlSwarm",
    "KvServer",
    "MemtierClient",
    "CassandraCluster",
    "YcsbClient",
    "SmrDeployment",
    "UdpBlaster",
    "UdpStats",
]
