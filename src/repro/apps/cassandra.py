"""A Cassandra-like quorum-replicated store and a YCSB-like driver (§5.6).

The paper's deployment: 4 replicas in Frankfurt, 4 in Sydney, replication
factor 2, YCSB in Frankfurt issuing a 50/50 read/update mix with
``R = ONE`` and ``W = QUORUM`` — every update must be acknowledged by a
replica in Sydney, which is what pins the update latency to the
inter-region round trip, while reads complete locally.

Implementation: each key maps to ``replication_factor`` replicas chosen
ring-style across the node list.  A coordinator (the replica the client
contacts, always its nearest) fans out to the key's replicas and answers
after ``R`` or ``W`` acknowledgements.  Replicas are single service queues;
all messages are packets on the data plane.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.netstack.packet import Packet
from repro.sim import Simulator

__all__ = ["CassandraCluster", "YcsbClient", "YcsbStats"]

_READ_REQUEST_BITS = 120 * 8.0
_UPDATE_REQUEST_BITS = 1150 * 8.0
_REPLICA_MESSAGE_BITS = 1150 * 8.0
_ACK_BITS = 60 * 8.0
_RESPONSE_BITS = 1100 * 8.0

_operation_ids = itertools.count()


def _shared_prefix(first: str, second: str) -> int:
    """Length of the common prefix — the stand-in for Cassandra's snitch.

    Topology generators name containers ``<prefix>-<region>-<index>``, so
    two nodes in the same region share a longer prefix than nodes in
    different regions.
    """
    count = 0
    for a, b in zip(first, second):
        if a != b:
            break
        count += 1
    return count


class _Replica:
    """One Cassandra node: a service queue plus the local store."""

    def __init__(self, sim: Simulator, name: str, service_time: float) -> None:
        self.sim = sim
        self.name = name
        self.service_time = service_time
        self._horizon = 0.0
        self.operations = 0

    def process(self, callback: Callable[[], None]) -> None:
        start = max(self.sim.now, self._horizon)
        self._horizon = start + self.service_time
        self.operations += 1
        self.sim.at(self._horizon, callback)


class CassandraCluster:
    """The replica set plus coordinator logic."""

    def __init__(self, sim: Simulator, plane, replicas: Sequence[str], *,
                 replication_factor: int = 2,
                 write_consistency: int = 2, read_consistency: int = 1,
                 service_time: float = 250e-6) -> None:
        if replication_factor > len(replicas):
            raise ValueError("replication factor exceeds replica count")
        if write_consistency > replication_factor or \
                read_consistency > replication_factor:
            raise ValueError("consistency level exceeds replication factor")
        self.sim = sim
        self.plane = plane
        self.replica_names = list(replicas)
        self.replication_factor = replication_factor
        self.write_consistency = write_consistency
        self.read_consistency = read_consistency
        self.replicas = {name: _Replica(sim, name, service_time)
                         for name in replicas}

    # ------------------------------------------------------------- placement
    def replicas_for(self, key_hash: int) -> List[str]:
        """Ring placement: RF consecutive nodes starting at the key's token.

        The node list interleaves regions (as the paper's NetworkTopology
        strategy does), so a replica set spans both datacenters.
        """
        start = key_hash % len(self.replica_names)
        return [self.replica_names[(start + offset) % len(self.replica_names)]
                for offset in range(self.replication_factor)]

    # ----------------------------------------------------------- coordination
    def execute(self, coordinator: str, operation: str, key_hash: int,
                created: float, on_done: Callable[[float], None]) -> None:
        """Run one read/update at ``coordinator``; ``on_done(latency)``."""
        owners = self.replicas_for(key_hash)
        needed = (self.write_consistency if operation == "update"
                  else self.read_consistency)
        state = {"acks": 0, "done": False}
        if operation == "read":
            # R = ONE: the coordinator asks the nearest owner (itself when
            # it owns the key) and replies on first answer.  Nearness uses
            # the snitch heuristic below — service names encode the
            # datacenter (``cas-frankfurt-3``), so the longest shared
            # prefix picks a same-region replica when one exists.
            if coordinator in owners:
                owners = [coordinator]
            else:
                owners = [max(owners,
                              key=lambda owner: _shared_prefix(owner,
                                                               coordinator))]
            needed = 1

        def on_ack(_packet: Optional[Packet] = None) -> None:
            state["acks"] += 1
            if state["acks"] >= needed and not state["done"]:
                state["done"] = True
                on_done(self.sim.now - created)

        for owner in owners:
            if owner == coordinator:
                self.replicas[owner].process(on_ack)
                continue
            message = Packet(coordinator, owner, _REPLICA_MESSAGE_BITS
                             if operation == "update" else _READ_REQUEST_BITS,
                             kind="cassandra-replicate", created=created)

            def at_owner(packet: Packet, owner=owner) -> None:
                self.replicas[owner].process(
                    lambda: self.plane.send(
                        Packet(owner, coordinator, _ACK_BITS,
                               kind="cassandra-ack", created=created),
                        on_ack))

            self.plane.send(message, at_owner)


@dataclass
class YcsbStats:
    read_latencies: List[float] = field(default_factory=list)
    update_latencies: List[float] = field(default_factory=list)
    completed: int = 0

    def throughput(self, duration: float) -> float:
        return self.completed / duration if duration > 0 else 0.0

    def all_latencies(self) -> List[float]:
        return self.read_latencies + self.update_latencies


class YcsbClient:
    """Closed-loop YCSB driver: ``threads`` workers, 50/50 read/update."""

    def __init__(self, sim: Simulator, plane, source: str,
                 cluster: CassandraCluster, coordinator: str, *,
                 threads: int = 8, read_fraction: float = 0.5,
                 keyspace: int = 10_000, rng=None,
                 start: float = 0.0, stop: float = float("inf")) -> None:
        self.sim = sim
        self.plane = plane
        self.source = source
        self.cluster = cluster
        self.coordinator = coordinator
        self.read_fraction = read_fraction
        self.keyspace = keyspace
        self.rng = rng
        self.stop_time = stop
        self.stats = YcsbStats()
        for _ in range(threads):
            self.sim.at(max(start, sim.now), self._issue)

    def _issue(self) -> None:
        if self.sim.now >= self.stop_time:
            return
        rng = self.rng
        is_read = (rng.random() if rng else 0.5) < self.read_fraction
        key_hash = rng.randrange(self.keyspace) if rng else 0
        operation = "read" if is_read else "update"
        created = self.sim.now
        request = Packet(
            self.source, self.coordinator,
            _READ_REQUEST_BITS if is_read else _UPDATE_REQUEST_BITS,
            kind="ycsb-request", created=created)

        def at_coordinator(_packet: Packet) -> None:
            self.cluster.execute(
                self.coordinator, operation, key_hash, created,
                lambda latency: self._respond(operation, created))

        self.plane.send(request, at_coordinator,
                        on_drop=lambda p: self.sim.after(0.1, self._issue))

    def _respond(self, operation: str, created: float) -> None:
        response = Packet(self.coordinator, self.source, _RESPONSE_BITS,
                          kind="ycsb-response", created=created)
        self.plane.send(
            response,
            lambda p: self._complete(operation, p),
            on_drop=lambda p: self.sim.after(0.1, self._issue))

    def _complete(self, operation: str, response: Packet) -> None:
        latency = self.sim.now - response.created
        if operation == "read":
            self.stats.read_latencies.append(latency)
        else:
            self.stats.update_latencies.append(latency)
        self.stats.completed += 1
        self._issue()
