"""iPerf3-like bulk throughput measurement.

``run_iperf_pair`` launches a saturating flow on any system exposing the
``start_flow``/``run``/``fluid`` surface (the Kollaps engine, the bare-metal
testbed or the emulator baselines) and reports the *application goodput*:
like the real iPerf3, what it measures is payload bytes, so the wire rate is
discounted by the TCP/IP framing overhead (1448 payload bytes per 1514-byte
Ethernet frame — about 4.4 %, the bulk of the systematic "-5 %" rows of
Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional, Tuple

__all__ = ["IperfResult", "run_iperf_pair", "GOODPUT_FACTOR"]

# 1448 bytes of payload per 1514-byte frame (MSS over Ethernet + headers).
GOODPUT_FACTOR = 1448.0 / 1514.0


@dataclass(frozen=True)
class IperfResult:
    """Outcome of one iperf run."""

    mean_goodput: float            # application-visible bits/s
    mean_wire_rate: float          # shaped on-the-wire bits/s
    duration: float
    series: Tuple[Tuple[float, float], ...]  # (time, goodput) samples

    def relative_error(self, target_rate: float) -> float:
        """Deviation of goodput from a target link rate (Table 2 metric)."""
        return self.mean_goodput / target_rate - 1.0


def run_iperf_pair(system, source: str, destination: str, *,
                   duration: float = 60.0, protocol: str = "tcp",
                   congestion_control: str = "cubic",
                   demand: float = float("inf"),
                   warmup: float = 2.0,
                   key: Optional[Hashable] = None) -> IperfResult:
    """Drive one client/server pair for ``duration`` seconds.

    ``system`` is any engine exposing ``start_flow(key, src, dst, ...)``,
    ``run(until)`` and a ``fluid`` engine; the measurement window excludes
    the first ``warmup`` seconds (slow-start ramp), like iPerf3's omit flag.
    """
    flow_key = key if key is not None else f"iperf:{source}->{destination}"
    system.start_flow(flow_key, source, destination, protocol=protocol,
                      congestion_control=congestion_control, demand=demand)
    start = system.sim.now
    system.run(until=start + duration)
    wire = system.fluid.mean_throughput(flow_key, start + warmup,
                                        start + duration)
    series = tuple((time, rate * GOODPUT_FACTOR)
                   for time, rate in system.fluid.series(flow_key))
    return IperfResult(mean_goodput=wire * GOODPUT_FACTOR,
                       mean_wire_rate=wire,
                       duration=duration, series=series)
