"""HTTP server and the two client shapes of §5.3.

* :class:`Wrk2Client` — keep-alive connections issuing back-to-back
  requests (wrk2's closed-loop mode: 100 connections over 2 threads in the
  paper); each response (~64 KB) streams over the established connection,
  so the cost per request is one request round trip plus the transfer.
* :class:`CurlSwarm` — one *fresh TCP connection per request*: handshake,
  slow-start ramp (the response is sent in exponentially growing rounds),
  teardown.  Every connection is new state for full-state emulators —
  exactly what melts Mininet's switches in Figure 6.

The server is a single-queue resource with a small per-request service
time; payloads travel as packets through the data plane so every shaping
and switch-overhead effect applies.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.netstack.packet import Packet
from repro.sim import Simulator

__all__ = ["HttpServer", "Wrk2Client", "CurlSwarm"]

_REQUEST_BITS = 200 * 8.0
_MSS_BITS = 1448 * 8.0
_HANDSHAKE_PACKET_BITS = 66 * 8.0
_INITIAL_WINDOW_BITS = 10 * _MSS_BITS

_connection_ids = itertools.count()


class HttpServer:
    """A single-threaded HTTP server: FIFO service, fixed response size."""

    def __init__(self, sim: Simulator, plane, name: str, *,
                 response_bits: float = 64 * 1024 * 8.0,
                 service_time: float = 100e-6) -> None:
        self.sim = sim
        self.plane = plane
        self.name = name
        self.response_bits = response_bits
        self.service_time = service_time
        self._horizon = 0.0
        self.requests_served = 0

    def serve(self, request: Packet, respond) -> None:
        """Queue the request; call ``respond(delay_until_send)`` when done."""
        start = max(self.sim.now, self._horizon)
        self._horizon = start + self.service_time
        done = self._horizon
        self.requests_served += 1
        self.sim.at(done, respond)


@dataclass
class HttpStats:
    """Client-side accounting shared by both client shapes."""

    completed: int = 0
    bits_received: float = 0.0
    latencies: List[float] = field(default_factory=list)

    def throughput(self, duration: float) -> float:
        """Payload bits/s over the run."""
        return self.bits_received / duration if duration > 0 else 0.0


class Wrk2Client:
    """Closed-loop keep-alive client: ``connections`` parallel streams."""

    def __init__(self, sim: Simulator, plane, source: str,
                 server: HttpServer, *, connections: int = 100,
                 start: float = 0.0, stop: float = float("inf")) -> None:
        self.sim = sim
        self.plane = plane
        self.source = source
        self.server = server
        self.connections = connections
        self.stop_time = stop
        self.stats = HttpStats()
        for _ in range(connections):
            self.sim.at(max(start, sim.now), self._issue_request)

    def _issue_request(self) -> None:
        if self.sim.now >= self.stop_time:
            return
        sent_at = self.sim.now
        request = Packet(self.source, self.server.name, _REQUEST_BITS,
                         kind="http-request", created=sent_at)
        self.plane.send(request, lambda p: self._at_server(p, sent_at),
                        on_drop=lambda p: self._retry())

    def _at_server(self, request: Packet, sent_at: float) -> None:
        self.server.serve(request,
                          lambda: self._send_response(sent_at))

    def _send_response(self, sent_at: float) -> None:
        response = Packet(self.server.name, self.source,
                          self.server.response_bits, kind="http-response",
                          created=sent_at)
        self.plane.send(response, self._on_response,
                        on_drop=lambda p: self._retry())

    def _on_response(self, response: Packet) -> None:
        self.stats.completed += 1
        self.stats.bits_received += response.size_bits
        self.stats.latencies.append(self.sim.now - response.created)
        self._issue_request()

    def _retry(self) -> None:
        # Keep-alive connections retransmit; modelled as immediate reissue
        # after a short timeout.
        self.sim.after(0.050, self._issue_request)


class CurlSwarm:
    """``clients`` independent curl loops: new connection per request.

    Each request performs a handshake (SYN / SYN-ACK as real packets), then
    receives the response in slow-start rounds: the server sends one burst
    per round, doubling from a 10-segment initial window, each round
    costing a full round trip (the defining cost of short flows).  The
    per-round bursts travel as packets tagged with a fresh connection id,
    so full-state emulators pay their per-connection price.
    """

    def __init__(self, sim: Simulator, plane, sources: List[str],
                 server: HttpServer, *, start: float = 0.0,
                 stop: float = float("inf")) -> None:
        self.sim = sim
        self.plane = plane
        self.server = server
        self.stop_time = stop
        self.stats = HttpStats()
        for source in sources:
            self.sim.at(max(start, sim.now),
                        lambda source=source: self._connect(source))

    # ------------------------------------------------------------ lifecycle
    def _connect(self, source: str) -> None:
        if self.sim.now >= self.stop_time:
            return
        connection = next(_connection_ids)
        started = self.sim.now
        syn = Packet(source, self.server.name, _HANDSHAKE_PACKET_BITS,
                     kind=f"syn:{connection}", created=started)
        self.plane.send(
            syn,
            lambda p: self._syn_ack(source, connection, started),
            on_drop=lambda p: self._abort(source))

    def _syn_ack(self, source: str, connection: int, started: float) -> None:
        syn_ack = Packet(self.server.name, source, _HANDSHAKE_PACKET_BITS,
                         kind=f"syn:{connection}", created=started)
        self.plane.send(
            syn_ack,
            lambda p: self._send_get(source, connection, started),
            on_drop=lambda p: self._abort(source))

    def _send_get(self, source: str, connection: int, started: float) -> None:
        get = Packet(source, self.server.name, _REQUEST_BITS,
                     kind=f"http:{connection}", created=started)
        self.plane.send(
            get,
            lambda p: self.server.serve(
                p, lambda: self._stream_response(source, connection, started,
                                                 remaining=self.server.response_bits,
                                                 window=_INITIAL_WINDOW_BITS)),
            on_drop=lambda p: self._abort(source))

    def _stream_response(self, source: str, connection: int, started: float,
                         *, remaining: float, window: float) -> None:
        burst = min(window, remaining)
        chunk = Packet(self.server.name, source, burst,
                       kind=f"http:{connection}", created=started)
        left = remaining - burst

        def on_chunk(_packet: Packet) -> None:
            if left <= 0:
                self._complete(source, started)
            else:
                # The client's ack releases the next, doubled round.
                ack = Packet(source, self.server.name, _HANDSHAKE_PACKET_BITS,
                             kind=f"http:{connection}", created=started)
                self.plane.send(
                    ack,
                    lambda p: self._stream_response(
                        source, connection, started,
                        remaining=left, window=window * 2),
                    on_drop=lambda p: self._abort(source))

        self.plane.send(chunk, on_chunk, on_drop=lambda p: self._abort(source))

    def _complete(self, source: str, started: float) -> None:
        self.stats.completed += 1
        self.stats.bits_received += self.server.response_bits
        self.stats.latencies.append(self.sim.now - started)
        self._connect(source)

    def _abort(self, source: str) -> None:
        # Connection lost: curl retries after its backoff.
        self.sim.after(0.100, lambda: self._connect(source))
