"""BFT-SMaRt and Wheat state-machine replication message patterns (§5.6).

Figure 9 reproduces the experiment of [78]: one replica and one client per
EC2 region (Virginia, Oregon, Ireland, São Paulo, Sydney) running a
replicated counter; the metric is per-client request latency (50th/90th
percentile).  Latency is entirely message-pattern-driven:

* **BFT-SMaRt** (n = 4, f = 1, leader in Virginia): client sends to the
  leader; the leader runs the three-phase BFT ordering (PROPOSE, WRITE,
  ACCEPT — two quorum round trips among replicas, quorum = ⌈(n+f+1)/2⌉ = 3);
  every replica then replies to the client, which waits for f+1 = 2 matching
  replies.
* **Wheat** (n = 5 with the same fault threshold, weighted votes): the
  vote assignment lets a quorum form from the *fastest* replicas
  (Wmax-weighted), cutting one round of waiting on the slow quorum path —
  we model it as quorums of the 2 fastest of 5 with double-weighted safe
  majority, plus the tentative-execution reply (client waits for the
  weighted quorum of replies directly).

All messages are packets over the data plane, so emulated inter-region
latency and jitter drive the distributions exactly as on EC2.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.netstack.packet import Packet
from repro.sim import Simulator

__all__ = ["SmrDeployment", "SmrStats"]

_REQUEST_BITS = 300 * 8.0
_ORDER_BITS = 400 * 8.0
_REPLY_BITS = 150 * 8.0

_op_counter = itertools.count()


@dataclass
class SmrStats:
    latencies: List[float] = field(default_factory=list)

    def percentile(self, fraction: float) -> float:
        if not self.latencies:
            return float("nan")
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]


class SmrDeployment:
    """One replicated-counter deployment (protocol = 'bftsmart' | 'wheat')."""

    def __init__(self, sim: Simulator, plane, replicas: Sequence[str], *,
                 protocol: str = "bftsmart", leader: Optional[str] = None,
                 execution_time: float = 50e-6) -> None:
        if protocol not in ("bftsmart", "wheat"):
            raise ValueError(f"unknown SMR protocol {protocol!r}")
        self.sim = sim
        self.plane = plane
        self.replicas = list(replicas)
        self.protocol = protocol
        self.leader = leader or self.replicas[0]
        self.execution_time = execution_time
        self.stats_by_client: Dict[str, SmrStats] = {}

    # ----------------------------------------------------------- client side
    def run_client(self, client: str, *, operations: int = 100,
                   start: float = 0.0) -> SmrStats:
        """A closed-loop client issuing counter increments."""
        stats = self.stats_by_client.setdefault(client, SmrStats())
        state = {"remaining": operations}

        def issue() -> None:
            if state["remaining"] <= 0:
                return
            state["remaining"] -= 1
            created = self.sim.now
            self._invoke(client, created,
                         lambda latency: (stats.latencies.append(latency),
                                          issue()))

        self.sim.at(max(start, self.sim.now), issue)
        return stats

    def _invoke(self, client: str, created: float,
                on_done: Callable[[float], None]) -> None:
        if self.protocol == "bftsmart":
            self._invoke_bftsmart(client, created, on_done)
        else:
            self._invoke_wheat(client, created, on_done)

    # ------------------------------------------------------------ BFT-SMaRt
    def _invoke_bftsmart(self, client: str, created: float,
                         on_done: Callable[[float], None]) -> None:
        """Client -> leader; PROPOSE; WRITE; ACCEPT; replicas -> client."""
        n = len(self.replicas)
        quorum = min(n, -(-(n + 2) // 2))  # ceil((n + f + 1) / 2) with f = 1
        replies_needed = 2  # f + 1

        request = Packet(client, self.leader, _REQUEST_BITS,
                         kind="smr-request", created=created)
        self.plane.send(request, lambda p: propose())

        def propose() -> None:
            # Leader PROPOSEs to all; each replica WRITEs to all; once a
            # replica has a write quorum it ACCEPTs.  The latency-critical
            # path is two quorum round trips from the leader's perspective;
            # we enact it as leader -> replica (PROPOSE), replica -> leader
            # (WRITE), leader -> replica (ACCEPT), replica -> client.
            write_acks = {"count": 0, "accepted": False}
            for replica in self.replicas:
                message = Packet(self.leader, replica, _ORDER_BITS,
                                 kind="smr-propose", created=created)

                def at_replica(packet: Packet, replica=replica) -> None:
                    write = Packet(replica, self.leader, _ORDER_BITS,
                                   kind="smr-write", created=created)
                    self.plane.send(write, lambda p: on_write())

                if replica == self.leader:
                    self.sim.after(self.execution_time,
                                   lambda replica=replica: on_write())
                else:
                    self.plane.send(message, at_replica)

            def on_write() -> None:
                write_acks["count"] += 1
                if write_acks["count"] >= quorum and not write_acks["accepted"]:
                    write_acks["accepted"] = True
                    accept()

        def accept() -> None:
            reply_state = {"count": 0, "done": False}
            for replica in self.replicas:

                def reply_to_client(replica=replica) -> None:
                    reply = Packet(replica, client, _REPLY_BITS,
                                   kind="smr-reply", created=created)
                    self.plane.send(reply, lambda p: on_reply())

                if replica == self.leader:
                    self.sim.after(self.execution_time, reply_to_client)
                else:
                    accept_message = Packet(self.leader, replica, _ORDER_BITS,
                                            kind="smr-accept", created=created)
                    self.plane.send(
                        accept_message,
                        lambda p, reply_to_client=reply_to_client:
                        reply_to_client())

            def on_reply() -> None:
                reply_state["count"] += 1
                if reply_state["count"] >= replies_needed and \
                        not reply_state["done"]:
                    reply_state["done"] = True
                    on_done(self.sim.now - created)

        # `propose` is invoked when the request reaches the leader.

    # ----------------------------------------------------------------- Wheat
    def _invoke_wheat(self, client: str, created: float,
                      on_done: Callable[[float], None]) -> None:
        """Weighted quorums + tentative execution: one ordering round trip
        against the *fastest* weighted quorum, replies direct to client."""
        request = Packet(client, self.leader, _REQUEST_BITS,
                         kind="smr-request", created=created)
        self.plane.send(request, lambda p: order())

        def order() -> None:
            # Leader sends ordering message; each replica tentatively
            # executes and replies straight to the client.  The client
            # accepts after a weighted quorum: with Wheat's Wmax vote
            # distribution the two best-connected replicas hold enough
            # weight, so the reply threshold is 2 (plus the leader's own).
            reply_state = {"count": 0, "done": False}
            replies_needed = 2

            def on_reply() -> None:
                reply_state["count"] += 1
                if reply_state["count"] >= replies_needed and \
                        not reply_state["done"]:
                    reply_state["done"] = True
                    on_done(self.sim.now - created)

            for replica in self.replicas:

                def reply_to_client(replica=replica) -> None:
                    reply = Packet(replica, client, _REPLY_BITS,
                                   kind="smr-reply", created=created)
                    self.plane.send(reply, lambda p: on_reply())

                if replica == self.leader:
                    self.sim.after(self.execution_time, reply_to_client)
                else:
                    order_message = Packet(self.leader, replica, _ORDER_BITS,
                                           kind="smr-order", created=created)
                    self.plane.send(
                        order_message,
                        lambda p, reply_to_client=reply_to_client:
                        reply_to_client())
