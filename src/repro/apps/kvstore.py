"""memcached-like in-memory KV store and a memtier-like benchmark client.

The §5.2 scalability experiment deploys one memcached server per emulated
region with three memtier clients each (two local, one remote), measuring
aggregate throughput as the emulation spreads over more physical hosts.

The server is an in-memory hash table behind a single service queue; the
client runs ``connections`` closed-loop pipelines issuing GET/SET in a
configurable ratio.  All traffic is real packets on the data plane, so
emulated WAN latency and bandwidth shaping apply.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.netstack.packet import Packet
from repro.sim import Simulator

__all__ = ["KvServer", "MemtierClient", "KvStats"]

_GET_REQUEST_BITS = 60 * 8.0
_SET_REQUEST_BITS = 1084 * 8.0   # key + 1 KB value
_GET_RESPONSE_BITS = 1054 * 8.0
_SET_RESPONSE_BITS = 30 * 8.0
_VALUE = b"x" * 1024


class KvServer:
    """A single-queue key-value server."""

    def __init__(self, sim: Simulator, plane, name: str, *,
                 service_time: float = 20e-6) -> None:
        self.sim = sim
        self.plane = plane
        self.name = name
        self.service_time = service_time
        self.store: Dict[str, bytes] = {}
        self._horizon = 0.0
        self.operations = 0

    def handle(self, request: Packet,
               on_response_delivered: Callable[[Packet], None],
               on_drop: Optional[Callable[[Packet], None]] = None) -> None:
        """Serve one request and send the response back over the plane."""
        operation, key = request.payload
        start = max(self.sim.now, self._horizon)
        self._horizon = start + self.service_time
        self.operations += 1
        if operation == "set":
            self.store[key] = _VALUE
            response_bits = _SET_RESPONSE_BITS
        else:
            _ = self.store.get(key)
            response_bits = _GET_RESPONSE_BITS
        response = Packet(self.name, request.source, response_bits,
                          kind="kv-response", payload=request.payload,
                          created=request.created)
        self.sim.at(self._horizon, lambda: self.plane.send(
            response, on_response_delivered, on_drop=on_drop))


@dataclass
class KvStats:
    completed: int = 0
    latencies: List[float] = field(default_factory=list)

    def throughput(self, duration: float) -> float:
        """Operations per second."""
        return self.completed / duration if duration > 0 else 0.0


class MemtierClient:
    """Closed-loop GET/SET driver over ``connections`` pipelines."""

    def __init__(self, sim: Simulator, plane, source: str, server: KvServer, *,
                 connections: int = 1, set_fraction: float = 0.1,
                 keyspace: int = 1000, rng=None,
                 start: float = 0.0, stop: float = float("inf"),
                 think_time: float = 0.0) -> None:
        self.sim = sim
        self.plane = plane
        self.source = source
        self.server = server
        self.set_fraction = set_fraction
        self.keyspace = keyspace
        self.rng = rng
        self.stop_time = stop
        self.think_time = think_time
        self.stats = KvStats()
        for _ in range(connections):
            self.sim.at(max(start, sim.now), self._issue)

    def _issue(self) -> None:
        if self.sim.now >= self.stop_time:
            return
        rng = self.rng
        is_set = (rng.random() if rng else 0.5) < self.set_fraction
        key = f"key-{(rng.randrange(self.keyspace) if rng else 0)}"
        operation = "set" if is_set else "get"
        size = _SET_REQUEST_BITS if is_set else _GET_REQUEST_BITS
        request = Packet(self.source, self.server.name, size,
                         kind="kv-request", payload=(operation, key),
                         created=self.sim.now)
        self.plane.send(
            request,
            lambda p: self.server.handle(p, self._on_response,
                                         on_drop=self._on_drop),
            on_drop=self._on_drop)

    def _on_response(self, response: Packet) -> None:
        self.stats.completed += 1
        self.stats.latencies.append(self.sim.now - response.created)
        if self.think_time > 0:
            self.sim.after(self.think_time, self._issue)
        else:
            self._issue()

    def _on_drop(self, _packet: Packet) -> None:
        # Lost request or response: client times out and retries.
        self.sim.after(0.050, self._issue)
