"""A packet-level UDP constant-bit-rate generator (§3's UDP discussion).

"Unreliable transport protocols (i.e., UDP) ignore packet loss and simply
continue to send packets at the application sending rate."  This generator
does exactly that on the packet data plane: datagrams at a fixed rate,
no backoff, no retransmission.  The receiver-side statistics expose what
the emulation did to the stream — delivery rate, loss ratio, one-way
delay — which is how the congestion model's netem injection becomes
visible to an application that never looks at acknowledgements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.netstack.packet import Packet
from repro.sim import Simulator

__all__ = ["UdpBlaster", "UdpStats"]

_DATAGRAM_BITS = 1400 * 8.0  # a typical MTU-safe UDP payload


@dataclass
class UdpStats:
    """Sender/receiver counters for one UDP stream."""

    sent: int = 0
    received: int = 0
    dropped: int = 0
    blocked: int = 0                   # back-pressured at the sender qdisc
    delays: List[float] = field(default_factory=list)

    @property
    def loss_rate(self) -> float:
        return self.dropped / self.sent if self.sent else 0.0

    @property
    def mean_delay(self) -> float:
        return sum(self.delays) / len(self.delays) if self.delays else 0.0

    def delivered_bits(self, datagram_bits: float = _DATAGRAM_BITS) -> float:
        return self.received * datagram_bits

    def delivery_rate(self, duration: float,
                      datagram_bits: float = _DATAGRAM_BITS) -> float:
        return self.delivered_bits(datagram_bits) / duration \
            if duration > 0 else 0.0


class UdpBlaster:
    """Sends datagrams at ``rate`` bits/s from ``source`` to ``destination``.

    The sender never reacts to drops; a datagram refused by the local
    qdisc (back-pressure) is simply counted and abandoned, like a
    non-blocking ``sendto`` returning ``EAGAIN``.
    """

    def __init__(self, sim: Simulator, plane, source: str, destination: str,
                 *, rate: float, datagram_bits: float = _DATAGRAM_BITS,
                 start: float = 0.0, stop: float = float("inf")) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive: {rate}")
        self.sim = sim
        self.plane = plane
        self.source = source
        self.destination = destination
        self.datagram_bits = datagram_bits
        self.interval = datagram_bits / rate
        self.stop_time = stop
        self.stats = UdpStats()
        self.sim.at(max(start, sim.now), self._send_next)

    def _send_next(self) -> None:
        if self.sim.now >= self.stop_time:
            return
        self.stats.sent += 1
        datagram = Packet(self.source, self.destination, self.datagram_bits,
                          kind="udp", created=self.sim.now)
        try:
            self.plane.send(datagram, self._on_delivered,
                            on_drop=self._on_dropped,
                            on_backpressure=self._on_blocked)
        except TypeError:
            # Planes without a back-pressure hook (full-state network).
            self.plane.send(datagram, self._on_delivered,
                            on_drop=self._on_dropped)
        self.sim.after(self.interval, self._send_next)

    def _on_delivered(self, datagram: Packet) -> None:
        self.stats.received += 1
        self.stats.delays.append(self.sim.now - datagram.created)

    def _on_dropped(self, _datagram: Packet) -> None:
        self.stats.dropped += 1

    def _on_blocked(self, _datagram: Packet, _retry_at: float) -> None:
        # Fire and forget: UDP does not wait for the queue to drain.
        self.stats.blocked += 1
        self.stats.dropped += 1
