"""Textual experiment monitor (the web dashboard's terminal stand-in)."""

from repro.dashboard.monitor import CampaignMonitor, Dashboard, FleetMonitor
from repro.dashboard.graphview import (
    render_adjacency,
    render_collapsed_matrix,
    render_flow_history,
    sparkline,
)

__all__ = [
    "CampaignMonitor",
    "Dashboard",
    "FleetMonitor",
    "render_adjacency",
    "render_collapsed_matrix",
    "render_flow_history",
    "sparkline",
]
