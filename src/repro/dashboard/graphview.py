"""ASCII rendering of topologies and collapsed paths for the dashboard.

The web dashboard of the real system shows "a graph-based representation
of the emulated topology" (§3).  This module renders the same structure
as text: an adjacency view of the physical topology, the collapsed
end-to-end matrix, and sparkline-style flow-rate histories.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.units import format_rate, format_time

__all__ = ["render_adjacency", "render_collapsed_matrix", "sparkline",
           "render_flow_history"]

_BARS = "▁▂▃▄▅▆▇█"


def render_adjacency(topology) -> str:
    """One line per node with its outgoing links and their properties."""
    lines = [f"{topology.name}: adjacency"]
    for node in sorted(topology.node_names()):
        neighbours = topology.neighbours(node)
        marker = "[svc]" if node in topology.services else "[brg]"
        if not neighbours:
            lines.append(f"  {marker} {node} (isolated)")
            continue
        lines.append(f"  {marker} {node}")
        for destination, link in sorted(neighbours,
                                        key=lambda item: item[0]):
            lines.append(f"      -> {destination:<16} "
                         f"{link.properties.describe()}")
    return "\n".join(lines)


def render_collapsed_matrix(collapsed, *,
                            sources: Optional[Sequence[str]] = None,
                            limit: int = 12) -> str:
    """The end-to-end latency/bandwidth matrix of a collapsed topology.

    With more than ``limit`` containers only the first ``limit`` are
    shown (matrices grow quadratically; the dashboard is a glance, not a
    dump).
    """
    paths = list(collapsed.paths())
    names = sorted({path.source for path in paths}
                   | {path.destination for path in paths})
    if sources is not None:
        names = [name for name in names if name in set(sources)]
    clipped = False
    if len(names) > limit:
        names, clipped = names[:limit], True
    by_pair: Dict[Tuple[str, str], object] = {
        (path.source, path.destination): path for path in paths}
    width = max([len(name) for name in names] + [8]) + 1
    header = " " * width + "".join(name.ljust(width) for name in names)
    lines = ["collapsed end-to-end (latency / min bandwidth)", header]
    for source in names:
        cells = []
        for destination in names:
            if source == destination:
                cells.append("-".ljust(width))
                continue
            path = by_pair.get((source, destination))
            if path is None:
                cells.append("unreach".ljust(width))
                continue
            cell = (f"{format_time(path.properties.latency)}/"
                    f"{format_rate(path.properties.bandwidth)}")
            cells.append(cell.ljust(width))
        lines.append(source.ljust(width) + "".join(cells))
    if clipped:
        lines.append(f"  ... clipped to the first {limit} containers")
    return "\n".join(lines)


def sparkline(values: Sequence[float], *, width: int = 60) -> str:
    """Compress ``values`` into a fixed-width unicode bar strip."""
    if not values:
        return ""
    if len(values) > width:
        # Average into `width` buckets.
        bucket = len(values) / width
        values = [sum(values[int(i * bucket):int((i + 1) * bucket) or 1])
                  / max(1, len(values[int(i * bucket):int((i + 1) * bucket)]))
                  for i in range(width)]
    top = max(values)
    if top <= 0:
        return _BARS[0] * len(values)
    return "".join(
        _BARS[min(len(_BARS) - 1,
                  int(value / top * (len(_BARS) - 1) + 0.5))]
        for value in values)


def render_flow_history(fluid, key, *, width: int = 60) -> str:
    """A one-line sparkline of a flow's delivered-rate history."""
    series = fluid.series(key)
    if not series:
        return f"{key}: (no history)"
    rates = [rate for _time, rate in series]
    peak = max(rates)
    return (f"{key}: {sparkline(rates, width=width)} "
            f"peak={format_rate(peak)} last={format_rate(rates[-1])}")
