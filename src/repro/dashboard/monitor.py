"""Textual dashboard: topology, services, flows and events at a glance.

The real Kollaps ships a web dashboard (§3); in this reproduction the same
information renders as text, suitable for printing between experiment
phases or piping into logs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TextIO, Tuple

from repro.units import format_rate, format_time

__all__ = ["Dashboard", "CampaignMonitor", "FleetMonitor"]


class Dashboard:
    """Renders engine state; also keeps a bounded in-memory event log."""

    def __init__(self, engine, *, log_limit: int = 1000) -> None:
        self.engine = engine
        self.log_limit = log_limit
        self.events: List[str] = []

    # ------------------------------------------------------------ event log
    def log(self, message: str) -> None:
        self.events.append(f"[{self.engine.sim.now:10.3f}s] {message}")
        if len(self.events) > self.log_limit:
            del self.events[:len(self.events) - self.log_limit]

    # -------------------------------------------------------------- renders
    def render_topology(self) -> str:
        state = self.engine.current_state
        lines = [f"topology @ {self.engine.sim.now:.3f}s "
                 f"(state from t={state.time:.3f}s)"]
        lines.append(state.topology.describe())
        return "\n".join(lines)

    def render_services(self) -> str:
        lines = ["services:"]
        placement = self.engine.placement
        for name, service in self.engine.current_state.topology.services.items():
            machines = sorted({placement.get(container, "?")
                               for container in service.container_names()})
            lines.append(f"  {name}: image={service.image} "
                         f"replicas={service.replicas} on {', '.join(machines)}")
        return "\n".join(lines)

    def render_flows(self) -> str:
        lines = ["active flows:"]
        flows = self.engine.fluid.active_flows()
        if not flows:
            lines.append("  (none)")
        for flow in flows:
            lines.append("  " + flow.describe())
        return "\n".join(lines)

    def render_metadata(self) -> str:
        lines = ["metadata traffic:"]
        for machine, stats in sorted(self.engine.metadata_stats().items()):
            lines.append(
                f"  {machine}: tx={stats.wire_bytes_sent()}B "
                f"({stats.datagrams_sent} datagrams), "
                f"rx={stats.bytes_received}B, "
                f"shm={stats.shared_memory_messages}")
        return "\n".join(lines)

    def render_managers(self) -> str:
        """Per-machine Emulation Manager counters."""
        lines = ["emulation managers:"]
        for machine, manager in sorted(self.engine.managers.items()):
            contended = sum(1 for state in manager._link_contended.values()
                            if state)
            lines.append(f"  {machine}: loops={manager.loops} "
                         f"enforcements={manager.enforcements} "
                         f"cores={len(manager.cores)} "
                         f"contended-links={contended}")
        return "\n".join(lines)

    def render_graph(self) -> str:
        """ASCII adjacency + collapsed matrix (the web UI's graph pane)."""
        from repro.dashboard.graphview import (
            render_adjacency,
            render_collapsed_matrix,
        )

        state = self.engine.current_state
        return (render_adjacency(state.topology) + "\n\n"
                + render_collapsed_matrix(state.collapsed))

    def render_flow_histories(self, *, width: int = 60) -> str:
        """Sparkline per tracked flow (delivered-rate history)."""
        from repro.dashboard.graphview import render_flow_history

        keys = sorted(self.engine.fluid.flows, key=str)
        if not keys:
            return "flow histories:\n  (none)"
        lines = ["flow histories:"]
        for key in keys:
            lines.append("  " + render_flow_history(self.engine.fluid, key,
                                                    width=width))
        return "\n".join(lines)

    def render(self) -> str:
        sections = [self.render_topology(), self.render_services(),
                    self.render_flows(), self.render_managers(),
                    self.render_metadata()]
        if self.events:
            sections.append("events:\n" + "\n".join(
                "  " + event for event in self.events[-10:]))
        return "\n\n".join(sections)


class CampaignMonitor:
    """A campaign's progress feed: per-point events, tallies, a bar.

    Duck-typed against :class:`repro.campaign.executor.CampaignEvent`
    (anything with ``kind``/``point``/``error``/``elapsed``/``detail``),
    so the dashboard stays import-independent of the campaign package.
    Pass an instance as ``Campaign.run(progress=...)``: each event
    optionally streams one feed line (``stream=sys.stderr`` is the CLI's
    live ticker) and :meth:`render` summarises the sweep at any moment.
    """

    #: Event kinds that mean "one more point has an outcome".
    _TERMINAL = ("ok", "incompatible", "error", "skip")

    def __init__(self, total: Optional[int] = None, *,
                 stream: Optional[TextIO] = None,
                 log_limit: int = 200) -> None:
        self.total = total
        self.stream = stream
        self.log_limit = log_limit
        self.counts: Dict[str, int] = {}
        self.events: List[str] = []

    # ------------------------------------------------------------- ingestion
    def __call__(self, event) -> None:
        kind = event.kind
        self.counts[kind] = self.counts.get(kind, 0) + 1
        if kind == "start":
            return                       # submissions aren't outcomes
        where = event.point.describe() if event.point is not None else ""
        detail = getattr(event, "detail", "")
        suffix = ""
        if kind == "error" and event.error:
            suffix = f" — {event.error.splitlines()[0]}"
        elif kind == "incompatible" and event.error:
            suffix = f" — {event.error.splitlines()[0]}"
        elif detail:
            suffix = f" — {detail}"
        timing = f" ({event.elapsed:.2f}s)" if kind == "ok" else ""
        line = f"[{self.done}/{self.total or '?'}] {kind:<12} " \
               f"{where}{timing}{suffix}"
        self.events.append(line)
        if len(self.events) > self.log_limit:
            del self.events[:len(self.events) - self.log_limit]
        if self.stream is not None:
            print(line, file=self.stream)

    # -------------------------------------------------------------- progress
    @property
    def done(self) -> int:
        """Points with an outcome (completed, skipped, failed, N/A)."""
        return sum(self.counts.get(kind, 0) for kind in self._TERMINAL)

    def render(self, *, width: int = 40) -> str:
        """The feed pane: a progress bar, tallies and recent events."""
        total = self.total if self.total else max(self.done, 1)
        filled = int(width * min(self.done / total, 1.0))
        bar = "#" * filled + "-" * (width - filled)
        tallies = ", ".join(
            f"{self.counts[kind]} {kind}"
            for kind in ("ok", "skip", "incompatible", "error", "fallback")
            if self.counts.get(kind)) or "nothing yet"
        lines = [f"campaign progress [{bar}] {self.done}"
                 f"/{self.total if self.total is not None else '?'}",
                 f"  {tallies}"]
        if self.events:
            lines.append("  recent:")
            lines.extend("    " + event for event in self.events[-5:])
        return "\n".join(lines)


class FleetMonitor:
    """A distributed campaign's control-room pane: workers and deltas.

    Duck-typed against :class:`repro.campaign.distributed.coordinator
    .FleetEvent` (anything with ``kind``/``time``/``worker``/``point``/
    ``status``/``lease_id``/``count``/``detail``/``rows``), keeping the
    dashboard import-independent of the campaign package.  Pass an
    instance as ``Coordinator(progress=...)`` (or ``run_fleet(progress=
    ...)``): it tracks per-worker lease/heartbeat state and maintains
    *live aggregate deltas* — a running mean of every (backend, workload)
    headline statistic, updated as each shard record merges, with the
    shift the newest merge caused.  :meth:`render` is the whole pane;
    ``stream`` tees a feed line per consequential event.
    """

    def __init__(self, total: Optional[int] = None, *,
                 stream: Optional[TextIO] = None,
                 log_limit: int = 200) -> None:
        self.total = total
        self.stream = stream
        self.log_limit = log_limit
        self.completed = 0
        self.counts: Dict[str, int] = {}
        self.events: List[str] = []
        self.now = 0.0
        #: worker -> {"status", "machine", "lease", "leased", "done",
        #:            "last_seen", "first_seen", "metrics"}
        self.workers: Dict[str, Dict[str, object]] = {}
        #: (backend, workload) -> [count, mean, last delta]
        self.aggregates: Dict[Tuple[str, str], List[float]] = {}

    # ------------------------------------------------------------- ingestion
    def _worker(self, name: str) -> Dict[str, object]:
        return self.workers.setdefault(
            name, {"status": "?", "machine": "", "lease": None,
                   "leased": 0, "done": 0, "last_seen": self.now,
                   "first_seen": self.now, "metrics": None})

    def __call__(self, event) -> None:
        kind = event.kind
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.now = max(self.now, getattr(event, "time", 0.0))
        line = None
        if kind == "serve":
            self.total = event.count if self.total is None else self.total
            line = f"serving {event.count} points ({event.detail})"
        elif kind == "join":
            state = self._worker(event.worker)
            state["status"], state["machine"] = "live", event.detail
            state["last_seen"] = self.now
            line = f"{event.worker} joined" + (
                f" on {event.detail}" if event.detail else "")
        elif kind == "wait":
            self._worker(event.worker)["status"] = "waiting"
            line = f"{event.worker} waiting — {event.detail}"
        elif kind == "lease":
            state = self._worker(event.worker)
            state["status"], state["lease"] = "live", event.lease_id
            state["leased"], state["done"] = event.count, 0
            line = f"{event.worker} leased {event.count} points " \
                   f"(lease {event.lease_id})"
        elif kind == "heartbeat":
            state = self._worker(event.worker)
            state["last_seen"] = self.now
            snapshot = getattr(event, "metrics", None)
            if isinstance(snapshot, dict):
                state["metrics"] = snapshot
            if state["status"] == "suspect":
                state["status"] = "live"
        elif kind == "merge":
            self.completed = max(self.completed, event.count)
            state = self._worker(event.worker)
            state["done"] = int(state["done"]) + 1
            deltas = [self._merge_row(*row) for row in event.rows]
            where = event.point.describe() if event.point is not None else ""
            suffix = ("  " + "; ".join(deltas)) if deltas else ""
            line = f"[{self.completed}/{self.total or '?'}] " \
                   f"{event.status} {where} via {event.worker}{suffix}"
        elif kind == "expire":
            state = self._worker(event.worker)
            state["status"], state["lease"] = "suspect", None
            line = f"{event.worker} lease {event.lease_id} expired — " \
                   f"{event.detail}"
        elif kind == "done":
            line = f"fleet done: {event.count} points in the store"
        if line is not None:
            self.events.append(line)
            if len(self.events) > self.log_limit:
                del self.events[:len(self.events) - self.log_limit]
            if self.stream is not None:
                print(line, file=self.stream)

    def _merge_row(self, backend: str, workload: str, value: float) -> str:
        """Fold one merged headline value into the running aggregate."""
        cell = self.aggregates.setdefault((backend, workload),
                                          [0.0, 0.0, 0.0])
        count, mean, _last = cell
        new_mean = (mean * count + value) / (count + 1)
        cell[0], cell[1], cell[2] = count + 1, new_mean, new_mean - mean
        return (f"{workload}@{backend} mean {new_mean:g} "
                f"({new_mean - mean:+g})")

    # ------------------------------------------------------------ telemetry
    @staticmethod
    def _metric(snapshot: Dict, name: str, field: str = "value") -> float:
        doc = snapshot.get(name)
        if not isinstance(doc, dict):
            return 0.0
        value = doc.get(field, 0.0)
        return float(value) if value is not None else 0.0

    def worker_telemetry(self, name: str) -> Optional[Dict[str, float]]:
        """Derived live stats from a worker's latest heartbeat snapshot.

        Returns None until that worker has shipped metrics.  ``rate`` is
        points completed per second of fleet time since the worker was
        first seen; ``solver_share``/``collapse_share`` are fractions of
        the worker's busy seconds spent in the fair-share solver and the
        collapse respectively (0.0 when tracing was off on the worker).
        """
        state = self.workers.get(name)
        if state is None or not isinstance(state["metrics"], dict):
            return None
        snapshot = state["metrics"]
        points = self._metric(snapshot, "worker.points")
        busy = self._metric(snapshot, "worker.busy_seconds")
        alive = max(self.now - float(state["first_seen"]), 1e-9)
        waits = snapshot.get("worker.lease_wait_seconds", {})
        wait_count = waits.get("count", 0) if isinstance(waits, dict) else 0
        wait_sum = waits.get("sum", 0.0) if isinstance(waits, dict) else 0.0
        return {
            "points": points,
            "rate": points / alive,
            "busy": busy,
            "solver_share": (self._metric(
                snapshot, "worker.sharing.solver_seconds") / busy
                if busy else 0.0),
            "collapse_share": (self._metric(
                snapshot, "worker.collapse.seconds") / busy
                if busy else 0.0),
            "lease_wait_mean": (wait_sum / wait_count
                                if wait_count else 0.0),
        }

    def render_telemetry(self) -> str:
        """The live points/sec and time-breakdown pane per worker."""
        rows = []
        for name in sorted(self.workers):
            stats = self.worker_telemetry(name)
            if stats is None:
                continue
            breakdown = ""
            if stats["busy"]:
                breakdown = (f", solver {stats['solver_share']*100:.0f}% "
                             f"collapse {stats['collapse_share']*100:.0f}% "
                             f"of {stats['busy']:.2f}s busy")
            rows.append(f"  {name}: {int(stats['points'])} points "
                        f"({stats['rate']:.2f}/s)"
                        f"{breakdown}, "
                        f"lease wait {stats['lease_wait_mean']:.2f}s")
        if not rows:
            return "telemetry:\n  (no worker metrics yet)"
        return "telemetry:\n" + "\n".join(rows)

    # --------------------------------------------------------------- render
    def render(self, *, width: int = 40) -> str:
        """Progress bar + per-worker lease/heartbeat table + deltas."""
        total = self.total if self.total else max(self.completed, 1)
        filled = int(width * min(self.completed / total, 1.0))
        bar = "#" * filled + "-" * (width - filled)
        lines = [f"fleet progress [{bar}] {self.completed}"
                 f"/{self.total if self.total is not None else '?'}"]
        if self.workers:
            lines.append("workers:")
            for name in sorted(self.workers):
                state = self.workers[name]
                lease = ("-" if state["lease"] is None
                         else f"#{state['lease']} "
                              f"{state['done']}/{state['leased']}")
                age = self.now - float(state["last_seen"])
                machine = f" on {state['machine']}" if state["machine"] else ""
                lines.append(f"  {name}{machine}: {state['status']}, "
                             f"lease {lease}, "
                             f"heartbeat {age:.1f}s ago")
        if self.aggregates:
            lines.append("aggregate means (live):")
            for (backend, workload) in sorted(self.aggregates):
                count, mean, delta = self.aggregates[(backend, workload)]
                lines.append(f"  {workload}@{backend}: mean {mean:g} "
                             f"over {int(count)} ({delta:+g} on last merge)")
        if any(isinstance(state.get("metrics"), dict)
               for state in self.workers.values()):
            lines.append(self.render_telemetry())
        if self.events:
            lines.append("recent:")
            lines.extend("  " + event for event in self.events[-5:])
        return "\n".join(lines)
