"""Textual dashboard: topology, services, flows and events at a glance.

The real Kollaps ships a web dashboard (§3); in this reproduction the same
information renders as text, suitable for printing between experiment
phases or piping into logs.
"""

from __future__ import annotations

from typing import List, Optional

from repro.units import format_rate, format_time

__all__ = ["Dashboard"]


class Dashboard:
    """Renders engine state; also keeps a bounded in-memory event log."""

    def __init__(self, engine, *, log_limit: int = 1000) -> None:
        self.engine = engine
        self.log_limit = log_limit
        self.events: List[str] = []

    # ------------------------------------------------------------ event log
    def log(self, message: str) -> None:
        self.events.append(f"[{self.engine.sim.now:10.3f}s] {message}")
        if len(self.events) > self.log_limit:
            del self.events[:len(self.events) - self.log_limit]

    # -------------------------------------------------------------- renders
    def render_topology(self) -> str:
        state = self.engine.current_state
        lines = [f"topology @ {self.engine.sim.now:.3f}s "
                 f"(state from t={state.time:.3f}s)"]
        lines.append(state.topology.describe())
        return "\n".join(lines)

    def render_services(self) -> str:
        lines = ["services:"]
        placement = self.engine.placement
        for name, service in self.engine.current_state.topology.services.items():
            machines = sorted({placement.get(container, "?")
                               for container in service.container_names()})
            lines.append(f"  {name}: image={service.image} "
                         f"replicas={service.replicas} on {', '.join(machines)}")
        return "\n".join(lines)

    def render_flows(self) -> str:
        lines = ["active flows:"]
        flows = self.engine.fluid.active_flows()
        if not flows:
            lines.append("  (none)")
        for flow in flows:
            lines.append("  " + flow.describe())
        return "\n".join(lines)

    def render_metadata(self) -> str:
        lines = ["metadata traffic:"]
        for machine, stats in sorted(self.engine.metadata_stats().items()):
            lines.append(
                f"  {machine}: tx={stats.wire_bytes_sent()}B "
                f"({stats.datagrams_sent} datagrams), "
                f"rx={stats.bytes_received}B, "
                f"shm={stats.shared_memory_messages}")
        return "\n".join(lines)

    def render_managers(self) -> str:
        """Per-machine Emulation Manager counters."""
        lines = ["emulation managers:"]
        for machine, manager in sorted(self.engine.managers.items()):
            contended = sum(1 for state in manager._link_contended.values()
                            if state)
            lines.append(f"  {machine}: loops={manager.loops} "
                         f"enforcements={manager.enforcements} "
                         f"cores={len(manager.cores)} "
                         f"contended-links={contended}")
        return "\n".join(lines)

    def render_graph(self) -> str:
        """ASCII adjacency + collapsed matrix (the web UI's graph pane)."""
        from repro.dashboard.graphview import (
            render_adjacency,
            render_collapsed_matrix,
        )

        state = self.engine.current_state
        return (render_adjacency(state.topology) + "\n\n"
                + render_collapsed_matrix(state.collapsed))

    def render_flow_histories(self, *, width: int = 60) -> str:
        """Sparkline per tracked flow (delivered-rate history)."""
        from repro.dashboard.graphview import render_flow_history

        keys = sorted(self.engine.fluid.flows, key=str)
        if not keys:
            return "flow histories:\n  (none)"
        lines = ["flow histories:"]
        for key in keys:
            lines.append("  " + render_flow_history(self.engine.fluid, key,
                                                    width=width))
        return "\n".join(lines)

    def render(self) -> str:
        sections = [self.render_topology(), self.render_services(),
                    self.render_flows(), self.render_managers(),
                    self.render_metadata()]
        if self.events:
            sections.append("events:\n" + "\n".join(
                "  " + event for event in self.events[-10:]))
        return "\n\n".join(sections)
