"""The immutable result of :meth:`Scenario.compile`.

A :class:`CompiledScenario` bundles everything an experiment needs —
:class:`~repro.topology.model.Topology`,
:class:`~repro.topology.events.EventSchedule`, workload specs and
:class:`~repro.core.engine.EngineConfig` — and offers the three verbs the
toolchain is built from:

* :meth:`run` — execute on any registered backend (Kollaps or a §5
  baseline), install the workloads, run, collect one
  :class:`~repro.scenario.results.ScenarioRun`;
* :meth:`plan` — the Deployment Generator's orchestrator document (§4);
* :meth:`describe` — round-trip back to the listing-style text DSL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.scenario.results import ScenarioRun
from repro.topology.events import DynamicEvent, EventAction, EventSchedule
from repro.topology.model import LinkProperties, Topology
from repro.units import format_rate, format_time

__all__ = ["CompiledScenario", "ScenarioRun"]


def _number(value: float) -> str:
    """Shortest decimal that round-trips; never scientific notation."""
    text = repr(float(value))
    if "e" in text or "E" in text:
        text = f"{value:.20f}".rstrip("0")
        if text.endswith("."):
            text += "0"
    return text


@dataclass(frozen=True)
class CompiledScenario:
    """A validated, frozen scenario ready to run, plan or describe."""

    name: str
    topology: Topology
    schedule: EventSchedule
    workloads: Tuple[object, ...]
    config: object                       # EngineConfig
    placement: Optional[Dict[str, str]] = None
    duration: Optional[float] = None
    # Declaration specs retained for describe(); front-ends fill these.
    services: Tuple[object, ...] = ()
    bridge_specs: Tuple[object, ...] = ()
    link_specs: Tuple[object, ...] = ()

    # ------------------------------------------------------------- engine
    def engine(self):
        """A fully wired :class:`~repro.core.engine.EmulationEngine`."""
        from repro.core.engine import EmulationEngine
        return EmulationEngine(self.topology, self.schedule,
                               config=self.config, placement=self.placement)

    def start(self):
        """An engine with every workload installed, the run still deferred.

        The hook point for callers that need to attach dashboards, loggers
        or extra simulator events before time advances; :meth:`run` on the
        default backend is ``start()`` + ``engine.run()`` + collection.
        """
        engine = self.engine()
        for workload in self.workloads:
            workload.install(engine)
        return engine

    def run(self, until: Optional[float] = None, *,
            backend: Union[str, "object"] = "kollaps",
            **backend_options) -> ScenarioRun:
        """Execute this scenario on a backend and collect every result.

        ``backend`` is a registry name (``"kollaps"``, ``"baremetal"``,
        ``"mininet"``, ``"maxinet"``, ``"trickle"``) or a ready
        :class:`~repro.scenario.backends.ExecutionBackend` instance;
        ``backend_options`` are forwarded to the registry factory (e.g.
        ``workers=8`` for maxinet).  Scenario features the chosen backend
        cannot execute raise one aggregated
        :class:`~repro.scenario.backends.BackendCompatibilityError`
        before anything runs.
        """
        from repro.scenario.backends import execute, resolve_backend
        return execute(self, resolve_backend(backend, **backend_options),
                       until)

    def validate_backend(self, backend: Union[str, "object"] = "kollaps",
                         **backend_options) -> List[str]:
        """Every reason ``backend`` cannot run this scenario (empty = ok).

        ``validate`` is optional on duck-typed backends — the required
        lifecycle is prepare/start_workloads/advance/collect/teardown —
        so one without it reports no problems here and is expected to
        raise from ``prepare`` instead.
        """
        from repro.scenario.backends import resolve_backend
        resolved = resolve_backend(backend, **backend_options)
        validate = getattr(resolved, "validate", None)
        return list(validate(self)) if callable(validate) else []

    def default_duration(self) -> float:
        """Explicit ``deploy(duration=...)``, else long enough for events
        and timed workloads, with a 30 s floor."""
        if self.duration is not None:
            return self.duration
        horizon = max([30.0, self.schedule.horizon() + 1.0]
                      + [workload.horizon() for workload in self.workloads])
        return horizon

    # --------------------------------------------------------------- plan
    def plan(self, *, orchestrator: str = "swarm",
             machines: Optional[Sequence[str]] = None,
             strategy: str = "spread"):
        """The Deployment Generator's document for this scenario (§4)."""
        from repro.orchestration import DeploymentGenerator
        generator = DeploymentGenerator(self.topology)
        if machines is None:
            machines = [f"host-{index}"
                        for index in range(self.config.machines)]
        if orchestrator == "swarm":
            return generator.swarm_plan(list(machines), strategy)
        if orchestrator == "kubernetes":
            return generator.kubernetes_plan(list(machines), strategy)
        raise ValueError(f"unknown orchestrator {orchestrator!r}")

    # ---------------------------------------------------------- analysis
    def collapsed(self):
        """The collapsed end-to-end topology (§3's core computation)."""
        from repro.core.collapse import collapse
        return collapse(self.topology)

    def path_table(self) -> str:
        """Canonical, deterministic table of collapsed end-to-end paths.

        Byte-identical for equal topologies however they were built —
        the parity contract between the fluent builder and the text DSL.
        """
        lines = []
        collapsed = self.collapsed()
        for path in sorted(collapsed.paths(),
                           key=lambda p: (p.source, p.destination)):
            properties = path.properties
            line = (f"{path.source} -> {path.destination}: "
                    f"{format_rate(properties.bandwidth)}, "
                    f"{format_time(properties.latency)}")
            if properties.loss:
                line += f", loss {properties.loss:.2%}"
            lines.append(line)
        return "\n".join(lines)

    def compile_script(self, text: str) -> EventSchedule:
        """Compile a THUNDERSTORM script against this scenario's topology."""
        from repro.topology.thunderstorm import compile_scenario
        return compile_scenario(text, self.topology)

    # ------------------------------------------------------------ describe
    def describe(self) -> str:
        """Round-trip to the listing-style text DSL (Listings 1 and 2).

        ``parse_experiment_text(compiled.describe())`` reconstructs an
        equivalent topology and schedule.
        """
        lines: List[str] = ["experiment:"]
        lines.append("  services:")
        for spec in self.services:
            lines.append(f"    name: {spec.name}")
            lines.append(f"    image: \"{spec.image}\"")
            if spec.replicas != 1:
                lines.append(f"    replicas: {spec.replicas}")
            if spec.command:
                lines.append(f"    command: \"{spec.command}\"")
        if self.bridge_specs:
            lines.append("  bridges:")
            for spec in self.bridge_specs:
                lines.append(f"    name: {spec.name}")
        if self.link_specs:
            lines.append("  links:")
            for spec in self.link_specs:
                lines.extend(self._describe_link(spec))
        if len(self.schedule):
            lines.append("dynamic:")
            for event in self.schedule:
                lines.extend(_describe_event(event))
        return "\n".join(lines) + "\n"

    @staticmethod
    def _describe_link(spec) -> List[str]:
        lines = [f"    orig: {spec.source}", f"    dest: {spec.destination}"]
        lines.append(f"    latency: {_number(spec.latency)}s")
        if spec.up != float("inf"):
            lines.append(f"    up: {_number(spec.up)}bps")
        down = spec.up if spec.down is None else spec.down
        if spec.bidirectional and down != float("inf"):
            lines.append(f"    down: {_number(down)}bps")
        if spec.jitter:
            lines.append(f"    jitter: {_number(spec.jitter)}s")
        if spec.loss:
            lines.append(f"    loss: {_number(spec.loss)}")
        if spec.jitter_distribution != "normal":
            lines.append(
                f"    jitter_distribution: {spec.jitter_distribution}")
        if not spec.bidirectional:
            lines.append("    bidirectional: false")
        if spec.network != "default":
            lines.append(f"    network: {spec.network}")
        return lines


def _describe_event(event: DynamicEvent) -> List[str]:
    """One dynamic stanza; the terminating ``time:`` key closes it."""
    lines: List[str] = []
    if event.action is EventAction.JOIN_NODE:
        lines += ["  action: join", f"  name: {event.name}"]
    elif event.action is EventAction.LEAVE_NODE:
        lines += ["  action: leave", f"  name: {event.name}"]
    elif event.action is EventAction.LEAVE_LINK:
        lines += ["  action: leave", f"  orig: {event.origin}",
                  f"  dest: {event.destination}"]
        if not event.bidirectional:
            lines.append("  bidirectional: false")
    elif event.action is EventAction.JOIN_LINK:
        lines += ["  action: join", f"  orig: {event.origin}",
                  f"  dest: {event.destination}"]
        lines += _property_lines(event.properties)
        if not event.bidirectional:
            lines.append("  bidirectional: false")
    elif event.action is EventAction.SET_LINK:
        lines += [f"  orig: {event.origin}", f"  dest: {event.destination}"]
        changes = dict(event.changes)
        if event.properties is not None:
            # Full-property sets become per-field changes in the text form.
            changes = {"latency": event.properties.latency,
                       "jitter": event.properties.jitter,
                       "loss": event.properties.loss,
                       "bandwidth": event.properties.bandwidth}
        if "latency" in changes:
            lines.append(f"  latency: {_number(changes['latency'])}s")
        if "jitter" in changes:
            lines.append(f"  jitter: {_number(changes['jitter'])}s")
        if "loss" in changes:
            lines.append(f"  loss: {_number(changes['loss'])}")
        if "bandwidth" in changes:
            lines.append("  up: unlimited" if changes["bandwidth"]
                         == float("inf")
                         else f"  up: {_number(changes['bandwidth'])}bps")
        if not event.bidirectional:
            lines.append("  bidirectional: false")
    else:  # pragma: no cover - enum is exhaustive
        raise ValueError(f"unhandled action {event.action}")
    lines.append(f"  time: {_number(event.time)}s")
    return lines


def _property_lines(properties: Optional[LinkProperties]) -> List[str]:
    if properties is None:
        return []
    lines = [f"  latency: {_number(properties.latency)}s"]
    if properties.bandwidth != float("inf"):
        lines.append(f"  up: {_number(properties.bandwidth)}bps")
        lines.append(f"  down: {_number(properties.bandwidth)}bps")
    if properties.jitter:
        lines.append(f"  jitter: {_number(properties.jitter)}s")
    if properties.loss:
        lines.append(f"  loss: {_number(properties.loss)}")
    return lines
