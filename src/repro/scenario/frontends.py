"""Front-ends that *produce* :class:`~repro.scenario.builder.Scenario`.

Every historical entry point into the toolchain — the dict form, the
paper's listing-style text language (Listings 1 and 2), Modelnet-like XML
and already-built :class:`~repro.topology.model.Topology` objects — is
re-implemented here as a producer of builders, so all validation and
compilation flows through the single :meth:`Scenario.compile` choke point.
The legacy ``repro.topology.parser`` functions are thin shims over these.
"""

from __future__ import annotations

import importlib.util
import xml.etree.ElementTree as ElementTree
from typing import Dict, List, Optional, Union

from repro.scenario.builder import Scenario
from repro.topology.events import DynamicEvent, EventAction, EventSchedule
from repro.topology.model import Topology, TopologyError
from repro.units import parse_rate, parse_time

__all__ = [
    "scenario_from_dict",
    "scenario_from_text",
    "scenario_from_xml",
    "scenario_from_file",
    "scenario_from_topology",
]


def _as_bool(value: Union[bool, str, int, None], default: bool = True) -> bool:
    """Booleans from dict *and* text forms (``"false"`` must not be truthy)."""
    if value is None:
        return default
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in ("false", "no", "off", "0"):
            return False
        if lowered in ("true", "yes", "on", "1"):
            return True
        raise TopologyError(f"not a boolean: {value!r}")
    return bool(value)


def _require(spec: Dict, key: str, kind: str) -> str:
    try:
        return spec[key]
    except KeyError:
        raise TopologyError(f"{kind} stanza missing {key!r}: {spec}") from None


def _rate_value(value) -> float:
    """A capacity; ``"unlimited"`` (describe()'s spelling of inf) allowed."""
    if isinstance(value, str) and value.strip().lower() in ("unlimited",
                                                            "inf"):
        return float("inf")
    return parse_rate(value)


def _capacity(spec: Dict, direction: str) -> float:
    """The ``up``/``down`` capacity with ``bandwidth`` as symmetric fallback."""
    value = spec.get(direction, spec.get("bandwidth"))
    return _rate_value(value) if value is not None else float("inf")


# --------------------------------------------------------------------------
# Dict form — the canonical programmatic input.
# --------------------------------------------------------------------------
def scenario_from_dict(description: Dict) -> Scenario:
    """Builder from the dict form (see :func:`repro.topology.parse_experiment`).

    Link ``latency``/``jitter`` default to milliseconds and bandwidths
    accept ``"10Mbps"``-style strings, exactly as the description language
    specifies.
    """
    body = description.get("experiment", description)
    builder = Scenario.build(body.get("name", "experiment"))

    for spec in body.get("services", []):
        builder.service(_require(spec, "name", "service"),
                        image=spec.get("image", "scratch"),
                        replicas=int(spec.get("replicas", 1)),
                        command=spec.get("command"),
                        tags=dict(spec.get("tags", {})))
    for spec in body.get("bridges", []):
        builder.bridge(_require(spec, "name", "bridge"))
    for spec in body.get("links", []):
        bidirectional = _as_bool(spec.get("bidirectional"))
        builder.link(
            _require(spec, "orig", "link"), _require(spec, "dest", "link"),
            latency=parse_time(spec.get("latency", 0.0), default_unit="ms"),
            up=_capacity(spec, "up"),
            down=_capacity(spec, "down") if bidirectional else None,
            jitter=parse_time(spec.get("jitter", 0.0), default_unit="ms"),
            loss=float(spec.get("loss", 0.0)),
            jitter_distribution=spec.get("jitter_distribution", "normal"),
            bidirectional=bidirectional,
            network=spec.get("network", "default"))
    for spec in description.get("dynamic", []):
        builder.event(_event_from_spec(spec))
    return builder


def _event_from_spec(spec: Dict) -> DynamicEvent:
    """One dynamic stanza (Listing 2 style) as a DynamicEvent."""
    time = parse_time(_require(spec, "time", "dynamic event"))
    action_name = spec.get("action")
    if action_name in ("join", "leave") and "name" in spec:
        action = (EventAction.JOIN_NODE if action_name == "join"
                  else EventAction.LEAVE_NODE)
        return DynamicEvent(time=time, action=action, name=spec["name"])

    origin = spec.get("orig")
    destination = spec.get("dest")
    if origin is None or destination is None:
        raise TopologyError(f"link event needs orig and dest: {spec}")
    bidirectional = _as_bool(spec.get("bidirectional"))

    if action_name == "leave":
        return DynamicEvent(time=time, action=EventAction.LEAVE_LINK,
                            origin=origin, destination=destination,
                            bidirectional=bidirectional)
    if action_name == "join":
        from repro.topology.model import LinkProperties
        properties = LinkProperties(
            latency=parse_time(spec.get("latency", 0.0), default_unit="ms"),
            bandwidth=_capacity(spec, "up"),
            jitter=parse_time(spec.get("jitter", 0.0), default_unit="ms"),
            loss=float(spec.get("loss", 0.0)),
            jitter_distribution=spec.get("jitter_distribution", "normal"))
        return DynamicEvent(time=time, action=EventAction.JOIN_LINK,
                            origin=origin, destination=destination,
                            properties=properties,
                            bidirectional=bidirectional)

    # No action keyword: a property change listing only the fields to alter.
    changes: Dict[str, float] = {}
    if "latency" in spec:
        changes["latency"] = parse_time(spec["latency"], default_unit="ms")
    if "jitter" in spec:
        changes["jitter"] = parse_time(spec["jitter"], default_unit="ms")
    if "loss" in spec:
        changes["loss"] = float(spec["loss"])
    if "up" in spec or "bandwidth" in spec:
        changes["bandwidth"] = _rate_value(spec.get("up",
                                                    spec.get("bandwidth")))
    if not changes:
        raise TopologyError(f"dynamic event changes nothing: {spec}")
    return DynamicEvent(time=time, action=EventAction.SET_LINK,
                        origin=origin, destination=destination,
                        changes=changes, bidirectional=bidirectional)


# --------------------------------------------------------------------------
# Listing-style text — the paper's lean YAML-like syntax.
# --------------------------------------------------------------------------
def scenario_from_text(text: str) -> Scenario:
    """Builder from the paper's listing syntax (Listings 1 and 2).

    The syntax is indentation-free within stanzas: a new stanza starts at
    each ``name:`` (services/bridges) or ``orig:`` (links) key, and a
    ``dynamic`` stanza ends at its ``time:`` key, under the current section
    header (``services:``, ``bridges:``, ``links:``, ``dynamic:``).
    """
    sections: Dict[str, List[Dict]] = {
        "services": [], "bridges": [], "links": [], "dynamic": []}
    section: Optional[str] = None
    stanza: Optional[Dict] = None
    stanza_opener = {"services": ("name",), "bridges": ("name",),
                     "links": ("orig",)}

    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if line.rstrip(":") in ("experiment",):
            continue
        key, _, value = line.partition(":")
        key = key.strip()
        value = value.strip().strip('"').strip("'")
        if not value and key in sections:
            section = key
            stanza = None
            continue
        if section is None:
            raise TopologyError(f"content outside any section: {raw_line!r}")
        if section == "dynamic":
            # In Listing 2 every event stanza ends with its ``time:`` key,
            # which is the only unambiguous boundary in the flat syntax.
            if stanza is None:
                stanza = {}
                sections[section].append(stanza)
            stanza[key] = value
            if key == "time":
                stanza = None
            continue
        opens_new = key in stanza_opener[section] and (
            stanza is None or key in stanza)
        if stanza is None or opens_new:
            stanza = {}
            sections[section].append(stanza)
        stanza[key] = value

    return scenario_from_dict({"experiment": {
        "services": sections["services"],
        "bridges": sections["bridges"],
        "links": sections["links"],
    }, "dynamic": sections["dynamic"]})


# --------------------------------------------------------------------------
# Modelnet-like XML — for porting existing topology descriptions.
# --------------------------------------------------------------------------
def scenario_from_xml(text: str) -> Scenario:
    """Builder from a Modelnet-style XML topology.

    ``role="virtnode"`` maps to services, everything else to bridges;
    latency/jitter default to milliseconds as in Modelnet files.
    """
    try:
        root = ElementTree.fromstring(text)
    except ElementTree.ParseError as exc:
        raise TopologyError(f"malformed XML topology: {exc}") from exc

    builder = Scenario.build(root.get("name", "modelnet"))
    for vertex in root.iter("vertex"):
        name = vertex.get("name")
        if name is None:
            raise TopologyError("vertex without a name")
        if vertex.get("role", "gateway") == "virtnode":
            builder.service(name, image=vertex.get("image", "scratch"),
                            replicas=int(vertex.get("replicas", "1")))
        else:
            builder.bridge(name)

    for edge in root.iter("edge"):
        bandwidth = edge.get("bw") or edge.get("bandwidth")
        bidirectional = _as_bool(edge.get("bidirectional"))
        builder.link(
            edge.get("src"), edge.get("dst"),
            latency=parse_time(edge.get("latency", "0"), default_unit="ms"),
            up=parse_rate(bandwidth) if bandwidth is not None
            else float("inf"),
            down=(parse_rate(bandwidth) if bandwidth is not None
                  else float("inf")) if bidirectional else None,
            jitter=parse_time(edge.get("jitter", "0"), default_unit="ms"),
            loss=float(edge.get("loss", "0")),
            bidirectional=bidirectional)
    return builder


# --------------------------------------------------------------------------
# Files — suffix dispatch, including examples exposing a SCENARIO.
# --------------------------------------------------------------------------
def scenario_from_file(path: str) -> Scenario:
    """Builder from a description file.

    ``.xml``/``.modelnet`` parse as Modelnet XML, ``.scn`` as the
    schema-validated declarative document
    (:func:`repro.scenario.dsl.load_scn`), ``.py`` files must expose a
    module-level ``SCENARIO`` (a :class:`Scenario` or a zero-argument
    callable returning one — how the repository's examples stay
    validatable), and anything else parses as listing-style text.
    """
    if path.endswith(".py"):
        return _scenario_from_python(path)
    if path.endswith(".scn"):
        from repro.scenario.dsl import load_scn
        return load_scn(path)
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    if path.endswith((".xml", ".modelnet")):
        return scenario_from_xml(text)
    return scenario_from_text(text)


def _scenario_from_python(path: str) -> Scenario:
    spec = importlib.util.spec_from_file_location("_scenario_module", path)
    if spec is None or spec.loader is None:
        raise TopologyError(f"cannot import scenario module {path!r}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    candidate = getattr(module, "SCENARIO", None)
    if candidate is None:
        raise TopologyError(
            f"{path!r} defines no SCENARIO (a Scenario or a callable)")
    if callable(candidate) and not isinstance(candidate, Scenario):
        candidate = candidate()
    if not isinstance(candidate, Scenario):
        raise TopologyError(
            f"{path!r}: SCENARIO is {type(candidate).__name__}, "
            "expected repro.scenario.Scenario")
    return candidate


# --------------------------------------------------------------------------
# Adoption — wrap an already-built Topology in a builder.
# --------------------------------------------------------------------------
def scenario_from_topology(topology: Topology,
                           schedule: Optional[EventSchedule] = None
                           ) -> Scenario:
    """Builder re-declaring an existing topology spec-by-spec.

    Mirrored link pairs whose properties differ at most in bandwidth fold
    into one bidirectional declaration (``up``/``down``); anything else is
    kept as unidirectional declarations, so arbitrary asymmetric
    topologies survive the round trip exactly.
    """
    builder = Scenario.build(topology.name)
    for service in topology.services.values():
        builder.service(service.name, image=service.image,
                        replicas=service.replicas, command=service.command,
                        tags=dict(service.tags))
    for bridge in topology.bridges.values():
        builder.bridge(bridge.name)

    handled: set = set()
    for link in topology.links():
        if link.key in handled:
            continue
        handled.add(link.key)
        forward = link.properties
        reverse = None
        try:
            reverse = topology.get_link(link.destination, link.source)
        except TopologyError:
            pass
        if reverse is not None and reverse.key not in handled and \
                _mergeable(forward, reverse.properties):
            handled.add(reverse.key)
            builder.link(link.source, link.destination,
                         latency=forward.latency, up=forward.bandwidth,
                         down=reverse.properties.bandwidth,
                         jitter=forward.jitter, loss=forward.loss,
                         jitter_distribution=forward.jitter_distribution,
                         bidirectional=True, network=link.network)
        else:
            builder.link(link.source, link.destination,
                         latency=forward.latency, up=forward.bandwidth,
                         jitter=forward.jitter, loss=forward.loss,
                         jitter_distribution=forward.jitter_distribution,
                         bidirectional=False, network=link.network)
    for event in (schedule or []):
        builder.event(event)
    return builder


def _mergeable(forward, backward) -> bool:
    """Reverse properties representable as a ``down`` bandwidth override?"""
    return (forward.latency == backward.latency
            and forward.jitter == backward.jitter
            and forward.loss == backward.loss
            and forward.jitter_distribution == backward.jitter_distribution)
