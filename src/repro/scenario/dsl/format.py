"""`.scn` — the canonical on-disk scenario format, with a hard
round-trip guarantee.

``dump_scn`` serializes a compiled scenario (or a builder) into a
versioned JSON document; ``load_scn`` turns such a document back into a
:class:`~repro.scenario.builder.Scenario`.  The contract, enforced by
``tests/test_scenario_dsl.py`` over every example and thousands of
fuzzed scenarios:

    compile → dump → reload → recompile
    ⇒ byte-identical ``describe()`` and ``path_table()``

which makes the ``.scn`` file a faithful, reviewable artifact of the
experiment — the choke point every front-end (text, dict, XML, topogen,
THUNDERSTORM) exports into.

Design notes:

* Dumps are canonical: SI base units only, defaults omitted, one stable
  key order, ``float('inf')`` spelled ``"unlimited"`` (JSON has no
  Infinity).  Loads are liberal: unit strings (``"10ms"``, ``"100Mbps"``,
  ``"2%"``) are accepted everywhere a number is.
* THUNDERSTORM scripts may appear in a hand-written document (they lower
  into events at compile time); dumps always emit the lowered events, so
  a dumped file never depends on the script compiler.
* :class:`~repro.scenario.workloads.CustomWorkload` carries callables and
  is therefore not serializable; dumping one is a loud :class:`ScnError`.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Union

from repro.scenario.builder import LinkSpec, Scenario, ServiceSpec
from repro.scenario.dsl.schema import (
    SCN_VERSION,
    Diagnostic,
    coerce_loss,
    coerce_rate,
    coerce_time,
    validate_document,
)
from repro.scenario.workloads import (
    CurlSwarmWorkload,
    FlowWorkload,
    HttpLoadWorkload,
    IperfWorkload,
    PingWorkload,
)
from repro.topology.events import DynamicEvent, EventAction
from repro.topology.model import LinkProperties, TopologyError

__all__ = ["ScnError", "scn_document", "dumps_scn", "dump_scn",
           "scenario_from_scn", "loads_scn", "load_scn"]

_UNLIMITED = "unlimited"


class ScnError(TopologyError):
    """A `.scn` document failed to parse, validate or serialize.

    ``diagnostics`` carries every individual finding when the failure
    came from schema validation.
    """

    def __init__(self, message: str,
                 diagnostics: Optional[List[Diagnostic]] = None) -> None:
        self.diagnostics = list(diagnostics or [])
        if self.diagnostics:
            message += "\n" + "\n".join(str(item)
                                        for item in self.diagnostics)
        super().__init__(message)


# --------------------------------------------------------------------------
# Dumping.
# --------------------------------------------------------------------------
def _rate_out(value: float) -> Union[float, str]:
    return _UNLIMITED if value == float("inf") else value


def _service_out(spec: ServiceSpec) -> Dict:
    out: Dict = {"name": spec.name}
    if spec.image != "scratch":
        out["image"] = spec.image
    if spec.replicas != 1:
        out["replicas"] = spec.replicas
    if spec.command is not None:
        out["command"] = spec.command
    if spec.tags:
        out["tags"] = dict(spec.tags)
    return out


def _link_out(spec: LinkSpec) -> Dict:
    out: Dict = {"orig": spec.source, "dest": spec.destination}
    if spec.latency:
        out["latency"] = spec.latency
    if spec.up != float("inf"):
        out["up"] = spec.up
    if spec.down is not None:
        out["down"] = spec.down
    if spec.jitter:
        out["jitter"] = spec.jitter
    if spec.loss:
        out["loss"] = spec.loss
    if spec.jitter_distribution != "normal":
        out["jitter_distribution"] = spec.jitter_distribution
    if not spec.bidirectional:
        out["bidirectional"] = False
    if spec.network != "default":
        out["network"] = spec.network
    return out


def _properties_out(properties: LinkProperties) -> Dict:
    out: Dict = {}
    if properties.latency:
        out["latency"] = properties.latency
    if properties.bandwidth != float("inf"):
        out["bandwidth"] = properties.bandwidth
    if properties.jitter:
        out["jitter"] = properties.jitter
    if properties.loss:
        out["loss"] = properties.loss
    if properties.jitter_distribution != "normal":
        out["jitter_distribution"] = properties.jitter_distribution
    return out


def _event_out(event: DynamicEvent) -> Dict:
    out: Dict = {"time": event.time, "action": event.action.value}
    if event.action in (EventAction.JOIN_NODE, EventAction.LEAVE_NODE):
        out["name"] = event.name
        return out
    out["orig"] = event.origin
    out["dest"] = event.destination
    if event.action is EventAction.SET_LINK and event.changes:
        out["changes"] = {field: _rate_out(value) if field == "bandwidth"
                          else value
                          for field, value in event.changes.items()}
    if event.properties is not None:
        out["properties"] = _properties_out(event.properties)
    if not event.bidirectional:
        out["bidirectional"] = False
    return out


def _workload_out(workload) -> Dict:
    if isinstance(workload, FlowWorkload):
        out: Dict = {"kind": "flow"}
        _key_out(out, workload)
        out.update(source=workload.source, destination=workload.destination)
        if workload.demand != float("inf"):
            out["demand"] = workload.demand
        if workload.protocol != "tcp":
            out["protocol"] = workload.protocol
        if workload.congestion_control != "cubic":
            out["congestion_control"] = workload.congestion_control
        if workload.start:
            out["start"] = workload.start
        if workload.stop is not None:
            out["stop"] = workload.stop
        return out
    if isinstance(workload, IperfWorkload):
        out = {"kind": "iperf"}
        _key_out(out, workload)
        out.update(source=workload.source, destination=workload.destination)
        if workload.duration != 60.0:
            out["duration"] = workload.duration
        if workload.demand != float("inf"):
            out["demand"] = workload.demand
        if workload.protocol != "tcp":
            out["protocol"] = workload.protocol
        if workload.congestion_control != "cubic":
            out["congestion_control"] = workload.congestion_control
        if workload.warmup != 2.0:
            out["warmup"] = workload.warmup
        if workload.start:
            out["start"] = workload.start
        return out
    if isinstance(workload, PingWorkload):
        out = {"kind": "ping"}
        _key_out(out, workload)
        out.update(source=workload.source, destination=workload.destination)
        if workload.count != 100:
            out["count"] = workload.count
        if workload.interval != 0.010:
            out["interval"] = workload.interval
        if workload.start:
            out["start"] = workload.start
        return out
    if isinstance(workload, HttpLoadWorkload):
        out = {"kind": "http"}
        _key_out(out, workload)
        out.update(source=workload.source, server=workload.server)
        if workload.connections != 100:
            out["connections"] = workload.connections
        if workload.start:
            out["start"] = workload.start
        if workload.stop is not None:
            out["stop"] = workload.stop
        return out
    if isinstance(workload, CurlSwarmWorkload):
        out = {"kind": "curl"}
        _key_out(out, workload)
        out.update(sources=list(workload.sources), server=workload.server)
        return out
    raise ScnError(
        f"workload {getattr(workload, 'key', workload)!r} of type "
        f"{type(workload).__name__} is not .scn-serializable (custom "
        f"workloads carry Python callables; keep those scenarios in .py)")


def _key_out(out: Dict, workload) -> None:
    if not isinstance(workload.key, str):
        raise ScnError(f"workload key {workload.key!r} is not a string; "
                       f".scn files require string keys")
    out["key"] = workload.key


def _deploy_out(compiled) -> Dict:
    import dataclasses

    from repro.core.engine import EngineConfig
    out: Dict = {}
    defaults = EngineConfig()
    config = compiled.config
    if config.machines != defaults.machines:
        out["machines"] = config.machines
    if config.seed != defaults.seed:
        out["seed"] = config.seed
    if compiled.duration is not None:
        out["duration"] = compiled.duration
    if compiled.placement is not None:
        out["placement"] = dict(sorted(compiled.placement.items()))
    for field in sorted(dataclasses.fields(EngineConfig),
                        key=lambda item: item.name):
        if field.name in ("machines", "seed"):
            continue
        value = getattr(config, field.name)
        if value != getattr(defaults, field.name):
            out[field.name] = value
    return out


def scn_document(scenario) -> Dict:
    """The canonical ``.scn`` dict for a scenario (builder or compiled)."""
    compiled = scenario.compile() if isinstance(scenario, Scenario) \
        else scenario
    document: Dict = {"scn": SCN_VERSION, "name": compiled.name}
    if compiled.services:
        document["services"] = [_service_out(spec)
                                for spec in compiled.services]
    if compiled.bridge_specs:
        document["bridges"] = [spec.name for spec in compiled.bridge_specs]
    if compiled.link_specs:
        document["links"] = [_link_out(spec) for spec in compiled.link_specs]
    if len(compiled.schedule):
        document["events"] = [_event_out(event)
                              for event in compiled.schedule]
    if compiled.workloads:
        document["workloads"] = [_workload_out(workload)
                                 for workload in compiled.workloads]
    deploy = _deploy_out(compiled)
    if deploy:
        document["deploy"] = deploy
    return document


def dumps_scn(scenario) -> str:
    """Canonical ``.scn`` text for a scenario (builder or compiled)."""
    return json.dumps(scn_document(scenario), indent=2,
                      allow_nan=False) + "\n"


def dump_scn(scenario, path) -> None:
    """Write the canonical ``.scn`` file for a scenario."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps_scn(scenario))


# --------------------------------------------------------------------------
# Loading.
# --------------------------------------------------------------------------
def scenario_from_scn(document: Dict, *, validate: bool = True) -> Scenario:
    """A :class:`Scenario` builder from a ``.scn`` document dict.

    With ``validate`` (the default) the document is schema-checked first
    and every error is reported in one :class:`ScnError`.
    """
    if validate:
        errors = [item for item in validate_document(document)
                  if item.severity == "error"]
        if errors:
            raise ScnError(f"invalid .scn document "
                           f"({len(errors)} error(s))", errors)

    builder = Scenario.build(document.get("name", "experiment"))
    for spec in document.get("services", []):
        builder.service(spec["name"], image=spec.get("image", "scratch"),
                        replicas=spec.get("replicas", 1),
                        command=spec.get("command"),
                        tags=spec.get("tags"))
    for name in document.get("bridges", []):
        builder.bridge(name)
    for spec in document.get("links", []):
        capacity = spec.get("up", spec.get("bandwidth"))
        builder.link(
            spec["orig"], spec["dest"],
            latency=coerce_time(spec.get("latency", 0.0)),
            up=None if capacity is None else coerce_rate(capacity),
            down=(None if spec.get("down") is None
                  else coerce_rate(spec["down"])),
            jitter=coerce_time(spec.get("jitter", 0.0)),
            loss=coerce_loss(spec.get("loss", 0.0)),
            jitter_distribution=spec.get("jitter_distribution", "normal"),
            bidirectional=spec.get("bidirectional", True),
            network=spec.get("network", "default"))
    for spec in document.get("events", []):
        builder.event(_event_in(spec))
    for text in document.get("scripts", []):
        builder.script(text)
    for spec in document.get("workloads", []):
        builder.workload(_workload_in(spec))
    deploy = dict(document.get("deploy", {}))
    if deploy:
        duration = deploy.pop("duration", None)
        builder.deploy(
            machines=deploy.pop("machines", None),
            seed=deploy.pop("seed", None),
            placement=deploy.pop("placement", None),
            duration=None if duration is None else coerce_time(duration),
            **deploy)
    return builder


def _event_in(spec: Dict) -> DynamicEvent:
    action = EventAction(spec["action"])
    time = coerce_time(spec["time"])
    if action in (EventAction.JOIN_NODE, EventAction.LEAVE_NODE):
        return DynamicEvent(time=time, action=action, name=spec["name"])
    properties = None
    if "properties" in spec:
        raw = spec["properties"]
        properties = LinkProperties(
            latency=coerce_time(raw.get("latency", 0.0)),
            bandwidth=coerce_rate(raw.get("bandwidth", _UNLIMITED)),
            jitter=coerce_time(raw.get("jitter", 0.0)),
            loss=coerce_loss(raw.get("loss", 0.0)),
            jitter_distribution=raw.get("jitter_distribution", "normal"))
    changes = {}
    for field, value in spec.get("changes", {}).items():
        if field == "bandwidth":
            changes[field] = coerce_rate(value)
        elif field == "loss":
            changes[field] = coerce_loss(value)
        else:
            changes[field] = coerce_time(value)
    return DynamicEvent(time=time, action=action, origin=spec["orig"],
                        destination=spec["dest"], properties=properties,
                        changes=changes,
                        bidirectional=spec.get("bidirectional", True))


def _workload_in(spec: Dict):
    kind = spec["kind"]
    key = spec.get("key")
    if kind == "flow":
        return FlowWorkload(
            spec["source"], spec["destination"],
            demand=coerce_rate(spec.get("demand", _UNLIMITED)),
            protocol=spec.get("protocol", "tcp"),
            congestion_control=spec.get("congestion_control", "cubic"),
            start=coerce_time(spec.get("start", 0.0)),
            stop=(None if spec.get("stop") is None
                  else coerce_time(spec["stop"])),
            key=key)
    if kind == "iperf":
        return IperfWorkload(
            spec["source"], spec["destination"],
            duration=coerce_time(spec.get("duration", 60.0)),
            demand=coerce_rate(spec.get("demand", _UNLIMITED)),
            protocol=spec.get("protocol", "tcp"),
            congestion_control=spec.get("congestion_control", "cubic"),
            warmup=coerce_time(spec.get("warmup", 2.0)),
            start=coerce_time(spec.get("start", 0.0)), key=key)
    if kind == "ping":
        return PingWorkload(
            spec["source"], spec["destination"],
            count=spec.get("count", 100),
            interval=coerce_time(spec.get("interval", 0.010)),
            start=coerce_time(spec.get("start", 0.0)), key=key)
    if kind == "http":
        return HttpLoadWorkload(
            spec["source"], spec["server"],
            connections=spec.get("connections", 100),
            start=coerce_time(spec.get("start", 0.0)),
            stop=(None if spec.get("stop") is None
                  else coerce_time(spec["stop"])),
            key=key)
    if kind == "curl":
        return CurlSwarmWorkload(tuple(spec["sources"]), spec["server"],
                                 key=key)
    raise ScnError(f"unknown workload kind {kind!r}")


def loads_scn(text: str, *, validate: bool = True,
              source: str = "<string>") -> Scenario:
    """A :class:`Scenario` from ``.scn`` text (JSON, or YAML when the
    interpreter has a YAML parser available)."""
    document = _parse_scn_text(text, source)
    return scenario_from_scn(document, validate=validate)


def load_scn(path, *, validate: bool = True) -> Scenario:
    """A :class:`Scenario` from a ``.scn`` file on disk."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return loads_scn(text, validate=validate, source=str(path))


def _parse_scn_text(text: str, source: str) -> Dict:
    try:
        return json.loads(text)
    except json.JSONDecodeError as json_error:
        try:
            import yaml  # optional; the container may not ship it
        except ImportError:
            raise ScnError(
                f"{source}:{json_error.lineno}:{json_error.colno}: "
                f"not valid JSON ({json_error.msg}) and no YAML parser "
                f"is installed") from json_error
        try:
            document = yaml.safe_load(text)
        except yaml.YAMLError as yaml_error:
            raise ScnError(f"{source}: neither valid JSON "
                           f"({json_error.msg}) nor valid YAML "
                           f"({yaml_error})") from yaml_error
        if not isinstance(document, dict):
            raise ScnError(f"{source}: a .scn document is a mapping, "
                           f"got {type(document).__name__}")
        return document
