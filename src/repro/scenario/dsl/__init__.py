"""The declarative scenario DSL subsystem.

Four parts built on the `.scn` canonical format (see docs/scenarios.md):

* :mod:`~repro.scenario.dsl.format` — versioned, schema-validated
  ``.scn`` files with a byte-identical round-trip guarantee;
* :mod:`~repro.scenario.dsl.lint` / :mod:`~repro.scenario.dsl.diff` —
  reviewable scenarios: pointer-attached diagnostics and semantic diffs
  over the compiled form;
* :mod:`~repro.scenario.dsl.fuzz` — a seeded property-based generator
  of valid random scenarios;
* :mod:`~repro.scenario.dsl.differential` — run one scenario across
  several backends and report metric/path-table divergences as
  structured findings.
"""

from repro.scenario.dsl.diff import DiffEntry, ScenarioDiff, diff_scenarios
from repro.scenario.dsl.differential import (
    DifferentialReport,
    Divergence,
    project_common,
    run_differential,
)
from repro.scenario.dsl.format import (
    ScnError,
    dump_scn,
    dumps_scn,
    load_scn,
    loads_scn,
    scenario_from_scn,
    scn_document,
)
from repro.scenario.dsl.fuzz import (
    FuzzBudget,
    fuzz_campaign,
    fuzz_corpus,
    fuzz_point,
    generate_scenario,
)
from repro.scenario.dsl.lint import lint_file, lint_scenario
from repro.scenario.dsl.schema import SCN_VERSION, Diagnostic, validate_document

__all__ = [
    "SCN_VERSION", "Diagnostic", "validate_document",
    "ScnError", "scn_document", "dumps_scn", "dump_scn",
    "loads_scn", "load_scn", "scenario_from_scn",
    "lint_file", "lint_scenario",
    "DiffEntry", "ScenarioDiff", "diff_scenarios",
    "FuzzBudget", "generate_scenario", "fuzz_corpus", "fuzz_point",
    "fuzz_campaign",
    "Divergence", "DifferentialReport", "project_common",
    "run_differential",
]
