"""The `.scn` document schema: versioned, validated, pointer-diagnosed.

A ``.scn`` file is the canonical on-disk form of a scenario — a plain
JSON/YAML-compatible dict covering everything a
:class:`~repro.scenario.builder.Scenario` declares: topology (services,
bridges, links), dynamic events, THUNDERSTORM scripts, workloads and
deployment settings.  This module owns the *shape* of that document:
:func:`validate_document` walks a candidate dict and returns every
problem as a :class:`Diagnostic` with a JSON-path-style pointer
(``links[2].up``), so ``repro scenario lint`` can report all of them at
once instead of failing on the first.

Value coercion (``"10ms"`` → seconds, ``"100Mbps"`` → bits/s,
``"unlimited"`` → inf) lives here too, shared by the validator and the
loader in :mod:`repro.scenario.dsl.format` so the two can never drift.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.units import UnitError, parse_rate, parse_time

__all__ = ["SCN_VERSION", "Diagnostic", "validate_document",
           "coerce_time", "coerce_rate", "coerce_loss"]

#: Version stamp every document carries; bumped on incompatible changes.
SCN_VERSION = 1

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding: severity, a pointer into the document, a message."""

    severity: str          # "error" | "warning"
    path: str              # JSON-path-ish pointer, e.g. "links[2].up"
    message: str

    def __str__(self) -> str:
        where = self.path or "document"
        return f"{self.severity}: {where}: {self.message}"


# --------------------------------------------------------------------------
# Value coercion (shared with the loader).
# --------------------------------------------------------------------------
def coerce_time(value) -> float:
    """Seconds from a number (already seconds) or a ``"10ms"`` string."""
    if isinstance(value, bool) or not isinstance(value, (int, float, str)):
        raise ValueError(f"expected seconds or a time string, got {value!r}")
    seconds = parse_time(value)
    if seconds < 0:
        raise ValueError(f"negative time: {value!r}")
    return seconds


def coerce_rate(value) -> float:
    """Bits/s from a number, a ``"100Mbps"`` string, or ``"unlimited"``."""
    if isinstance(value, str) and value.strip().lower() in ("unlimited",
                                                            "inf"):
        return float("inf")
    if isinstance(value, bool) or not isinstance(value, (int, float, str)):
        raise ValueError(f"expected bits/s or a rate string, got {value!r}")
    rate = parse_rate(value)
    if rate <= 0:
        raise ValueError(f"non-positive rate: {value!r}")
    return rate


def coerce_loss(value) -> float:
    """A loss probability from a number in [0, 1] or a ``"2%"`` string."""
    if isinstance(value, str):
        raw = value.strip()
        loss = float(raw[:-1]) / 100.0 if raw.endswith("%") else float(raw)
    elif isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"expected a loss probability, got {value!r}")
    else:
        loss = float(value)
    if not 0.0 <= loss <= 1.0:
        raise ValueError(f"loss outside [0, 1]: {value!r}")
    return loss


# --------------------------------------------------------------------------
# Field validators: each returns an error message or None.
# --------------------------------------------------------------------------
def _is_str(value) -> Optional[str]:
    return None if isinstance(value, str) else f"expected a string, got " \
        f"{type(value).__name__}"


def _is_bool(value) -> Optional[str]:
    return None if isinstance(value, bool) else f"expected a boolean, got " \
        f"{type(value).__name__}"


def _is_int(minimum: int) -> Callable:
    def check(value) -> Optional[str]:
        if isinstance(value, bool) or not isinstance(value, int):
            return f"expected an integer, got {type(value).__name__}"
        if value < minimum:
            return f"expected an integer >= {minimum}, got {value}"
        return None
    return check


def _is_number(value) -> Optional[str]:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return f"expected a number, got {type(value).__name__}"
    return None


def _coerces(coercer: Callable) -> Callable:
    def check(value) -> Optional[str]:
        try:
            coercer(value)
        except (ValueError, UnitError) as error:
            return str(error)
        return None
    return check


def _choice(*allowed: str) -> Callable:
    def check(value) -> Optional[str]:
        if value not in allowed:
            return f"expected one of {', '.join(allowed)}, got {value!r}"
        return None
    return check


def _is_str_map(value) -> Optional[str]:
    if not isinstance(value, dict):
        return f"expected a mapping, got {type(value).__name__}"
    bad = [key for key, item in value.items()
           if not isinstance(key, str) or not isinstance(item, str)]
    if bad:
        return "expected string keys and values"
    return None


def _is_str_list(value) -> Optional[str]:
    if not isinstance(value, list):
        return f"expected a list, got {type(value).__name__}"
    if any(not isinstance(item, str) for item in value):
        return "expected a list of strings"
    return None


_TIME = _coerces(coerce_time)
_RATE = _coerces(coerce_rate)
_LOSS = _coerces(coerce_loss)

# Per-section field tables: name -> validator; None marks required fields.
_SERVICE_FIELDS: Dict[str, Callable] = {
    "name": _is_str, "image": _is_str, "replicas": _is_int(1),
    "command": _is_str, "tags": _is_str_map,
}
_SERVICE_REQUIRED = ("name",)

_LINK_FIELDS: Dict[str, Callable] = {
    "orig": _is_str, "dest": _is_str, "latency": _TIME, "up": _RATE,
    "down": _RATE, "bandwidth": _RATE, "jitter": _TIME, "loss": _LOSS,
    "jitter_distribution": _choice("normal", "uniform"),
    "bidirectional": _is_bool, "network": _is_str,
}
_LINK_REQUIRED = ("orig", "dest")

_PROPERTY_FIELDS: Dict[str, Callable] = {
    "latency": _TIME, "bandwidth": _RATE, "jitter": _TIME, "loss": _LOSS,
    "jitter_distribution": _choice("normal", "uniform"),
}

_CHANGE_FIELDS: Dict[str, Callable] = {
    "latency": _TIME, "bandwidth": _RATE, "jitter": _TIME, "loss": _LOSS,
}

_EVENT_ACTIONS = ("set_link", "join_link", "leave_link", "join", "leave")

_WORKLOAD_FIELDS: Dict[str, Tuple[Dict[str, Callable], Tuple[str, ...]]] = {
    "flow": ({"source": _is_str, "destination": _is_str, "demand": _RATE,
              "protocol": _choice("tcp", "udp"),
              "congestion_control": _is_str, "start": _TIME, "stop": _TIME,
              "key": _is_str},
             ("source", "destination")),
    "iperf": ({"source": _is_str, "destination": _is_str,
               "duration": _TIME, "demand": _RATE,
               "protocol": _choice("tcp", "udp"),
               "congestion_control": _is_str, "warmup": _TIME,
               "start": _TIME, "key": _is_str},
              ("source", "destination")),
    "ping": ({"source": _is_str, "destination": _is_str,
              "count": _is_int(1), "interval": _TIME, "start": _TIME,
              "key": _is_str},
             ("source", "destination")),
    "http": ({"source": _is_str, "server": _is_str,
              "connections": _is_int(1), "start": _TIME, "stop": _TIME,
              "key": _is_str},
             ("source", "server")),
    "curl": ({"sources": _is_str_list, "server": _is_str, "key": _is_str},
             ("sources", "server")),
}

_TOP_LEVEL = ("scn", "name", "services", "bridges", "links", "events",
              "scripts", "workloads", "deploy")


def _deploy_fields() -> Dict[str, Callable]:
    """deploy section validators: machines/seed/duration/placement plus
    every :class:`~repro.core.engine.EngineConfig` tunable, typed."""
    from repro.core.engine import EngineConfig
    fields: Dict[str, Callable] = {
        "duration": _TIME, "placement": _is_str_map,
    }
    for field in dataclasses.fields(EngineConfig):
        if field.type == "bool" or isinstance(field.default, bool):
            fields[field.name] = _is_bool
        elif field.type == "int" or isinstance(field.default, int):
            fields[field.name] = _is_int(0)
        else:
            fields[field.name] = _is_number
    fields["machines"] = _is_int(1)
    return fields


# --------------------------------------------------------------------------
# The walker.
# --------------------------------------------------------------------------
def _check_fields(spec: Dict, fields: Dict[str, Callable],
                  required: Sequence[str], path: str,
                  out: List[Diagnostic]) -> None:
    for name in required:
        if name not in spec:
            out.append(Diagnostic(ERROR, path, f"missing required key "
                                               f"{name!r}"))
    for name, value in spec.items():
        if name == "kind":
            continue
        checker = fields.get(name)
        if checker is None:
            known = ", ".join(sorted(fields))
            out.append(Diagnostic(ERROR, f"{path}.{name}",
                                  f"unknown key (expected one of: {known})"))
            continue
        if value is None and name in ("command", "stop"):
            continue
        problem = checker(value)
        if problem:
            out.append(Diagnostic(ERROR, f"{path}.{name}", problem))


def _section_list(document: Dict, name: str,
                  out: List[Diagnostic]) -> List:
    value = document.get(name, [])
    if not isinstance(value, list):
        out.append(Diagnostic(ERROR, name, f"expected a list, got "
                                           f"{type(value).__name__}"))
        return []
    return value


def validate_document(document) -> List[Diagnostic]:
    """Every problem in a candidate ``.scn`` document, pointer-attached.

    Errors make the document unloadable; warnings (isolated nodes, events
    scheduled past the configured duration, ...) flag suspicious but
    valid scenarios.  An empty list means the document is clean.
    """
    out: List[Diagnostic] = []
    if not isinstance(document, dict):
        return [Diagnostic(ERROR, "", f"a .scn document is a mapping, got "
                                      f"{type(document).__name__}")]

    version = document.get("scn")
    if version is None:
        out.append(Diagnostic(ERROR, "scn",
                              f"missing version stamp (expected scn: "
                              f"{SCN_VERSION})"))
    elif version != SCN_VERSION:
        out.append(Diagnostic(ERROR, "scn",
                              f"unsupported version {version!r} (this "
                              f"toolchain reads scn: {SCN_VERSION})"))
    for key in document:
        if key not in _TOP_LEVEL:
            out.append(Diagnostic(ERROR, key,
                                  "unknown top-level key (expected one of: "
                                  + ", ".join(_TOP_LEVEL) + ")"))
    if "name" in document and _is_str(document["name"]):
        out.append(Diagnostic(ERROR, "name", "expected a string"))

    # ----------------------------------------------------------- topology
    services = _section_list(document, "services", out)
    service_names: List[str] = []
    containers: set = set()
    for index, spec in enumerate(services):
        path = f"services[{index}]"
        if not isinstance(spec, dict):
            out.append(Diagnostic(ERROR, path, "expected a mapping"))
            continue
        _check_fields(spec, _SERVICE_FIELDS, _SERVICE_REQUIRED, path, out)
        name = spec.get("name")
        if isinstance(name, str):
            service_names.append(name)
            replicas = spec.get("replicas", 1)
            containers.add(name)
            if isinstance(replicas, int) and not isinstance(replicas, bool) \
                    and replicas > 1:
                containers.update(f"{name}.{i}" for i in range(replicas))

    bridges = _section_list(document, "bridges", out)
    bridge_names: List[str] = []
    for index, name in enumerate(bridges):
        if not isinstance(name, str):
            out.append(Diagnostic(ERROR, f"bridges[{index}]",
                                  "expected a bridge name string"))
            continue
        bridge_names.append(name)

    declared = set(service_names) | set(bridge_names)
    linked: set = set()

    links = _section_list(document, "links", out)
    for index, spec in enumerate(links):
        path = f"links[{index}]"
        if not isinstance(spec, dict):
            out.append(Diagnostic(ERROR, path, "expected a mapping"))
            continue
        _check_fields(spec, _LINK_FIELDS, _LINK_REQUIRED, path, out)
        for end in ("orig", "dest"):
            node = spec.get(end)
            if isinstance(node, str):
                linked.add(node)
                if node not in declared:
                    out.append(Diagnostic(
                        ERROR, f"{path}.{end}",
                        f"undeclared node {node!r} (declared: "
                        + (", ".join(sorted(declared)) or "none") + ")"))

    # ------------------------------------------------------------- events
    events = _section_list(document, "events", out)
    joinable = set(declared)
    for spec in events:
        if isinstance(spec, dict) and spec.get("action") == "join" \
                and isinstance(spec.get("name"), str):
            joinable.add(spec["name"])
    for index, spec in enumerate(events):
        path = f"events[{index}]"
        if not isinstance(spec, dict):
            out.append(Diagnostic(ERROR, path, "expected a mapping"))
            continue
        _validate_event(spec, path, joinable, linked, out)

    scripts = _section_list(document, "scripts", out)
    for index, text in enumerate(scripts):
        if not isinstance(text, str):
            out.append(Diagnostic(ERROR, f"scripts[{index}]",
                                  "expected a THUNDERSTORM script string"))

    # ---------------------------------------------------------- workloads
    workloads = _section_list(document, "workloads", out)
    keys_seen: Dict[str, int] = {}
    for index, spec in enumerate(workloads):
        path = f"workloads[{index}]"
        if not isinstance(spec, dict):
            out.append(Diagnostic(ERROR, path, "expected a mapping"))
            continue
        kind = spec.get("kind")
        if kind not in _WORKLOAD_FIELDS:
            out.append(Diagnostic(
                ERROR, f"{path}.kind",
                f"unknown workload kind {kind!r} (expected one of: "
                + ", ".join(sorted(_WORKLOAD_FIELDS)) + ")"))
            continue
        fields, required = _WORKLOAD_FIELDS[kind]
        _check_fields(spec, fields, required, path, out)
        endpoints = [spec.get(end) for end in
                     ("source", "destination", "server")]
        endpoints += list(spec.get("sources", [])
                          if isinstance(spec.get("sources"), list) else [])
        for node in endpoints:
            if isinstance(node, str) and node not in containers \
                    and node not in declared:
                out.append(Diagnostic(
                    ERROR, path, f"workload endpoint {node!r} names no "
                                 "declared service or container"))
        key = spec.get("key")
        if isinstance(key, str):
            keys_seen[key] = keys_seen.get(key, 0) + 1
    for key, count in sorted(keys_seen.items()):
        if count > 1:
            out.append(Diagnostic(ERROR, "workloads",
                                  f"duplicate workload key {key!r} "
                                  f"({count} declarations)"))

    # ------------------------------------------------------------- deploy
    deploy = document.get("deploy", {})
    duration = None
    if not isinstance(deploy, dict):
        out.append(Diagnostic(ERROR, "deploy", "expected a mapping"))
    else:
        _check_fields(deploy, _deploy_fields(), (), "deploy", out)
        if "duration" in deploy and _TIME(deploy["duration"]) is None:
            try:
                duration = coerce_time(deploy["duration"])
            except (ValueError, UnitError):
                duration = None

    # ----------------------------------------------------------- warnings
    for name in sorted(declared):
        if name not in linked and name not in _event_touched(events):
            out.append(Diagnostic(WARNING, _declaration_path(
                name, service_names, bridge_names),
                f"node {name!r} is declared but never linked"))
    if duration is not None:
        for index, spec in enumerate(events):
            if not isinstance(spec, dict):
                continue
            try:
                time = coerce_time(spec.get("time", 0.0))
            except (ValueError, UnitError):
                continue
            if time > duration:
                out.append(Diagnostic(
                    WARNING, f"events[{index}].time",
                    f"event at t={time:g}s never fires within the "
                    f"configured duration of {duration:g}s"))
    return out


def _validate_event(spec: Dict, path: str, known: set, linked: set,
                    out: List[Diagnostic]) -> None:
    if "time" not in spec:
        out.append(Diagnostic(ERROR, path, "missing required key 'time'"))
    elif _TIME(spec["time"]):
        out.append(Diagnostic(ERROR, f"{path}.time", _TIME(spec["time"])))
    action = spec.get("action")
    if action not in _EVENT_ACTIONS:
        out.append(Diagnostic(
            ERROR, f"{path}.action",
            f"unknown action {action!r} (expected one of: "
            + ", ".join(_EVENT_ACTIONS) + ")"))
        return
    node_event = action in ("join", "leave")
    allowed = {"time": _TIME, "action": _choice(*_EVENT_ACTIONS)}
    if node_event:
        allowed["name"] = _is_str
        required = ("name",)
    else:
        allowed.update({"orig": _is_str, "dest": _is_str,
                        "bidirectional": _is_bool})
        required = ("orig", "dest")
        if action == "join_link":
            allowed["properties"] = lambda value: (
                None if isinstance(value, dict) else "expected a mapping")
        if action == "set_link":
            allowed["changes"] = lambda value: (
                None if isinstance(value, dict) else "expected a mapping")
            allowed["properties"] = allowed.get(
                "properties",
                lambda value: None if isinstance(value, dict)
                else "expected a mapping")
    _check_fields(spec, allowed, required, path, out)

    for field, table in (("properties", _PROPERTY_FIELDS),
                         ("changes", _CHANGE_FIELDS)):
        sub = spec.get(field)
        if isinstance(sub, dict):
            _check_fields(sub, table, (), f"{path}.{field}", out)
    if action == "set_link" and not spec.get("changes") \
            and not spec.get("properties"):
        out.append(Diagnostic(ERROR, path,
                              "set_link event changes nothing (give "
                              "'changes' or 'properties')"))
    for end in ("orig", "dest", "name"):
        node = spec.get(end)
        if isinstance(node, str) and node not in known:
            out.append(Diagnostic(
                ERROR, f"{path}.{end}",
                f"event references undeclared node {node!r}"))


def _event_touched(events: List) -> set:
    touched = set()
    for spec in events:
        if not isinstance(spec, dict):
            continue
        for end in ("orig", "dest", "name"):
            value = spec.get(end)
            if isinstance(value, str):
                touched.add(value)
    return touched


def _declaration_path(name: str, services: List[str],
                      bridges: List[str]) -> str:
    if name in services:
        return f"services[{services.index(name)}]"
    if name in bridges:
        return f"bridges[{bridges.index(name)}]"
    return "services"
