"""Scenario linting: aggregated, pointer-attached diagnostics.

``lint_file`` accepts any scenario front-end format — ``.scn``
documents, the listing-style text language, Modelnet XML, ``.py``
modules — and returns every problem as a
:class:`~repro.scenario.dsl.schema.Diagnostic`:

* ``.scn`` files are schema-validated first (every error, with a
  JSON-path pointer such as ``links[2].up``), then whole-program
  compiled;
* other formats are loaded and compiled, with
  :class:`~repro.topology.model.TopologyError` /
  :class:`~repro.topology.thunderstorm.ThunderstormError` /
  :class:`~repro.units.UnitError` surfaced as diagnostics instead of
  tracebacks;
* scenarios that compile are additionally checked for semantic warnings
  (isolated nodes, events scheduled past the configured duration) by
  round-tripping through the ``.scn`` schema — the same warning logic
  for every front-end.

``repro scenario lint`` prints these to stderr and exits 1 on any
error, 0 when only warnings (or nothing) were found.
"""

from __future__ import annotations

import json
from typing import List, Optional

from repro.scenario.dsl.format import ScnError, _parse_scn_text, \
    scenario_from_scn, scn_document
from repro.scenario.dsl.schema import ERROR, WARNING, Diagnostic, \
    validate_document
from repro.topology.model import TopologyError
from repro.units import UnitError

__all__ = ["lint_file", "lint_scenario"]


def lint_scenario(builder) -> List[Diagnostic]:
    """Diagnostics for an in-memory :class:`Scenario` builder."""
    try:
        compiled = builder.compile()
    except (TopologyError, UnitError) as error:
        return [Diagnostic(ERROR, "compile", str(error))]
    return _compiled_warnings(compiled)


def lint_file(path: str, *, script: Optional[str] = None) -> List[Diagnostic]:
    """Every problem in a scenario file, aggregated.

    ``script`` optionally names a THUNDERSTORM script to attach before
    compiling (mirroring ``repro validate --scenario``).
    """
    if str(path).endswith(".scn"):
        return _lint_scn(path, script)
    return _lint_front_end(path, script)


def _lint_scn(path: str, script: Optional[str]) -> List[Diagnostic]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        return [Diagnostic(ERROR, "", str(error))]
    try:
        document = _parse_scn_text(text, str(path))
    except ScnError as error:
        return [Diagnostic(ERROR, "", str(error))]

    diagnostics = validate_document(document)
    if any(item.severity == ERROR for item in diagnostics):
        return diagnostics

    builder = scenario_from_scn(document, validate=False)
    if script:
        problem = _attach_script(builder, script)
        if problem:
            return diagnostics + [problem]
    try:
        builder.compile()
    except (TopologyError, UnitError) as error:
        diagnostics.append(Diagnostic(ERROR, "compile", str(error)))
    return diagnostics


def _lint_front_end(path: str, script: Optional[str]) -> List[Diagnostic]:
    from repro.scenario.builder import Scenario
    from repro.topology.thunderstorm import ThunderstormError
    try:
        builder = Scenario.from_file(path)
    except (OSError, json.JSONDecodeError) as error:
        return [Diagnostic(ERROR, "", str(error))]
    except (TopologyError, ThunderstormError, UnitError) as error:
        return [Diagnostic(ERROR, "load", str(error))]
    except SyntaxError as error:
        return [Diagnostic(ERROR, f"line {error.lineno}", error.msg or
                           "syntax error")]
    if script:
        problem = _attach_script(builder, script)
        if problem:
            return [problem]
    try:
        compiled = builder.compile()
    except (TopologyError, ThunderstormError, UnitError) as error:
        return [Diagnostic(ERROR, "compile", str(error))]
    return _compiled_warnings(compiled)


def _attach_script(builder, script: str) -> Optional[Diagnostic]:
    try:
        with open(script, "r", encoding="utf-8") as handle:
            builder.script(handle.read())
    except OSError as error:
        return Diagnostic(ERROR, "", str(error))
    return None


def _compiled_warnings(compiled) -> List[Diagnostic]:
    """Semantic warnings for a compiled scenario, via the .scn schema.

    Dumping our own compiled form must always produce a schema-clean
    document — any *error* the validator reports here is an internal
    inconsistency and is surfaced loudly rather than swallowed.  Custom
    workloads cannot dump; those scenarios just skip the warning pass.
    """
    try:
        document = scn_document(compiled)
    except ScnError:
        return []
    out: List[Diagnostic] = []
    for item in validate_document(document):
        if item.severity == WARNING:
            out.append(item)
        else:
            out.append(Diagnostic(ERROR, item.path,
                                  f"internal: canonical dump failed "
                                  f"validation: {item.message}"))
    return out
