"""Seeded property-based scenario generation.

``generate_scenario(seed, index, budget)`` emits one *valid* random
scenario: a connected bridge tree with services attached, extra
redundant links, demand-limited flows, optional packet-plane probes and
dynamic events — sized by a :class:`FuzzBudget`.  Determinism is part of
the contract: the generator draws from ``random.Random`` keyed on the
``(seed, index)`` pair alone, so the same inputs produce byte-identical
``.scn`` dumps on any machine and any Python process (string seeding is
hash-randomization-independent).

Three consumers:

* ``repro scenario fuzz --seed S --count N`` — write/check a corpus;
* the round-trip property test, which holds over thousands of these;
* :func:`fuzz_campaign` — a :class:`~repro.campaign.Campaign` whose
  ``case`` axis indexes the corpus, so fuzz scenarios drive sweeps and
  the differential harness at campaign scale.

Generation invariants (what makes every output valid *and* portable):

* the bridge tree is connected by construction and every service hangs
  off a bridge, so every service pair has an end-to-end path;
* every link carries a finite bandwidth, so trickle always has a
  provisioned rate;
* flows are constant-bit-rate (UDP) and demand-limited to a fraction of
  the *minimum* link bandwidth divided by the flow count — even if every
  flow crossed the narrowest link at once there would be no contention,
  and CBR senders don't react to loss, which keeps analytic backends
  (trickle) and fluid backends (kollaps/baremetal) inside the
  differential harness's tolerance;
* down/up flaps only ever remove the redundant extra links, never the
  tree, so the topology stays connected through every event.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.scenario.builder import Scenario, link_down, link_up, set_link

__all__ = ["FuzzBudget", "generate_scenario", "fuzz_corpus", "fuzz_point",
           "fuzz_campaign"]

# Plausible "nice" values the generator draws from (SI base units).
_BANDWIDTHS = [1e6, 2e6, 5e6, 10e6, 20e6, 50e6, 100e6, 200e6, 500e6, 1e9]
_LATENCIES = [0.001, 0.002, 0.005, 0.010, 0.020, 0.050]
_JITTERS = [0.0, 0.0, 0.0005, 0.001]            # mostly none
_LOSSES = [0.0, 0.0, 0.0, 0.001, 0.01]          # mostly none
_IMAGES = ["scratch", "iperf", "nginx", "alpine"]


@dataclass(frozen=True)
class FuzzBudget:
    """Size knobs for one generated scenario; all ranges are inclusive."""

    bridges: Tuple[int, int] = (1, 3)
    services: Tuple[int, int] = (2, 5)
    extra_links: Tuple[int, int] = (0, 2)
    flows: Tuple[int, int] = (1, 3)
    probes: Tuple[int, int] = (0, 1)      # packet-plane workloads
    events: Tuple[int, int] = (0, 3)      # dynamic set_link / flap slots
    flap_probability: float = 0.3         # chance an event slot flaps
    demand_fraction: float = 0.6          # of min link bandwidth, total
    duration: Tuple[float, float] = (10.0, 40.0)

    @classmethod
    def scaled(cls, scale: str) -> "FuzzBudget":
        """A preset budget: ``small`` (default), ``medium`` or ``large``."""
        if scale == "small":
            return cls()
        if scale == "medium":
            return cls(bridges=(2, 6), services=(4, 10), extra_links=(0, 4),
                       flows=(1, 4), probes=(0, 2), events=(0, 6))
        if scale == "large":
            return cls(bridges=(4, 10), services=(8, 24), extra_links=(0, 8),
                       flows=(2, 6), probes=(0, 3), events=(0, 10))
        raise ValueError(f"unknown fuzz scale {scale!r} "
                         f"(expected small, medium or large)")


def _draw(rng: random.Random, bounds: Tuple[int, int]) -> int:
    return rng.randint(bounds[0], bounds[1])


def generate_scenario(seed: int, index: int = 0,
                      budget: FuzzBudget = FuzzBudget()) -> Scenario:
    """One deterministic random scenario builder for ``(seed, index)``."""
    rng = random.Random(f"scn-fuzz:{seed}:{index}")
    builder = Scenario.build(f"fuzz-{seed}-{index}")

    n_bridges = _draw(rng, budget.bridges)
    n_services = max(2, _draw(rng, budget.services))
    bridges = [f"s{i}" for i in range(1, n_bridges + 1)]
    services = [f"c{i}" for i in range(1, n_services + 1)]
    for name in services:
        builder.service(name, image=rng.choice(_IMAGES))
    builder.bridges(*bridges)

    def random_link(orig: str, dest: str) -> Tuple[str, str]:
        builder.link(orig, dest,
                     latency=rng.choice(_LATENCIES),
                     bandwidth=rng.choice(_BANDWIDTHS),
                     jitter=rng.choice(_JITTERS),
                     loss=rng.choice(_LOSSES))
        return (orig, dest)

    # A connected bridge tree, then every service attached to a bridge.
    tree_links: List[Tuple[str, str]] = []
    for position, bridge in enumerate(bridges[1:], start=1):
        tree_links.append(random_link(bridge,
                                      rng.choice(bridges[:position])))
    for name in services:
        tree_links.append(random_link(name, rng.choice(bridges)))

    # Redundant extra links between bridge pairs (flap candidates).
    extra_links: List[Tuple[str, str]] = []
    present = {frozenset(pair) for pair in tree_links}
    for _ in range(_draw(rng, budget.extra_links)):
        if len(bridges) < 2:
            break
        orig, dest = rng.sample(bridges, 2)
        if frozenset((orig, dest)) in present:
            continue
        present.add(frozenset((orig, dest)))
        extra_links.append(random_link(orig, dest))

    min_bandwidth = min(spec.up for spec in builder._links)
    duration = round(rng.uniform(*budget.duration), 1)

    # Demand-limited flows: even all sharing the narrowest link, the
    # total demand stays below budget.demand_fraction of its capacity.
    from repro.scenario.workloads import flow, ping
    n_flows = max(1, _draw(rng, budget.flows))
    demand = round(min_bandwidth * budget.demand_fraction / n_flows)
    for number in range(1, n_flows + 1):
        source, destination = rng.sample(services, 2)
        builder.workload(flow(source, destination, rate=float(demand),
                              protocol="udp", key=f"flow{number}"))
    # Probes are pings: their headline metric is path latency, which
    # every packet-plane backend derives from the same topology.  An
    # http_load probe's headline is *throughput under contention* with
    # the bulk flows, where kollaps and baremetal legitimately model
    # sharing differently — that belongs to directed differential
    # tests, not a corpus whose contract is cross-backend agreement.
    # The sample count is large because jittered hops draw per-packet
    # noise from each backend's own RNG: the means must converge.
    for number in range(1, _draw(rng, budget.probes) + 1):
        source, destination = rng.sample(services, 2)
        builder.workload(ping(source, destination,
                              count=rng.randint(80, 200),
                              interval=0.02, key=f"probe{number}"))

    _random_events(rng, builder, budget, duration,
                   tree_links + extra_links, set(extra_links))

    machines = rng.randint(1, 3)
    builder.deploy(machines=machines, seed=rng.randint(0, 9999),
                   duration=duration)
    return builder


def _random_events(rng: random.Random, builder: Scenario,
                   budget: FuzzBudget, duration: float,
                   links: List[Tuple[str, str]], flappable: set) -> None:
    """Dynamic churn: set_link changes anywhere, down/up flaps only on
    the redundant extra links so connectivity survives every event.
    Each event slot consumes a distinct link (no conflicting timelines
    on one link)."""
    slots = _draw(rng, budget.events)
    if not slots or duration <= 4.0:
        return
    candidates = list(links)
    rng.shuffle(candidates)
    specs = {(spec.source, spec.destination): spec
             for spec in builder._links}
    for _ in range(min(slots, len(candidates))):
        orig, dest = candidates.pop()
        spec = specs[(orig, dest)]
        start = round(rng.uniform(1.0, duration - 2.0), 1)
        if (orig, dest) in flappable and \
                rng.random() < budget.flap_probability:
            heal = round(rng.uniform(start + 0.5, duration - 1.0), 1)
            builder.at(start, link_down(orig, dest))
            builder.at(heal, link_up(orig, dest, latency=spec.latency,
                                     up=spec.up, jitter=spec.jitter,
                                     loss=spec.loss))
        else:
            field = rng.choice(["latency", "bandwidth"])
            if field == "latency":
                builder.at(start, set_link(
                    orig, dest, latency=rng.choice(_LATENCIES)))
            else:
                builder.at(start, set_link(
                    orig, dest, bandwidth=rng.choice(_BANDWIDTHS)))


def fuzz_corpus(seed: int, count: int,
                budget: FuzzBudget = FuzzBudget()) -> Iterator[Scenario]:
    """``count`` deterministic scenario builders for one seed."""
    for index in range(count):
        yield generate_scenario(seed, index, budget)


# --------------------------------------------------------------------------
# Campaign integration.
# --------------------------------------------------------------------------
def fuzz_point(*, case: int, fuzz_seed: int = 0, scale: str = "small",
               seed: int = 0) -> Scenario:
    """Campaign point factory: grid axis ``case`` indexes the corpus.

    Module-level (hence picklable) so ``Campaign.run(jobs=N)`` can ship
    it to worker processes; ``seed`` comes from the campaign's
    ``.seeds()`` axis and overrides the generator's random engine seed.
    """
    builder = generate_scenario(fuzz_seed, case, FuzzBudget.scaled(scale))
    return builder.deploy(seed=seed)


def fuzz_campaign(name: str = "fuzz", *, seed: int = 0, count: int = 20,
                  scale: str = "small", backends=("kollaps", "trickle"),
                  seeds=(0,)):
    """A ready :class:`~repro.campaign.Campaign` over a fuzz corpus.

    ``count`` scenarios × ``backends`` × ``seeds``; run it like any other
    campaign (``.run(jobs=N)`` or via ``repro campaign``) and compare
    per-backend aggregates."""
    from repro.campaign import Campaign
    return (Campaign(name)
            .scenario(fuzz_point)
            .grid(case=list(range(count)), fuzz_seed=[seed], scale=[scale])
            .seeds(list(seeds))
            .backends(*backends))
