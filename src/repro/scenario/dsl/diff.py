"""Semantic scenario diff: review changes to the compiled form, not text.

``diff_scenarios(a, b)`` compares two compiled scenarios at the level
that matters — services, bridges, directed links and their properties,
dynamic events, workloads, deployment settings — so two descriptions
that *compile* to the same experiment diff empty, however differently
they were written (fluent builder vs text listing vs ``.scn``), and a
real change shows up as the entity that changed, not a wall of textual
noise.

Each difference is a :class:`DiffEntry` (``+`` added in B, ``-``
removed in B, ``~`` changed); ``repro scenario diff A B`` prints them
and exits 0 when identical, 1 when different.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.scenario.dsl.format import ScnError, _deploy_out, _event_out, \
    _workload_out

__all__ = ["DiffEntry", "ScenarioDiff", "diff_scenarios"]


@dataclass(frozen=True)
class DiffEntry:
    """One semantic difference between two compiled scenarios."""

    op: str        # "+" added in B | "-" removed in B | "~" changed
    kind: str      # "service" | "bridge" | "link" | "event" | ...
    subject: str   # which entity, e.g. "c1" or "s1->s2"
    detail: str = ""

    def __str__(self) -> str:
        line = f"{self.op} {self.kind} {self.subject}"
        if self.detail:
            line += f": {self.detail}"
        return line


class ScenarioDiff:
    """All semantic differences, ordered by section."""

    def __init__(self, entries: List[DiffEntry]) -> None:
        self.entries = list(entries)

    def __bool__(self) -> bool:
        return bool(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def to_text(self) -> str:
        if not self.entries:
            return "scenarios are semantically identical\n"
        return "\n".join(str(entry) for entry in self.entries) + "\n"

    def to_dict(self) -> Dict:
        return {"identical": not self.entries,
                "differences": [{"op": entry.op, "kind": entry.kind,
                                 "subject": entry.subject,
                                 "detail": entry.detail}
                                for entry in self.entries]}


# --------------------------------------------------------------------------
# Canonical models per section.
# --------------------------------------------------------------------------
def _value(item) -> str:
    if item == float("inf"):
        return "unlimited"
    if isinstance(item, float):
        return f"{item:g}"
    return str(item)


def _services_model(compiled) -> Dict[str, Dict]:
    return {service.name: {"image": service.image,
                           "replicas": service.replicas,
                           "command": service.command,
                           "tags": dict(service.tags)}
            for service in compiled.topology.services.values()}


def _links_model(compiled) -> Dict[str, Dict]:
    model: Dict[str, Dict] = {}
    for link in compiled.topology.links():
        properties = link.properties
        model[f"{link.source}->{link.destination}"] = {
            "latency": properties.latency,
            "bandwidth": properties.bandwidth,
            "jitter": properties.jitter,
            "loss": properties.loss,
            "jitter_distribution": properties.jitter_distribution,
            "network": getattr(link, "network", "default"),
        }
    return model


def _events_model(compiled) -> List[str]:
    return [json.dumps(_event_out(event), sort_keys=True)
            for event in compiled.schedule]


def _workloads_model(compiled) -> Dict[str, Dict]:
    model: Dict[str, Dict] = {}
    for workload in compiled.workloads:
        try:
            model[str(workload.key)] = _workload_out(workload)
        except ScnError:
            # Custom workloads carry callables; compare by shape only.
            model[str(workload.key)] = {"kind": workload.kind,
                                        "key": str(workload.key),
                                        "type": type(workload).__name__}
    return model


def _mapping_diff(kind: str, before: Dict[str, Dict],
                  after: Dict[str, Dict]) -> List[DiffEntry]:
    entries: List[DiffEntry] = []
    for name in sorted(before.keys() - after.keys()):
        entries.append(DiffEntry("-", kind, name, _summary(before[name])))
    for name in sorted(after.keys() - before.keys()):
        entries.append(DiffEntry("+", kind, name, _summary(after[name])))
    for name in sorted(before.keys() & after.keys()):
        changed = [f"{field} {_value(before[name][field])} -> "
                   f"{_value(after[name][field])}"
                   for field in before[name]
                   if before[name][field] != after[name].get(field)]
        changed += [f"{field} (added) {_value(after[name][field])}"
                    for field in after[name] if field not in before[name]]
        if changed:
            entries.append(DiffEntry("~", kind, name, ", ".join(changed)))
    return entries


def _summary(fields: Dict) -> str:
    parts = [f"{name}={_value(value)}" for name, value in fields.items()
             if value not in (None, {}, ()) and name not in ("key",)]
    return ", ".join(parts)


# --------------------------------------------------------------------------
# The diff.
# --------------------------------------------------------------------------
def diff_scenarios(before, after) -> ScenarioDiff:
    """Semantic differences between two compiled scenarios (A → B)."""
    entries: List[DiffEntry] = []
    if before.name != after.name:
        entries.append(DiffEntry("~", "scenario", "name",
                                 f"{before.name} -> {after.name}"))

    entries += _mapping_diff("service", _services_model(before),
                             _services_model(after))

    bridges_a = set(before.topology.bridges)
    bridges_b = set(after.topology.bridges)
    entries += [DiffEntry("-", "bridge", name)
                for name in sorted(bridges_a - bridges_b)]
    entries += [DiffEntry("+", "bridge", name)
                for name in sorted(bridges_b - bridges_a)]

    entries += _mapping_diff("link", _links_model(before),
                             _links_model(after))

    events_a, events_b = _events_model(before), _events_model(after)
    counts: Dict[str, int] = {}
    for text in events_a:
        counts[text] = counts.get(text, 0) + 1
    for text in events_b:
        counts[text] = counts.get(text, 0) - 1
    for text in sorted(counts):
        event = json.loads(text)
        subject = _event_subject(event)
        for _ in range(counts[text]):
            entries.append(DiffEntry("-", "event", subject,
                                     _summary(event)))
        for _ in range(-counts[text]):
            entries.append(DiffEntry("+", "event", subject,
                                     _summary(event)))

    entries += _mapping_diff("workload", _workloads_model(before),
                             _workloads_model(after))

    deploy_a = dict(_deploy_out(before))
    deploy_b = dict(_deploy_out(after))
    for name in sorted(deploy_a.keys() | deploy_b.keys()):
        if deploy_a.get(name) != deploy_b.get(name):
            entries.append(DiffEntry(
                "~", "deploy", name,
                f"{_deploy_value(deploy_a, name)} -> "
                f"{_deploy_value(deploy_b, name)}"))
    return ScenarioDiff(entries)


def _event_subject(event: Dict) -> str:
    time = event.get("time", 0.0)
    action = event.get("action", "?")
    if "name" in event:
        return f"t={time:g} {action} {event['name']}"
    return f"t={time:g} {action} {event.get('orig')}->{event.get('dest')}"


def _deploy_value(deploy: Dict, name: str) -> str:
    if name not in deploy:
        return "(default)"
    return _value(deploy[name])
