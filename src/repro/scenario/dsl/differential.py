"""Differential backend testing: one scenario, N systems, zero drift.

``run_differential(compiled, backends=("kollaps", "trickle"))`` projects
a scenario onto the *common* capability set of the chosen backends
(dynamic events are stripped unless every backend applies them; each
workload is kept only if every backend validates it), runs the identical
projection on each backend, and compares:

* **path tables** — the canonical collapsed end-to-end table of the
  scenario each backend actually built, against the projection's;
* **metrics** — every shared workload's headline statistic, pairwise
  against the first backend, flagged when the relative deviation
  exceeds ``tolerance``.

Every discrepancy is a structured :class:`Divergence` finding inside a
:class:`DifferentialReport` (``report.ok`` / ``report.to_dict()``), so
fuzz campaigns and CI can assert "kollaps and trickle agree on
thousands of generated scenarios" and point at exactly what broke when
they don't.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.scenario.backends import ExecutionBackend, execute, \
    resolve_backend
from repro.scenario.dsl.format import scenario_from_scn, scn_document

__all__ = ["Divergence", "DifferentialReport", "project_common",
           "run_differential"]


@dataclass(frozen=True)
class Divergence:
    """One structured finding: where two backends (or a backend and the
    projection) disagree."""

    kind: str                  # "metric" | "path_table" | "error" | "empty"
    backend: str
    baseline: str = ""
    workload: str = ""
    detail: str = ""
    baseline_value: Optional[float] = None
    value: Optional[float] = None
    deviation: Optional[float] = None

    def __str__(self) -> str:
        if self.kind == "metric":
            return (f"metric divergence [{self.workload}] "
                    f"{self.baseline}={self.baseline_value:g} vs "
                    f"{self.backend}={self.value:g} "
                    f"(deviation {self.deviation:.1%})")
        if self.kind == "path_table":
            return (f"path-table divergence on {self.backend}: "
                    f"{self.detail}")
        return f"{self.kind} [{self.backend}]: {self.detail}"

    def to_dict(self) -> Dict:
        return {name: value for name, value
                in dataclasses.asdict(self).items() if value not in
                (None, "")}


@dataclass
class DifferentialReport:
    """Outcome of one differential run across N backends."""

    scenario: str
    backends: Tuple[str, ...]
    tolerance: float
    findings: List[Divergence] = field(default_factory=list)
    compared: List[str] = field(default_factory=list)
    events_dropped: int = 0
    #: workload key -> backend name -> the validation problems that
    #: excluded it from the common projection.
    dropped_workloads: Dict[str, Dict[str, List[str]]] = \
        field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings

    def summary(self) -> str:
        status = "agree" if self.ok else \
            f"DIVERGE ({len(self.findings)} finding(s))"
        parts = [f"{self.scenario}: {' vs '.join(self.backends)} {status}; "
                 f"{len(self.compared)} workload(s) compared"]
        if self.events_dropped:
            parts.append(f"{self.events_dropped} event(s) outside common "
                         f"capabilities dropped")
        if self.dropped_workloads:
            parts.append(f"{len(self.dropped_workloads)} workload(s) "
                         f"dropped: {', '.join(sorted(self.dropped_workloads))}")
        lines = ["; ".join(parts)]
        lines += [f"  {finding}" for finding in self.findings]
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        return {"scenario": self.scenario, "backends": list(self.backends),
                "ok": self.ok, "tolerance": self.tolerance,
                "compared": list(self.compared),
                "events_dropped": self.events_dropped,
                "dropped_workloads": self.dropped_workloads,
                "findings": [finding.to_dict()
                             for finding in self.findings]}


# --------------------------------------------------------------------------
# Projection onto common capabilities.
# --------------------------------------------------------------------------
def project_common(compiled, backends: Sequence[ExecutionBackend]):
    """The largest sub-scenario every backend can execute.

    Returns ``(projected, events_dropped, dropped_workloads)``.  The
    projection goes through the canonical ``.scn`` document — the same
    reviewable form the tooling uses — so what runs differentially is
    exactly what a dumped file says.
    """
    document = scn_document(compiled)

    events_dropped = 0
    if document.get("events") and any(
            not backend.capabilities.dynamic_events
            for backend in backends):
        events_dropped = len(document.pop("events"))

    dropped: Dict[str, Dict[str, List[str]]] = {}
    kept = []
    for spec in document.get("workloads", []):
        trial_document = {key: value for key, value in document.items()
                          if key != "workloads"}
        trial_document["workloads"] = [spec]
        trial = scenario_from_scn(trial_document, validate=False).compile()
        problems = {backend.name: backend.validate(trial)
                    for backend in backends}
        problems = {name: reasons for name, reasons in problems.items()
                    if reasons}
        if problems:
            dropped[spec["key"]] = problems
        else:
            kept.append(spec)
    if kept:
        document["workloads"] = kept
    else:
        document.pop("workloads", None)

    projected = scenario_from_scn(document, validate=False).compile()
    return projected, events_dropped, dropped


def _system_path_table(projected, system) -> Optional[str]:
    """The canonical path table of the topology a backend actually
    built, rendered exactly like :meth:`CompiledScenario.path_table`
    (None when the system exposes no topology)."""
    topology = getattr(system, "topology", None)
    if topology is None:
        state = getattr(system, "current_state", None)
        topology = getattr(state, "topology", None)
    if topology is None:
        return None
    return dataclasses.replace(projected, topology=topology).path_table()


# --------------------------------------------------------------------------
# The harness.
# --------------------------------------------------------------------------
def run_differential(compiled,
                     backends: Sequence[Union[str, ExecutionBackend]] = (
                         "kollaps", "trickle"), *,
                     until: Optional[float] = None,
                     tolerance: float = 0.15,
                     backend_options: Optional[Dict[str, Dict]] = None
                     ) -> DifferentialReport:
    """Run one scenario across several backends and report divergences.

    ``backends`` are registry names or ready instances (first one is the
    comparison baseline); ``tolerance`` bounds the acceptable relative
    deviation of each shared workload's headline metric;
    ``backend_options`` maps a backend name to factory options.

    Trickle defaults to its *tuned* small send buffer here: the default
    128 KB buffer deliberately reproduces the paper's erratic +40..100 %
    overshoot (Table 2), which is a property of that configuration, not
    a backend divergence.  Pass ``backend_options={"trickle": {...}}`` to
    compare against the untuned shaper instead.
    """
    if len(backends) < 2:
        raise ValueError("differential testing needs at least 2 backends")
    from repro.baselines.trickle import TRICKLE_TUNED_BUFFER_BYTES
    options = {"trickle": {"send_buffer_bytes": TRICKLE_TUNED_BUFFER_BYTES}}
    options.update(backend_options or {})
    resolved = [resolve_backend(backend, **options.get(backend, {}))
                if isinstance(backend, str) else resolve_backend(backend)
                for backend in backends]
    names = tuple(backend.name for backend in resolved)

    projected, events_dropped, dropped = project_common(compiled, resolved)
    report = DifferentialReport(scenario=compiled.name, backends=names,
                                tolerance=tolerance,
                                events_dropped=events_dropped,
                                dropped_workloads=dropped)

    reference_table = projected.path_table()
    horizon = until if until is not None else projected.default_duration()

    runs = []
    for backend in resolved:
        try:
            run = execute(projected, backend, horizon)
        except Exception as error:  # structured finding, not a traceback
            report.findings.append(Divergence(
                kind="error", backend=backend.name,
                detail=f"{type(error).__name__}: {error}"))
            continue
        built_table = _system_path_table(projected, run.engine)
        if built_table is not None and built_table != reference_table:
            report.findings.append(Divergence(
                kind="path_table", backend=backend.name,
                detail="collapsed path table of the built system differs "
                       "from the projected scenario's"))
        runs.append(run)

    if len(runs) < 2:
        report.findings.append(Divergence(
            kind="empty", backend=",".join(names),
            detail="fewer than two backends produced a run; "
                   "nothing to compare"))
        return report

    baseline = runs[0]
    compared = set()
    for other in runs[1:]:
        comparison = baseline.compare(other)
        for delta in comparison:
            compared.add(str(delta.key))
            if delta.deviation > tolerance:
                report.findings.append(Divergence(
                    kind="metric", backend=other.backend,
                    baseline=baseline.backend, workload=str(delta.key),
                    detail=delta.metric,
                    baseline_value=delta.baseline, value=delta.other,
                    deviation=delta.deviation))
        if not comparison.deltas:
            report.findings.append(Divergence(
                kind="empty", backend=other.backend,
                baseline=baseline.backend,
                detail="no shared workload carried a comparable headline "
                       "metric"))
    report.compared = sorted(compared)
    return report
