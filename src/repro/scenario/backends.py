"""Pluggable execution backends: one compiled scenario, N systems.

The paper's whole evaluation runs *the same workload on different
systems* — Kollaps against bare metal, Mininet, Maxinet and Trickle (§5).
This module makes that the public contract: every system adapts to one
lifecycle —

    prepare(compiled) -> start_workloads() -> advance(until)
        -> collect(until) -> teardown()

— behind the :class:`ExecutionBackend` protocol, and
:meth:`CompiledScenario.run(backend=...)
<repro.scenario.compiled.CompiledScenario.run>` routes through the
registry here, so ``compiled.run(backend="mininet")`` and
``compiled.run(backend="kollaps")`` are the *only* difference between two
rows of a comparison table.

Each backend declares :class:`BackendCapabilities`; scenario features a
backend cannot execute (packet workloads on Trickle, >1 Gb/s links on
Mininet, dynamic events outside Kollaps, ...) are rejected at
compile-against-backend time with one aggregated
:class:`BackendCompatibilityError` listing every problem, mirroring the
builder's whole-program validation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Tuple, Union

from repro import telemetry
from repro.netstack.plane import BULK_PLANE, PACKET_PLANE, probe_planes
from repro.topology.model import TopologyError

__all__ = [
    "BackendCapabilities",
    "BackendCompatibilityError",
    "ExecutionBackend",
    "KollapsBackend",
    "BareMetalBackend",
    "MininetBackend",
    "MaxinetBackend",
    "TrickleBackend",
    "register_backend",
    "backend_names",
    "resolve_backend",
    "execute",
]


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend can execute; checked against the compiled scenario."""

    packet_plane: bool = True        # can it carry individual packets?
    bulk_plane: bool = True          # can it carry fluid bulk flows?
    dynamic_events: bool = False     # can it apply the dynamic schedule?
    max_link_rate: Optional[float] = None   # bits/s shaping ceiling
    element_budget: Optional[int] = None    # max hosts+switches
    # Whether the system spans a cluster.  Informational, not validated:
    # EngineConfig.machines is a Kollaps deployment hint that
    # single-machine systems simply ignore — their real scale limit is
    # element_budget (Table 4's N/A rows), which IS validated.
    multi_machine: bool = True


class BackendCompatibilityError(TopologyError):
    """A scenario asks for features its backend cannot execute.

    Raised at :meth:`ExecutionBackend.prepare` time with *every* problem
    listed, so one run surfaces the whole incompatibility at once.
    """

    def __init__(self, backend: str, problems: List[str]) -> None:
        self.backend = backend
        self.problems = list(problems)
        super().__init__(
            f"scenario cannot run on the {backend!r} backend: "
            + "; ".join(self.problems))


class ExecutionBackend:
    """Base adapter: one system behind the common execution lifecycle.

    Subclasses set :attr:`name` and :attr:`capabilities` and implement
    :meth:`_build`, which turns a
    :class:`~repro.scenario.compiled.CompiledScenario` into a live system
    exposing the shared workload surface (``sim``, ``dataplane``,
    ``start_flow``/``stop_flow``, ``fluid``, ``run``).
    """

    name: str = "abstract"
    capabilities: BackendCapabilities = BackendCapabilities()

    def __init__(self) -> None:
        self.compiled = None
        self.system = None

    # ---------------------------------------------------------- validation
    def validate(self, compiled) -> List[str]:
        """Every reason this backend cannot run ``compiled`` (empty = ok)."""
        caps = self.capabilities
        problems: List[str] = []
        if len(compiled.schedule) and not caps.dynamic_events:
            problems.append(
                f"{len(compiled.schedule)} dynamic event(s) scheduled but "
                f"{self.name} cannot apply topology changes at runtime")
        if caps.max_link_rate is not None:
            for link in compiled.topology.links():
                bandwidth = link.properties.bandwidth
                if bandwidth != float("inf") and \
                        bandwidth > caps.max_link_rate:
                    problems.append(
                        f"link {link.source}->{link.destination} requests "
                        f"{bandwidth / 1e9:.2f} Gb/s but {self.name} cannot "
                        f"shape above {caps.max_link_rate / 1e9:.0f} Gb/s")
        if caps.element_budget is not None:
            elements = (len(compiled.topology.container_names())
                        + len(compiled.topology.bridges))
            if elements > caps.element_budget:
                problems.append(
                    f"{elements} emulated elements exceed the {self.name} "
                    f"single-machine budget of {caps.element_budget}")
        for workload in compiled.workloads:
            for plane in sorted(getattr(workload, "planes", ())):
                if plane == PACKET_PLANE and not caps.packet_plane:
                    problems.append(
                        f"workload {workload.key!r} needs a packet plane, "
                        f"which {self.name} does not provide")
                if plane == BULK_PLANE and not caps.bulk_plane:
                    problems.append(
                        f"workload {workload.key!r} needs a bulk-flow "
                        f"plane, which {self.name} does not provide")
        return problems

    # ----------------------------------------------------------- lifecycle
    def prepare(self, compiled):
        """Validate against capabilities, build the system, return it."""
        problems = self.validate(compiled)
        if problems:
            raise BackendCompatibilityError(self.name, problems)
        self.compiled = compiled
        self.system = self._build(compiled)
        # Workloads (and telemetry) may adapt to the executing backend.
        self.system.scenario_backend = self.name
        return self.system

    def _build(self, compiled):  # pragma: no cover - interface
        raise NotImplementedError

    def start_workloads(self) -> None:
        """Install every workload spec on the prepared system."""
        planes = probe_planes(self.system)
        for workload in self.compiled.workloads:
            needed = frozenset(getattr(workload, "planes", ()))
            missing = sorted(needed - planes)
            if missing:  # belt to validate()'s braces: a probed mismatch
                raise BackendCompatibilityError(self.name, [
                    f"workload {workload.key!r} needs the "
                    f"{'/'.join(missing)} plane(s), which the prepared "
                    f"{type(self.system).__name__} does not expose"])
            workload.install(self.system)

    def advance(self, until: float) -> None:
        """Run the system's clock forward to ``until``."""
        self.system.run(until=until)

    def collect(self, until: float) -> Tuple[Dict[Hashable, object],
                                             Dict[Hashable, "object"]]:
        """Per-workload raw results and :class:`Metrics` records."""
        results: Dict[Hashable, object] = {}
        metrics: Dict[Hashable, object] = {}
        for workload in self.compiled.workloads:
            collected = workload.collect(self.system, until)
            results[workload.key] = collected
            metrics[workload.key] = workload.metrics(
                self.system, until, collected)
        return results, metrics

    def teardown(self) -> None:
        """Release the system (simulated substrates have nothing to free)."""


# ---------------------------------------------------------------------------
# Concrete backends.
# ---------------------------------------------------------------------------
class KollapsBackend(ExecutionBackend):
    """The paper's system: decentralized collapsed emulation (§3-§4)."""

    name = "kollaps"
    capabilities = BackendCapabilities(dynamic_events=True)

    def _build(self, compiled):
        return compiled.engine()


class BareMetalBackend(ExecutionBackend):
    """Ground truth: the physical topology with zero emulation overhead."""

    name = "baremetal"
    capabilities = BackendCapabilities()

    def _build(self, compiled):
        from repro.baselines import BareMetalTestbed
        return BareMetalTestbed(compiled.topology,
                                seed=compiled.config.seed,
                                fluid_dt=compiled.config.fluid_dt)


class MininetBackend(ExecutionBackend):
    """Centralized full-state emulation on one machine (§2, §5)."""

    name = "mininet"

    def __init__(self, *, element_budget: Optional[int] = None,
                 **emulator_options) -> None:
        super().__init__()
        from repro.baselines.mininet import (
            _DEFAULT_ELEMENT_BUDGET,
            _MAX_LINK_RATE,
        )
        self._element_budget = (element_budget if element_budget is not None
                                else _DEFAULT_ELEMENT_BUDGET)
        self._emulator_options = emulator_options
        self.capabilities = BackendCapabilities(
            max_link_rate=_MAX_LINK_RATE,
            element_budget=self._element_budget,
            multi_machine=False)

    def _build(self, compiled):
        from repro.baselines import MininetEmulator
        return MininetEmulator(compiled.topology,
                               seed=compiled.config.seed,
                               fluid_dt=compiled.config.fluid_dt,
                               element_budget=self._element_budget,
                               **self._emulator_options)


class MaxinetBackend(ExecutionBackend):
    """Distributed full-state emulation with an external controller."""

    name = "maxinet"
    capabilities = BackendCapabilities()

    def __init__(self, *, workers: int = 4, **emulator_options) -> None:
        super().__init__()
        self._workers = workers
        self._emulator_options = emulator_options

    def _build(self, compiled):
        from repro.baselines import MaxinetEmulator
        return MaxinetEmulator(compiled.topology, workers=self._workers,
                               seed=compiled.config.seed,
                               fluid_dt=compiled.config.fluid_dt,
                               **self._emulator_options)


class _TrickleSystem:
    """The (almost empty) 'system' behind the Trickle backend.

    Trickle is a userspace socket shaper, not a network emulator: it has
    no packet plane, no clock worth advancing, and its long-run rate is
    analytic.  The holder keeps the collapsed paths so workloads can be
    priced against their provisioned end-to-end rate.
    """

    def __init__(self, compiled, collapsed) -> None:
        self.topology = compiled.topology
        self.collapsed = collapsed

    def run(self, until: float) -> None:
        """Nothing to advance: the shaper model is closed-form."""


class TrickleBackend(ExecutionBackend):
    """Userspace socket-level shaping (§2): bulk rates only, analytic.

    Each bulk workload's provisioned rate is its collapsed end-to-end
    bandwidth; the achieved rate follows the send-buffer escape model of
    :class:`~repro.baselines.trickle.TrickleShaper`.
    """

    name = "trickle"
    capabilities = BackendCapabilities(packet_plane=False)

    def __init__(self, *, send_buffer_bytes: Optional[int] = None,
                 physical_link_rate: float = float("inf")) -> None:
        super().__init__()
        from repro.baselines.trickle import TRICKLE_DEFAULT_BUFFER_BYTES
        self.send_buffer_bytes = (send_buffer_bytes
                                  if send_buffer_bytes is not None
                                  else TRICKLE_DEFAULT_BUFFER_BYTES)
        self.physical_link_rate = physical_link_rate
        self._collapsed_for = None
        self._collapsed = None

    def _collapse(self, compiled):
        """The collapsed topology, computed once per compiled scenario."""
        if self._collapsed_for is not compiled:
            self._collapsed_for = compiled
            self._collapsed = compiled.collapsed()
        return self._collapsed

    def validate(self, compiled) -> List[str]:
        problems = super().validate(compiled)
        collapsed = self._collapse(compiled)
        for workload in compiled.workloads:
            planes = frozenset(getattr(workload, "planes", ()))
            if BULK_PLANE not in planes:
                if PACKET_PLANE not in planes:
                    # Packet-plane workloads are already rejected above;
                    # this catches plane-less ones (e.g. custom specs).
                    problems.append(
                        f"workload {workload.key!r} declares no bulk "
                        "plane; trickle only executes flow-style bulk "
                        "workloads")
                continue
            if not hasattr(workload, "source"):
                problems.append(
                    f"workload {workload.key!r} ({type(workload).__name__}) "
                    "has no declared endpoints; trickle only executes "
                    "flow-style bulk workloads")
                continue
            path = collapsed.path(workload.source, workload.destination)
            if path is None:
                problems.append(
                    f"workload {workload.key!r} has no end-to-end path "
                    f"{workload.source} -> {workload.destination}")
            elif path.bandwidth == float("inf") and \
                    getattr(workload, "demand",
                            float("inf")) == float("inf"):
                # A demand-limited flow meters at its own rate; only a
                # greedy sender on an unshaped path has no target at all.
                problems.append(
                    f"workload {workload.key!r} has no provisioned rate on "
                    f"{workload.source} -> {workload.destination}; trickle "
                    "meters against a finite target rate")
        return problems

    def _build(self, compiled):
        return _TrickleSystem(compiled, self._collapse(compiled))

    def start_workloads(self) -> None:
        """Nothing to install: collection is closed-form."""

    def collect(self, until: float):
        from repro.apps.iperf import IperfResult
        from repro.baselines.trickle import TrickleShaper
        from repro.scenario.results import Metrics
        results: Dict[Hashable, object] = {}
        metrics: Dict[Hashable, object] = {}
        for workload in self.compiled.workloads:
            path = self.system.collapsed.path(workload.source,
                                              workload.destination)
            # A demand-limited sender meters at its own rate, not the
            # path's full provision.
            target = min(path.bandwidth,
                         getattr(workload, "demand", float("inf")))
            shaper = TrickleShaper(target,
                                   send_buffer_bytes=self.send_buffer_bytes,
                                   link_rate=self.physical_link_rate)
            achieved = shaper.achieved_rate()
            series = ((0.0, achieved), (until, achieved))
            if getattr(workload, "kind", None) == "iperf":
                results[workload.key] = IperfResult(
                    mean_goodput=achieved, mean_wire_rate=achieved,
                    duration=getattr(workload, "duration", until),
                    series=series)
            else:
                results[workload.key] = achieved
            metrics[workload.key] = Metrics(
                key=workload.key, kind=getattr(workload, "kind", "flow"),
                throughput=series,
                summary={"throughput_mean": achieved,
                         "throughput_min": achieved,
                         "throughput_max": achieved,
                         "target_rate": target,
                         "relative_error": shaper.relative_error()},
                primary="throughput_mean")
        return results, metrics


# ---------------------------------------------------------------------------
# Registry.
# ---------------------------------------------------------------------------
BackendFactory = Callable[..., ExecutionBackend]

_REGISTRY: Dict[str, BackendFactory] = {
    KollapsBackend.name: KollapsBackend,
    BareMetalBackend.name: BareMetalBackend,
    MininetBackend.name: MininetBackend,
    MaxinetBackend.name: MaxinetBackend,
    TrickleBackend.name: TrickleBackend,
}


def register_backend(name: str, factory: BackendFactory) -> None:
    """Add (or replace) a backend under ``name`` for run(backend=name)."""
    _REGISTRY[name] = factory


def backend_names() -> List[str]:
    return sorted(_REGISTRY)


def resolve_backend(backend: Union[str, ExecutionBackend],
                    **options) -> ExecutionBackend:
    """A ready backend instance from a registry name or a live object."""
    if isinstance(backend, str):
        try:
            factory = _REGISTRY[backend]
        except KeyError:
            raise ValueError(
                f"unknown backend {backend!r}; registered: "
                f"{', '.join(backend_names())}") from None
        return factory(**options)
    if options:
        raise TypeError("backend options only apply to registry names, "
                        f"not to a ready {type(backend).__name__} instance")
    required = ("prepare", "start_workloads", "advance", "collect",
                "teardown")
    missing = [verb for verb in required
               if not callable(getattr(backend, verb, None))]
    if missing:
        raise TypeError(
            f"{type(backend).__name__} does not implement the "
            f"ExecutionBackend lifecycle (missing: {', '.join(missing)})")
    return backend


def execute(compiled, backend: ExecutionBackend,
            until: Optional[float] = None):
    """Drive one backend through the full lifecycle; the one run loop."""
    from repro.scenario.results import ScenarioRun
    name = getattr(backend, "name", type(backend).__name__)
    with telemetry.span("backend.prepare", backend=name,
                        scenario=compiled.name):
        system = backend.prepare(compiled)
    horizon = until if until is not None else compiled.default_duration()
    try:
        with telemetry.span("backend.start_workloads", backend=name):
            backend.start_workloads()
        with telemetry.span("backend.advance", backend=name,
                            until=horizon):
            backend.advance(horizon)
        with telemetry.span("backend.collect", backend=name):
            results, metrics = backend.collect(horizon)
    finally:
        with telemetry.span("backend.teardown", backend=name):
            backend.teardown()
    config = getattr(compiled, "config", None)
    return ScenarioRun(engine=system, until=horizon, results=results,
                       backend=getattr(backend, "name",
                                       type(backend).__name__),
                       scenario=compiled.name, metrics=metrics,
                       seed=getattr(config, "seed", None),
                       machines=getattr(config, "machines", None))
