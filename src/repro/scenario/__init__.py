"""The unified Scenario API: one fluent choke point for experiments.

The paper's core pitch is that a *single declarative experiment
description* drives the decentralized emulation end-to-end.  This package
is that choke point for the reproduction: every way of assembling an
experiment — the fluent builder, the listing-style text language, the dict
form, Modelnet XML, the programmatic topology generators and THUNDERSTORM
scenario scripts — produces a :class:`Scenario` builder, and everything
downstream consumes the :class:`CompiledScenario` it compiles to::

    from repro.scenario import Scenario, iperf, ping, set_link

    run = (Scenario.build("figure1")
           .service("c1", image="iperf")
           .service("sv", image="nginx", replicas=2)
           .bridges("s1", "s2")
           .link("c1", "s1", latency="10ms", up="10Mbps")
           .link("s1", "s2", latency="20ms", up="100Mbps")
           .link("sv", "s2", latency="5ms", up="50Mbps")
           .at(30, set_link("s1", "s2", latency="80ms"))
           .workload(ping("c1", "sv.0"), iperf("c1", "sv.0", duration=15))
           .deploy(machines=2, seed=42)
           .compile()
           .run())

See ``docs/api.md`` for the full quickstart.
"""

from repro.scenario.builder import (
    PendingEvent,
    Scenario,
    link_down,
    link_up,
    node_join,
    node_leave,
    set_link,
)
from repro.scenario.compiled import CompiledScenario, ScenarioRun
from repro.scenario.workloads import (
    FlowWorkload,
    IperfWorkload,
    PingWorkload,
    Workload,
    flow,
    iperf,
    ping,
    udp_blast,
)

__all__ = [
    "Scenario",
    "CompiledScenario",
    "ScenarioRun",
    "PendingEvent",
    "set_link",
    "link_down",
    "link_up",
    "node_join",
    "node_leave",
    "Workload",
    "FlowWorkload",
    "IperfWorkload",
    "PingWorkload",
    "flow",
    "iperf",
    "ping",
    "udp_blast",
]
