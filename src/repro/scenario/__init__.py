"""The unified Scenario API: one fluent choke point for experiments.

The paper's core pitch is that a *single declarative experiment
description* drives the decentralized emulation end-to-end.  This package
is that choke point for the reproduction: every way of assembling an
experiment — the fluent builder, the listing-style text language, the dict
form, Modelnet XML, the programmatic topology generators and THUNDERSTORM
scenario scripts — produces a :class:`Scenario` builder, and everything
downstream consumes the :class:`CompiledScenario` it compiles to::

    from repro.scenario import Scenario, iperf, ping, set_link

    run = (Scenario.build("figure1")
           .service("c1", image="iperf")
           .service("sv", image="nginx", replicas=2)
           .bridges("s1", "s2")
           .link("c1", "s1", latency="10ms", up="10Mbps")
           .link("s1", "s2", latency="20ms", up="100Mbps")
           .link("sv", "s2", latency="5ms", up="50Mbps")
           .at(30, set_link("s1", "s2", latency="80ms"))
           .workload(ping("c1", "sv.0"), iperf("c1", "sv.0", duration=15))
           .deploy(machines=2, seed=42)
           .compile()
           .run())

Execution is backend-pluggable: the same compiled scenario fans across
Kollaps and the paper's §5 comparator systems through
``compiled.run(backend="kollaps" | "baremetal" | "mininet" | "maxinet" |
"trickle")``, each run returning the unified
:class:`~repro.scenario.results.ScenarioRun` results API
(per-workload :class:`~repro.scenario.results.Metrics`,
``compare()`` deltas, ``to_dict()``/``to_csv()`` export).

See ``docs/api.md`` for the full quickstart and the backend guide.
"""

from repro.scenario.backends import (
    BackendCapabilities,
    BackendCompatibilityError,
    BareMetalBackend,
    ExecutionBackend,
    KollapsBackend,
    MaxinetBackend,
    MininetBackend,
    TrickleBackend,
    backend_names,
    register_backend,
    resolve_backend,
)
from repro.scenario.builder import (
    PendingEvent,
    Scenario,
    link_down,
    link_up,
    node_join,
    node_leave,
    set_link,
)
from repro.scenario.compiled import CompiledScenario
from repro.scenario.results import Metrics, RunComparison, ScenarioRun
from repro.scenario.workloads import (
    CurlSwarmWorkload,
    CustomWorkload,
    FlowWorkload,
    HttpLoadWorkload,
    IperfWorkload,
    PingWorkload,
    Workload,
    curl_swarm,
    custom,
    flow,
    http_load,
    iperf,
    ping,
    udp_blast,
)

# The declarative DSL toolbox (kept after the builder imports above —
# repro.scenario.dsl builds on builder/backends/workloads).
from repro.scenario.dsl import (
    Diagnostic,
    DifferentialReport,
    ScnError,
    diff_scenarios,
    dump_scn,
    dumps_scn,
    fuzz_campaign,
    fuzz_corpus,
    generate_scenario,
    lint_file,
    lint_scenario,
    load_scn,
    loads_scn,
    run_differential,
)

__all__ = [
    "Scenario",
    "CompiledScenario",
    "ScenarioRun",
    "Metrics",
    "RunComparison",
    "ExecutionBackend",
    "BackendCapabilities",
    "BackendCompatibilityError",
    "KollapsBackend",
    "BareMetalBackend",
    "MininetBackend",
    "MaxinetBackend",
    "TrickleBackend",
    "backend_names",
    "register_backend",
    "resolve_backend",
    "PendingEvent",
    "set_link",
    "link_down",
    "link_up",
    "node_join",
    "node_leave",
    "Workload",
    "FlowWorkload",
    "IperfWorkload",
    "PingWorkload",
    "HttpLoadWorkload",
    "CurlSwarmWorkload",
    "CustomWorkload",
    "flow",
    "iperf",
    "ping",
    "udp_blast",
    "http_load",
    "curl_swarm",
    "custom",
    "Diagnostic",
    "ScnError",
    "load_scn",
    "loads_scn",
    "dump_scn",
    "dumps_scn",
    "lint_file",
    "lint_scenario",
    "diff_scenarios",
    "generate_scenario",
    "fuzz_corpus",
    "fuzz_campaign",
    "DifferentialReport",
    "run_differential",
]
