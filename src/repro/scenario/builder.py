"""The fluent, validating :class:`Scenario` builder.

One choke point for experiment assembly (the paper's single declarative
description, §3): every front-end — the listing-style text language, the
dict form, Modelnet XML, the programmatic topology generators and the
THUNDERSTORM scenario scripts — *produces* a builder, and everything
downstream (engine, deployment generator, CLI, experiment runners)
consumes the :class:`~repro.scenario.compiled.CompiledScenario` the
builder compiles to.

The builder is deliberately declaration-order-free: links may reference
services declared later, because all cross-referencing is validated in
:meth:`Scenario.compile`, which reports *every* undeclared endpoint and
*every* duplicate name in one :class:`~repro.topology.model.TopologyError`
instead of failing on the first.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.topology.events import DynamicEvent, EventAction, EventSchedule
from repro.topology.model import (
    Bridge,
    LinkProperties,
    Service,
    Topology,
    TopologyError,
)
from repro.units import parse_rate, parse_time

__all__ = [
    "Scenario",
    "PendingEvent",
    "set_link",
    "link_down",
    "link_up",
    "node_join",
    "node_leave",
]

Number = Union[str, float, int]


def _time(value: Optional[Number], *, default_unit: str = "s") -> float:
    """Seconds from a raw float (already seconds) or a ``"10ms"`` string."""
    if value is None:
        return 0.0
    return parse_time(value, default_unit=default_unit)


def _rate(value: Optional[Number]) -> float:
    """Bits/s from a raw float (already bits/s) or a ``"10Mbps"`` string."""
    if value is None:
        return float("inf")
    return parse_rate(value)


def _loss(value: Optional[Number]) -> float:
    """A loss probability from a float or a ``"2%"`` string."""
    if value is None:
        return 0.0
    if isinstance(value, str):
        raw = value.strip()
        if raw.endswith("%"):
            return float(raw[:-1]) / 100.0
        return float(raw)
    return float(value)


# --------------------------------------------------------------------------
# Declaration specs: pure data until compile() builds the Topology.
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class ServiceSpec:
    name: str
    image: str = "scratch"
    replicas: int = 1
    command: Optional[str] = None
    tags: Tuple[Tuple[str, str], ...] = ()


@dataclass(frozen=True)
class BridgeSpec:
    name: str


@dataclass(frozen=True)
class LinkSpec:
    """One declared link, in SI base units; ``down`` is the reverse capacity."""

    source: str
    destination: str
    latency: float = 0.0
    up: float = float("inf")
    down: Optional[float] = None      # None: mirror `up` when bidirectional
    jitter: float = 0.0
    loss: float = 0.0
    jitter_distribution: str = "normal"
    bidirectional: bool = True
    network: str = "default"

    def forward_properties(self) -> LinkProperties:
        return LinkProperties(latency=self.latency, bandwidth=self.up,
                              jitter=self.jitter, loss=self.loss,
                              jitter_distribution=self.jitter_distribution)

    def backward_properties(self) -> LinkProperties:
        bandwidth = self.up if self.down is None else self.down
        return LinkProperties(latency=self.latency, bandwidth=bandwidth,
                              jitter=self.jitter, loss=self.loss,
                              jitter_distribution=self.jitter_distribution)


# --------------------------------------------------------------------------
# Event helpers for Scenario.at(): partially-specified dynamic events.
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class PendingEvent:
    """A dynamic event waiting for :meth:`Scenario.at` to stamp its time."""

    action: EventAction
    origin: Optional[str] = None
    destination: Optional[str] = None
    name: Optional[str] = None
    properties: Optional[LinkProperties] = None
    changes: Tuple[Tuple[str, float], ...] = ()
    bidirectional: bool = True

    def at(self, time: float) -> DynamicEvent:
        return DynamicEvent(time=time, action=self.action, origin=self.origin,
                            destination=self.destination, name=self.name,
                            properties=self.properties,
                            changes=dict(self.changes),
                            bidirectional=self.bidirectional)


def set_link(origin: str, destination: str, *,
             latency: Optional[Number] = None,
             bandwidth: Optional[Number] = None,
             up: Optional[Number] = None,
             jitter: Optional[Number] = None,
             loss: Optional[Number] = None,
             bidirectional: bool = True) -> PendingEvent:
    """Change selected properties of an existing link (others untouched)."""
    changes: List[Tuple[str, float]] = []
    if latency is not None:
        changes.append(("latency", _time(latency)))
    if jitter is not None:
        changes.append(("jitter", _time(jitter)))
    if loss is not None:
        changes.append(("loss", _loss(loss)))
    capacity = up if up is not None else bandwidth
    if capacity is not None:
        changes.append(("bandwidth", _rate(capacity)))
    if not changes:
        raise TopologyError(
            f"set_link({origin!r}, {destination!r}) changes nothing")
    return PendingEvent(EventAction.SET_LINK, origin=origin,
                        destination=destination, changes=tuple(changes),
                        bidirectional=bidirectional)


def link_down(origin: str, destination: str, *,
              bidirectional: bool = True) -> PendingEvent:
    """Remove a link (half of the paper's flapping-link pattern)."""
    return PendingEvent(EventAction.LEAVE_LINK, origin=origin,
                        destination=destination, bidirectional=bidirectional)


def link_up(origin: str, destination: str, *,
            latency: Number = 0.0, bandwidth: Optional[Number] = None,
            up: Optional[Number] = None, jitter: Number = 0.0,
            loss: Number = 0.0, bidirectional: bool = True) -> PendingEvent:
    """(Re-)add a link with the given properties."""
    capacity = up if up is not None else bandwidth
    properties = LinkProperties(latency=_time(latency),
                                bandwidth=_rate(capacity),
                                jitter=_time(jitter), loss=_loss(loss))
    return PendingEvent(EventAction.JOIN_LINK, origin=origin,
                        destination=destination, properties=properties,
                        bidirectional=bidirectional)


def node_join(name: str) -> PendingEvent:
    """(Re-)add a service or bridge by name."""
    return PendingEvent(EventAction.JOIN_NODE, name=name)


def node_leave(name: str) -> PendingEvent:
    """Remove a service or bridge (and every link touching it)."""
    return PendingEvent(EventAction.LEAVE_NODE, name=name)


# --------------------------------------------------------------------------
# The builder.
# --------------------------------------------------------------------------
class Scenario:
    """Fluent builder for a complete experiment scenario.

    Usage::

        compiled = (Scenario.build("figure1")
                    .service("c1", image="iperf")
                    .service("sv", image="nginx", replicas=2)
                    .bridges("s1", "s2")
                    .link("c1", "s1", latency="10ms", up="10Mbps")
                    .link("s1", "s2", latency="20ms", up="100Mbps")
                    .link("sv", "s2", latency="5ms", up="50Mbps")
                    .at(30, set_link("s1", "s2", latency="80ms"))
                    .workload(ping("c1", "sv.0"), iperf("c1", "sv.0"))
                    .deploy(machines=2, seed=42)
                    .compile())

    Every mutator returns ``self`` so calls chain; :meth:`compile` freezes
    the result into an immutable
    :class:`~repro.scenario.compiled.CompiledScenario`.
    """

    def __init__(self, name: str = "experiment") -> None:
        self.name = name
        self._services: List[ServiceSpec] = []
        self._bridges: List[BridgeSpec] = []
        self._links: List[LinkSpec] = []
        self._events: List[DynamicEvent] = []
        self._scripts: List[str] = []
        self._workloads: List[object] = []
        self._deploy_kwargs: Dict[str, object] = {}
        self._placement: Optional[Dict[str, str]] = None
        self._duration: Optional[float] = None

    # ------------------------------------------------------------ creation
    @classmethod
    def build(cls, name: str = "experiment") -> "Scenario":
        """Start a fresh builder (the canonical entry point)."""
        return cls(name)

    @classmethod
    def from_text(cls, text: str) -> "Scenario":
        """Builder from the paper's listing-style description language."""
        from repro.scenario.frontends import scenario_from_text
        return scenario_from_text(text)

    @classmethod
    def from_dict(cls, description: Dict) -> "Scenario":
        """Builder from the dict form (what a YAML loader would give)."""
        from repro.scenario.frontends import scenario_from_dict
        return scenario_from_dict(description)

    @classmethod
    def from_xml(cls, text: str) -> "Scenario":
        """Builder from a Modelnet-style XML topology."""
        from repro.scenario.frontends import scenario_from_xml
        return scenario_from_xml(text)

    @classmethod
    def from_file(cls, path: str) -> "Scenario":
        """Builder from a description file, dispatched on suffix."""
        from repro.scenario.frontends import scenario_from_file
        return scenario_from_file(path)

    @classmethod
    def from_topology(cls, topology: Topology,
                      schedule: Optional[EventSchedule] = None) -> "Scenario":
        """Adopt an already-built :class:`Topology` (plus schedule)."""
        from repro.scenario.frontends import scenario_from_topology
        return scenario_from_topology(topology, schedule)

    # --------------------------------------------------------------- nodes
    def service(self, name: str, *, image: str = "scratch",
                replicas: int = 1, command: Optional[str] = None,
                tags: Optional[Dict[str, str]] = None) -> "Scenario":
        """Declare a service: ``replicas`` containers sharing ``image``."""
        self._services.append(ServiceSpec(
            name=name, image=image, replicas=int(replicas), command=command,
            tags=tuple(sorted((tags or {}).items()))))
        return self

    def bridge(self, name: str) -> "Scenario":
        """Declare one switch/router."""
        self._bridges.append(BridgeSpec(name))
        return self

    def bridges(self, *names: str) -> "Scenario":
        """Declare several switches/routers at once."""
        for name in names:
            self.bridge(name)
        return self

    # --------------------------------------------------------------- links
    def link(self, source: str, destination: str, *,
             latency: Number = 0.0, bandwidth: Optional[Number] = None,
             up: Optional[Number] = None, down: Optional[Number] = None,
             jitter: Number = 0.0, loss: Number = 0.0,
             jitter_distribution: str = "normal", bidirectional: bool = True,
             network: str = "default") -> "Scenario":
        """Declare a link.

        Numeric values are SI base units (seconds, bits/s); strings carry
        units (``"10ms"``, ``"100Mbps"``, ``"2%"``) and are parsed through
        :mod:`repro.units`.  ``up``/``down`` give asymmetric capacities;
        ``bandwidth`` is the symmetric shorthand.  ``down`` defaults to
        ``up`` when the link is bidirectional.
        """
        capacity = up if up is not None else bandwidth
        self._links.append(LinkSpec(
            source=source, destination=destination,
            latency=_time(latency), up=_rate(capacity),
            down=None if down is None else _rate(down),
            jitter=_time(jitter), loss=_loss(loss),
            jitter_distribution=jitter_distribution,
            bidirectional=bool(bidirectional), network=network))
        return self

    def unlink(self, source: str, destination: str) -> "Scenario":
        """Withdraw a previously declared link (either direction)."""
        for index, spec in enumerate(self._links):
            if {spec.source, spec.destination} == {source, destination}:
                del self._links[index]
                return self
        raise TopologyError(
            f"no declared link between {source!r} and {destination!r}")

    # -------------------------------------------------------------- events
    def at(self, time: Number,
           *events: Union[PendingEvent, DynamicEvent]) -> "Scenario":
        """Schedule dynamic events at ``time`` (seconds or ``"90s"``-style)."""
        stamp = _time(time)
        if not events:
            raise TopologyError(f"at({time!r}) schedules no events")
        for event in events:
            if isinstance(event, PendingEvent):
                self._events.append(event.at(stamp))
            elif isinstance(event, DynamicEvent):
                self._events.append(dataclasses.replace(event, time=stamp))
            else:
                raise TopologyError(
                    f"at() takes PendingEvent/DynamicEvent, got {event!r}")
        return self

    def event(self, event: DynamicEvent) -> "Scenario":
        """Append an already-timed :class:`DynamicEvent` (escape hatch)."""
        self._events.append(event)
        return self

    def script(self, text: str) -> "Scenario":
        """Attach a THUNDERSTORM scenario script (compiled at compile())."""
        self._scripts.append(text)
        return self

    # ----------------------------------------------------------- workloads
    def workload(self, *specs) -> "Scenario":
        """Attach workload specs (see :mod:`repro.scenario.workloads`)."""
        from repro.scenario.workloads import Workload
        for spec in specs:
            if not isinstance(spec, Workload):
                raise TopologyError(
                    f"workload() takes Workload specs, got {spec!r}")
            self._workloads.append(spec)
        return self

    # ---------------------------------------------------------- deployment
    def deploy(self, *, machines: Optional[int] = None,
               seed: Optional[int] = None,
               placement: Optional[Dict[str, str]] = None,
               duration: Optional[Number] = None,
               **tunables) -> "Scenario":
        """Configure the deployment: cluster size, seed and engine tunables.

        ``tunables`` accepts any :class:`~repro.core.engine.EngineConfig`
        field (``loop_period``, ``time_dilation``,
        ``enforce_bandwidth_sharing``, ...); unknown names fail immediately.
        Calls are incremental: only the settings named in this call change,
        so a CLI can override one knob of a pre-configured scenario without
        resetting the rest to defaults.
        """
        from repro.core.engine import EngineConfig
        valid = {f.name for f in dataclasses.fields(EngineConfig)}
        unknown = sorted(set(tunables) - valid)
        if unknown:
            raise TypeError(
                f"unknown deploy() tunables {unknown}; valid: {sorted(valid)}")
        self._deploy_kwargs.update(tunables)
        if machines is not None:
            self._deploy_kwargs["machines"] = int(machines)
        if seed is not None:
            self._deploy_kwargs["seed"] = int(seed)
        if placement is not None:
            self._placement = dict(placement)
        if duration is not None:
            self._duration = _time(duration)
        return self

    # -------------------------------------------------------- compilation
    def compile(self) -> "CompiledScenario":
        """Validate everything and freeze into a :class:`CompiledScenario`.

        Validation is whole-program: duplicate service/bridge names and
        links whose endpoints were never declared are each reported as one
        :class:`TopologyError` listing *all* offending names.
        """
        from repro.core.engine import EngineConfig
        from repro.scenario.compiled import CompiledScenario

        self._validate_names()
        topology = Topology(self.name)
        for spec in self._services:
            topology.add_service(Service(
                name=spec.name, image=spec.image, replicas=spec.replicas,
                command=spec.command, tags=dict(spec.tags)))
        for spec in self._bridges:
            topology.add_bridge(Bridge(spec.name))
        for spec in self._links:
            topology.add_link(
                spec.source, spec.destination, spec.forward_properties(),
                bidirectional=spec.bidirectional,
                down_properties=(spec.backward_properties()
                                 if spec.bidirectional else None),
                network=spec.network)
        topology.validate()

        self._validate_events()
        self._validate_workloads()
        schedule = EventSchedule(list(self._events))
        for text in self._scripts:
            from repro.topology.thunderstorm import compile_scenario
            for event in compile_scenario(text, topology):
                schedule.add(event)

        config = EngineConfig(**self._deploy_kwargs)
        return CompiledScenario(
            name=self.name, topology=topology, schedule=schedule,
            workloads=tuple(self._workloads), config=config,
            placement=(dict(self._placement)
                       if self._placement is not None else None),
            duration=self._duration,
            services=tuple(self._services), bridge_specs=tuple(self._bridges),
            link_specs=tuple(self._links))

    def _validate_names(self) -> None:
        declared: Dict[str, int] = {}
        for spec in list(self._services) + list(self._bridges):
            declared[spec.name] = declared.get(spec.name, 0) + 1
        duplicates = sorted(name for name, count in declared.items()
                            if count > 1)
        problems: List[str] = []
        if duplicates:
            problems.append(
                f"duplicate service/bridge names: {', '.join(duplicates)}")
        unknown = sorted({endpoint for spec in self._links
                          for endpoint in (spec.source, spec.destination)
                          if endpoint not in declared})
        if unknown:
            problems.append(
                f"links reference undeclared nodes: {', '.join(unknown)}")
        if problems:
            raise TopologyError(
                f"scenario {self.name!r} is invalid: " + "; ".join(problems))

    def _validate_events(self) -> None:
        """Cheap name-level check: every link event must reference nodes
        that are declared or joined by an earlier event.  (Full semantic
        validation — e.g. removing an already-removed link — still happens
        in the engine's offline pre-computation, as before.)"""
        known = {spec.name for spec in self._services}
        known |= {spec.name for spec in self._bridges}
        bad: List[str] = []
        for event in sorted(self._events, key=lambda e: e.time):
            if event.action is EventAction.JOIN_NODE and event.name:
                known.add(event.name)
                continue
            if event.name is not None:
                if event.name not in known:
                    bad.append(event.name)
                continue
            for endpoint in (event.origin, event.destination):
                if endpoint is not None and endpoint not in known:
                    bad.append(endpoint)
        if bad:
            raise TopologyError(
                f"scenario {self.name!r}: dynamic events reference "
                f"undeclared nodes: {', '.join(sorted(set(bad)))}")

    def _validate_workloads(self) -> None:
        keys = [workload.key for workload in self._workloads]
        duplicates = sorted({str(key) for key in keys if keys.count(key) > 1})
        if duplicates:
            raise TopologyError(
                f"scenario {self.name!r}: duplicate workload keys: "
                f"{', '.join(duplicates)} (pass key=... to disambiguate)")
