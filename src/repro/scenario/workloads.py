"""Declarative workload specs attached to a :class:`Scenario`.

A workload is *what runs on the emulated network*: bulk flows, iperf
measurements, ping probes, UDP blasts.  Specs are plain data until
:meth:`CompiledScenario.run` installs them on a live engine; afterwards
each spec collects its own result, so a scenario run returns application
measurements (the paper's "what unmodified applications observe") without
any hand-rolled engine plumbing at the call site.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional, Union

from repro.units import parse_rate, parse_time

__all__ = ["Workload", "FlowWorkload", "IperfWorkload", "PingWorkload",
           "flow", "iperf", "ping", "udp_blast"]

Number = Union[str, float, int]


def _rate(value: Optional[Number]) -> float:
    if value is None:
        return float("inf")
    return parse_rate(value)


def _time(value: Number) -> float:
    return parse_time(value)


class Workload:
    """Base: ``install`` before the run, ``collect`` after it."""

    key: Hashable

    def install(self, engine) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def collect(self, engine, until: float):  # pragma: no cover - interface
        raise NotImplementedError

    def horizon(self) -> float:
        """Latest time this workload needs the run to reach (0 = open)."""
        return 0.0


@dataclass(frozen=True)
class FlowWorkload(Workload):
    """A bulk flow on the fluid plane; result is its mean throughput."""

    source: str
    destination: str
    demand: float = float("inf")
    protocol: str = "tcp"
    congestion_control: str = "cubic"
    start: float = 0.0
    stop: Optional[float] = None
    key: Hashable = None

    def __post_init__(self) -> None:
        if self.key is None:
            object.__setattr__(self, "key",
                               f"{self.source}->{self.destination}")

    def install(self, engine) -> None:
        engine.start_flow(self.key, self.source, self.destination,
                          protocol=self.protocol,
                          congestion_control=self.congestion_control,
                          demand=self.demand, start_time=self.start)
        if self.stop is not None:
            engine.sim.at(self.stop,
                          lambda: engine.stop_flow(self.key))

    def collect(self, engine, until: float) -> float:
        end = until if self.stop is None else min(self.stop, until)
        return engine.fluid.mean_throughput(self.key, self.start, end)

    def horizon(self) -> float:
        return self.stop if self.stop is not None else 0.0


@dataclass(frozen=True)
class IperfWorkload(Workload):
    """An iperf3-like measurement: a timed flow reported as goodput."""

    source: str
    destination: str
    duration: float = 60.0
    demand: float = float("inf")
    protocol: str = "tcp"
    congestion_control: str = "cubic"
    warmup: float = 2.0
    start: float = 0.0
    key: Hashable = None

    def __post_init__(self) -> None:
        if self.key is None:
            object.__setattr__(
                self, "key", f"iperf:{self.source}->{self.destination}")

    def install(self, engine) -> None:
        engine.start_flow(self.key, self.source, self.destination,
                          protocol=self.protocol,
                          congestion_control=self.congestion_control,
                          demand=self.demand, start_time=self.start)
        engine.sim.at(self.start + self.duration,
                      lambda: engine.stop_flow(self.key))

    def collect(self, engine, until: float) -> "IperfResult":
        from repro.apps.iperf import GOODPUT_FACTOR, IperfResult
        wire = engine.fluid.mean_throughput(
            self.key, self.start + self.warmup, self.start + self.duration)
        series = tuple((time, rate * GOODPUT_FACTOR)
                       for time, rate in engine.fluid.series(self.key))
        return IperfResult(mean_goodput=wire * GOODPUT_FACTOR,
                           mean_wire_rate=wire, duration=self.duration,
                           series=series)

    def horizon(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class PingWorkload(Workload):
    """Echo probing on the packet plane; result is the PingStats."""

    source: str
    destination: str
    count: int = 100
    interval: float = 0.010
    start: float = 0.0
    key: Hashable = None

    def __post_init__(self) -> None:
        if self.key is None:
            object.__setattr__(
                self, "key", f"ping:{self.source}->{self.destination}")

    def install(self, engine) -> None:
        from repro.apps.ping import Pinger
        pinger = Pinger(engine.sim, engine.dataplane, self.source,
                        self.destination, count=self.count,
                        interval=self.interval)
        if self.start > 0:
            engine.sim.at(self.start, pinger.start)
        else:
            pinger.start()
        # Stashed per-engine so collect() can find its own stats even when
        # the same spec is run twice on different engines.
        engine.__dict__.setdefault("_scenario_pingers", {})[self.key] = pinger

    def collect(self, engine, until: float):
        return engine._scenario_pingers[self.key].stats

    def horizon(self) -> float:
        return self.start + self.count * self.interval + 1.0


def flow(source: str, destination: str, *, rate: Optional[Number] = None,
         protocol: str = "tcp", congestion_control: str = "cubic",
         start: Number = 0.0, stop: Optional[Number] = None,
         key: Hashable = None) -> FlowWorkload:
    """A long-lived bulk flow; ``rate`` caps its demand (default: greedy)."""
    return FlowWorkload(source, destination, demand=_rate(rate),
                        protocol=protocol,
                        congestion_control=congestion_control,
                        start=_time(start),
                        stop=None if stop is None else _time(stop), key=key)


def iperf(source: str, destination: str, *, duration: Number = 60.0,
          rate: Optional[Number] = None, protocol: str = "tcp",
          congestion_control: str = "cubic", warmup: Number = 2.0,
          start: Number = 0.0, key: Hashable = None) -> IperfWorkload:
    """An iperf3-like timed throughput measurement."""
    return IperfWorkload(source, destination, duration=_time(duration),
                         demand=_rate(rate), protocol=protocol,
                         congestion_control=congestion_control,
                         warmup=_time(warmup), start=_time(start), key=key)


def ping(source: str, destination: str, *, count: int = 100,
         interval: Number = 0.010, start: Number = 0.0,
         key: Hashable = None) -> PingWorkload:
    """``count`` echo requests at ``interval``; collects RTT statistics."""
    return PingWorkload(source, destination, count=int(count),
                        interval=_time(interval), start=_time(start), key=key)


def udp_blast(source: str, destination: str, rate: Number, *,
              start: Number = 0.0, stop: Optional[Number] = None,
              key: Hashable = None) -> FlowWorkload:
    """A constant-bit-rate UDP flood that never backs off (§3)."""
    return FlowWorkload(source, destination, demand=_rate(rate),
                        protocol="udp", start=_time(start),
                        stop=None if stop is None else _time(stop), key=key)
