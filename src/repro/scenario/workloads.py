"""Declarative workload specs attached to a :class:`Scenario`.

A workload is *what runs on the emulated network*: bulk flows, iperf
measurements, ping probes, HTTP load generators.  Specs are plain data
until an :class:`~repro.scenario.backends.ExecutionBackend` installs them
on a live system; afterwards each spec collects its own result and a
backend-independent :class:`~repro.scenario.results.Metrics` record, so a
scenario run returns application measurements (the paper's "what
unmodified applications observe") without any hand-rolled engine plumbing
at the call site.

Each spec declares the data ``planes`` it needs (``"bulk"`` for fluid
flows, ``"packet"`` for per-packet applications); backends check those
declarations against their capabilities before anything runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Optional, Sequence, Tuple, Union

from repro.netstack.plane import BULK_PLANE, PACKET_PLANE
from repro.scenario.results import Metrics, series_summary
from repro.units import parse_rate, parse_time

__all__ = ["Workload", "FlowWorkload", "IperfWorkload", "PingWorkload",
           "HttpLoadWorkload", "CurlSwarmWorkload", "CustomWorkload",
           "flow", "iperf", "ping", "udp_blast", "http_load", "curl_swarm",
           "custom"]

Number = Union[str, float, int]


def _rate(value: Optional[Number]) -> float:
    if value is None:
        return float("inf")
    return parse_rate(value)


def _time(value: Number) -> float:
    return parse_time(value)


def _throughput_summary(series, mean: float, *,
                        workload: Optional[Hashable] = None) -> dict:
    # An empty series (a flow that never got a sample) still has its mean;
    # series_summary itself refuses empty input, loudly.
    summary = {}
    if series:
        summary = {f"throughput_{name}": value
                   for name, value
                   in series_summary(series, workload=workload).items()
                   if name in ("min", "max")}
    summary["throughput_mean"] = mean
    return summary


class Workload:
    """Base: ``install`` before the run, ``collect``/``metrics`` after it."""

    key: Hashable
    kind: str = "custom"
    #: Data planes this workload needs; backends validate against these.
    planes: frozenset = frozenset()

    def install(self, engine) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def collect(self, engine, until: float):  # pragma: no cover - interface
        raise NotImplementedError

    def metrics(self, engine, until: float, result) -> Metrics:
        """A backend-independent record built from the collected result.

        Non-numeric results (tuples, stats objects, ...) get an *empty*
        summary rather than a fabricated 0.0, so comparisons skip them
        instead of reporting a fake zero deviation.
        """
        try:
            summary = {"value": float(result)}
        except (TypeError, ValueError):
            summary = {}
        return Metrics(key=self.key, kind=self.kind,
                       summary=summary, primary="value")

    def horizon(self) -> float:
        """Latest time this workload needs the run to reach (0 = open)."""
        return 0.0


@dataclass(frozen=True)
class FlowWorkload(Workload):
    """A bulk flow on the fluid plane; result is its mean throughput."""

    source: str
    destination: str
    demand: float = float("inf")
    protocol: str = "tcp"
    congestion_control: str = "cubic"
    start: float = 0.0
    stop: Optional[float] = None
    key: Hashable = None

    kind = "flow"
    planes = frozenset({BULK_PLANE})

    def __post_init__(self) -> None:
        if self.key is None:
            object.__setattr__(self, "key",
                               f"{self.source}->{self.destination}")

    def install(self, engine) -> None:
        engine.start_flow(self.key, self.source, self.destination,
                          protocol=self.protocol,
                          congestion_control=self.congestion_control,
                          demand=self.demand, start_time=self.start)
        if self.stop is not None:
            engine.sim.at(self.stop,
                          lambda: engine.stop_flow(self.key))

    def collect(self, engine, until: float) -> float:
        end = until if self.stop is None else min(self.stop, until)
        return engine.fluid.mean_throughput(self.key, self.start, end)

    def metrics(self, engine, until: float, result) -> Metrics:
        series = tuple(engine.fluid.series(self.key))
        return Metrics(key=self.key, kind=self.kind, throughput=series,
                       summary=_throughput_summary(series, float(result),
                                                   workload=self.key),
                       primary="throughput_mean")

    def horizon(self) -> float:
        return self.stop if self.stop is not None else 0.0


@dataclass(frozen=True)
class IperfWorkload(Workload):
    """An iperf3-like measurement: a timed flow reported as goodput."""

    source: str
    destination: str
    duration: float = 60.0
    demand: float = float("inf")
    protocol: str = "tcp"
    congestion_control: str = "cubic"
    warmup: float = 2.0
    start: float = 0.0
    key: Hashable = None

    kind = "iperf"
    planes = frozenset({BULK_PLANE})

    def __post_init__(self) -> None:
        if self.key is None:
            object.__setattr__(
                self, "key", f"iperf:{self.source}->{self.destination}")

    def install(self, engine) -> None:
        engine.start_flow(self.key, self.source, self.destination,
                          protocol=self.protocol,
                          congestion_control=self.congestion_control,
                          demand=self.demand, start_time=self.start)
        engine.sim.at(self.start + self.duration,
                      lambda: engine.stop_flow(self.key))

    def collect(self, engine, until: float) -> "IperfResult":
        from repro.apps.iperf import GOODPUT_FACTOR, IperfResult
        wire = engine.fluid.mean_throughput(
            self.key, self.start + self.warmup, self.start + self.duration)
        series = tuple((time, rate * GOODPUT_FACTOR)
                       for time, rate in engine.fluid.series(self.key))
        return IperfResult(mean_goodput=wire * GOODPUT_FACTOR,
                           mean_wire_rate=wire, duration=self.duration,
                           series=series)

    def metrics(self, engine, until: float, result) -> Metrics:
        summary = _throughput_summary(result.series, result.mean_goodput,
                                      workload=self.key)
        summary["wire_rate_mean"] = result.mean_wire_rate
        return Metrics(key=self.key, kind=self.kind,
                       throughput=tuple(result.series), summary=summary,
                       primary="throughput_mean")

    def horizon(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class PingWorkload(Workload):
    """Echo probing on the packet plane; result is the PingStats."""

    source: str
    destination: str
    count: int = 100
    interval: float = 0.010
    start: float = 0.0
    key: Hashable = None

    kind = "ping"
    planes = frozenset({PACKET_PLANE})

    def __post_init__(self) -> None:
        if self.key is None:
            object.__setattr__(
                self, "key", f"ping:{self.source}->{self.destination}")

    def install(self, engine) -> None:
        from repro.apps.ping import Pinger
        pinger = Pinger(engine.sim, engine.dataplane, self.source,
                        self.destination, count=self.count,
                        interval=self.interval)
        if self.start > 0:
            engine.sim.at(self.start, pinger.start)
        else:
            pinger.start()
        # Stashed per-engine so collect() can find its own stats even when
        # the same spec is run twice on different engines.
        engine.__dict__.setdefault("_scenario_pingers", {})[self.key] = pinger

    def collect(self, engine, until: float):
        return engine._scenario_pingers[self.key].stats

    def metrics(self, engine, until: float, result) -> Metrics:
        if getattr(result, "times", None):
            series = tuple(zip(result.times, result.rtts))
        else:
            # Stats without send stamps: space samples by the probe
            # interval (exact only when nothing was lost).
            series = tuple((self.start + index * self.interval, rtt)
                           for index, rtt in enumerate(result.rtts))
        summary = {}
        if series:
            summary = {f"latency_{name}": value
                       for name, value
                       in series_summary(series, workload=self.key).items()
                       if name in ("min", "max")}
        summary.update({"latency_mean": result.mean_rtt,
                        "latency_median": result.median_rtt,
                        "jitter": result.jitter,
                        "loss_rate": result.loss_rate})
        return Metrics(key=self.key, kind=self.kind, latency=series,
                       drops=result.lost, summary=summary,
                       primary="latency_mean")

    def horizon(self) -> float:
        return self.start + self.count * self.interval + 1.0


@dataclass(frozen=True)
class HttpLoadWorkload(Workload):
    """A wrk2-style closed-loop HTTP client against an embedded server.

    Installs an :class:`~repro.apps.http.HttpServer` on ``server`` and a
    :class:`~repro.apps.http.Wrk2Client` on ``source``; the result is the
    client's :class:`~repro.apps.http.HttpStats` (short-lived-flow
    throughput, the Figure 5/7 workload).
    """

    source: str
    server: str
    connections: int = 100
    start: float = 0.0
    stop: Optional[float] = None
    key: Hashable = None

    kind = "http"
    planes = frozenset({PACKET_PLANE})

    def __post_init__(self) -> None:
        if self.key is None:
            object.__setattr__(
                self, "key", f"http:{self.source}->{self.server}")

    def install(self, engine) -> None:
        from repro.apps import HttpServer, Wrk2Client
        server = HttpServer(engine.sim, engine.dataplane, self.server)
        client = Wrk2Client(engine.sim, engine.dataplane, self.source,
                            server, connections=self.connections,
                            start=self.start,
                            stop=(self.stop if self.stop is not None
                                  else float("inf")))
        engine.__dict__.setdefault("_scenario_http", {})[self.key] = client

    def collect(self, engine, until: float):
        return engine._scenario_http[self.key].stats

    def _window(self, until: float) -> float:
        end = until if self.stop is None else min(self.stop, until)
        return max(end - self.start, 1e-9)

    def metrics(self, engine, until: float, result) -> Metrics:
        mean = result.throughput(self._window(until))
        return Metrics(key=self.key, kind=self.kind,
                       summary={"throughput_mean": mean,
                                "requests": float(result.completed)},
                       primary="throughput_mean")

    def horizon(self) -> float:
        return self.stop if self.stop is not None else 0.0


@dataclass(frozen=True)
class CurlSwarmWorkload(Workload):
    """Connection-per-request curl clients (the Figure 6 workload)."""

    sources: Tuple[str, ...]
    server: str
    key: Hashable = None

    kind = "curl"
    planes = frozenset({PACKET_PLANE})

    def __post_init__(self) -> None:
        object.__setattr__(self, "sources", tuple(self.sources))
        if self.key is None:
            object.__setattr__(self, "key", f"curl:{self.server}")

    def install(self, engine) -> None:
        from repro.apps import CurlSwarm, HttpServer
        server = HttpServer(engine.sim, engine.dataplane, self.server)
        swarm = CurlSwarm(engine.sim, engine.dataplane, list(self.sources),
                          server)
        engine.__dict__.setdefault("_scenario_curl", {})[self.key] = swarm

    def collect(self, engine, until: float):
        return engine._scenario_curl[self.key].stats

    def metrics(self, engine, until: float, result) -> Metrics:
        mean = result.throughput(max(until, 1e-9))
        return Metrics(key=self.key, kind=self.kind,
                       summary={"throughput_mean": mean,
                                "requests": float(result.completed)},
                       primary="throughput_mean")


@dataclass(frozen=True)
class CustomWorkload(Workload):
    """An arbitrary application driven by caller-supplied callables.

    ``install_fn(system)`` may return state; ``collect_fn(system, until,
    state)`` turns it into the result.  The escape hatch for workloads the
    declarative vocabulary doesn't cover (e.g. the Figure 10 Cassandra
    cluster) while still flowing through the one backend lifecycle.
    """

    key: Hashable
    install_fn: Callable = None
    collect_fn: Callable = None
    needs: Tuple[str, ...] = (PACKET_PLANE,)
    duration: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "planes", frozenset(self.needs))

    def install(self, engine) -> None:
        state = self.install_fn(engine) if self.install_fn else None
        engine.__dict__.setdefault("_scenario_custom", {})[self.key] = state

    def collect(self, engine, until: float):
        state = engine._scenario_custom[self.key]
        if self.collect_fn is None:
            return state
        return self.collect_fn(engine, until, state)

    def horizon(self) -> float:
        return self.duration


def flow(source: str, destination: str, *, rate: Optional[Number] = None,
         protocol: str = "tcp", congestion_control: str = "cubic",
         start: Number = 0.0, stop: Optional[Number] = None,
         key: Hashable = None) -> FlowWorkload:
    """A long-lived bulk flow; ``rate`` caps its demand (default: greedy)."""
    return FlowWorkload(source, destination, demand=_rate(rate),
                        protocol=protocol,
                        congestion_control=congestion_control,
                        start=_time(start),
                        stop=None if stop is None else _time(stop), key=key)


def iperf(source: str, destination: str, *, duration: Number = 60.0,
          rate: Optional[Number] = None, protocol: str = "tcp",
          congestion_control: str = "cubic", warmup: Number = 2.0,
          start: Number = 0.0, key: Hashable = None) -> IperfWorkload:
    """An iperf3-like timed throughput measurement."""
    return IperfWorkload(source, destination, duration=_time(duration),
                         demand=_rate(rate), protocol=protocol,
                         congestion_control=congestion_control,
                         warmup=_time(warmup), start=_time(start), key=key)


def ping(source: str, destination: str, *, count: int = 100,
         interval: Number = 0.010, start: Number = 0.0,
         key: Hashable = None) -> PingWorkload:
    """``count`` echo requests at ``interval``; collects RTT statistics."""
    return PingWorkload(source, destination, count=int(count),
                        interval=_time(interval), start=_time(start), key=key)


def udp_blast(source: str, destination: str, rate: Number, *,
              start: Number = 0.0, stop: Optional[Number] = None,
              key: Hashable = None) -> FlowWorkload:
    """A constant-bit-rate UDP flood that never backs off (§3)."""
    return FlowWorkload(source, destination, demand=_rate(rate),
                        protocol="udp", start=_time(start),
                        stop=None if stop is None else _time(stop), key=key)


def http_load(source: str, server: str, *, connections: int = 100,
              start: Number = 0.0, stop: Optional[Number] = None,
              key: Hashable = None) -> HttpLoadWorkload:
    """A wrk2-style HTTP load phase (short-lived flows, Figures 5/7)."""
    return HttpLoadWorkload(source, server, connections=int(connections),
                            start=_time(start),
                            stop=None if stop is None else _time(stop),
                            key=key)


def curl_swarm(sources: Sequence[str], server: str, *,
               key: Hashable = None) -> CurlSwarmWorkload:
    """Connection-per-request curl clients against one server (Figure 6)."""
    return CurlSwarmWorkload(tuple(sources), server, key=key)


def custom(key: Hashable, install: Callable = None, *,
           collect: Callable = None, needs: Sequence[str] = (PACKET_PLANE,),
           duration: Number = 0.0) -> CustomWorkload:
    """An arbitrary workload: ``install(system) -> state`` then
    ``collect(system, until, state) -> result``."""
    return CustomWorkload(key=key, install_fn=install, collect_fn=collect,
                          needs=tuple(needs), duration=_time(duration))
