"""The unified results API: what every backend's run hands back.

Whatever system executed a scenario — the Kollaps engine or any of the
§5 baselines — the caller receives one :class:`ScenarioRun` carrying a
:class:`Metrics` record per workload: throughput/latency series, drop
counts and summary statistics, all in SI base units.  Runs from different
backends compare with :meth:`ScenarioRun.compare`, which is how the
cross-system experiments (Figures 5-7, Tables 2 and 4) measure deviation
from bare metal, and export with :meth:`ScenarioRun.to_dict` /
:meth:`ScenarioRun.to_csv`.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterator, List, Mapping, Optional, Tuple

__all__ = ["Metrics", "ScenarioRun", "RunComparison", "WorkloadDelta",
           "series_summary"]

Series = Tuple[Tuple[float, float], ...]


def _unknown_key(what: str, key, available, where: str) -> KeyError:
    """The lookup-miss error every results container raises: name the miss
    AND list what exists, so the caller never has to guess keys."""
    names = ", ".join(sorted(str(item) for item in available)) or "none"
    return KeyError(f"no {what} {key!r} in this {where}; "
                    f"available {what} keys: {names}")


def series_summary(series: Series, *,
                   workload: Optional[Hashable] = None) -> Dict[str, float]:
    """Mean/min/max over the values of a ``(time, value)`` series.

    An empty series has no summary: passing one raises a
    :class:`ValueError` naming the workload (when given), so the failure
    points at the measurement that produced nothing instead of surfacing
    as a bare ``min()/max()`` error deep in a caller.
    """
    values = [value for _time, value in series]
    if not values:
        where = (f"workload {workload!r}" if workload is not None
                 else "an unnamed workload")
        raise ValueError(
            f"cannot summarise an empty series for {where}: "
            "the run collected no samples (did the workload ever start, "
            "and did the run reach its horizon?)")
    return {"mean": sum(values) / len(values),
            "min": min(values), "max": max(values),
            "samples": float(len(values))}


@dataclass(frozen=True)
class Metrics:
    """One workload's measurements, backend-independent.

    ``summary`` holds the scalar statistics (``throughput_mean``,
    ``latency_mean``, ``loss_rate``, ...); ``primary`` names the headline
    statistic comparisons use (throughput for flows, latency for probes).
    """

    key: Hashable
    kind: str                        # "flow" | "iperf" | "ping" | "http" | ...
    throughput: Series = ()          # (time s, bits/s) samples
    latency: Series = ()             # (time s, round-trip s) samples
    drops: int = 0
    summary: Mapping[str, float] = field(default_factory=dict)
    primary: str = "throughput_mean"

    @property
    def value(self) -> float:
        """The headline statistic (what :meth:`ScenarioRun.compare` uses)."""
        return float(self.summary.get(self.primary, 0.0))

    def stat(self, name: str) -> float:
        try:
            return float(self.summary[name])
        except KeyError:
            raise _unknown_key("statistic", name, self.summary,
                              f"workload {self.key!r}") from None

    def to_dict(self) -> Dict[str, object]:
        return {"key": str(self.key), "kind": self.kind,
                "primary": self.primary, "drops": self.drops,
                "summary": dict(self.summary),
                "throughput": [list(sample) for sample in self.throughput],
                "latency": [list(sample) for sample in self.latency]}

    @classmethod
    def from_dict(cls, data: Mapping) -> "Metrics":
        """Rebuild a record exported by :meth:`to_dict` (JSON round-trip).

        Keys come back as strings (``to_dict`` stringifies them), which is
        what campaign stores and cross-process runs operate on.
        """
        return cls(key=data["key"], kind=data.get("kind", "custom"),
                   throughput=tuple((float(time), float(value))
                                    for time, value
                                    in data.get("throughput", ())),
                   latency=tuple((float(time), float(value))
                                 for time, value in data.get("latency", ())),
                   drops=int(data.get("drops", 0)),
                   summary=dict(data.get("summary", {})),
                   primary=data.get("primary", "throughput_mean"))


@dataclass(frozen=True)
class WorkloadDelta:
    """One workload's headline statistic on two backends, side by side."""

    key: Hashable
    metric: str
    baseline: float
    other: float

    @property
    def delta(self) -> float:
        return self.other - self.baseline

    @property
    def relative(self) -> float:
        """(other - baseline) / baseline; 0 when both are zero."""
        if self.baseline == 0.0:
            return 0.0 if self.other == 0.0 else float("inf")
        return self.other / self.baseline - 1.0

    @property
    def deviation(self) -> float:
        """|relative| — the paper's 'deviation from bare metal' metric."""
        return abs(self.relative)


@dataclass(frozen=True)
class RunComparison:
    """Side-by-side deltas between two runs of the same scenario."""

    baseline_backend: str
    other_backend: str
    deltas: Tuple[WorkloadDelta, ...]

    def __iter__(self) -> Iterator[WorkloadDelta]:
        return iter(self.deltas)

    def __getitem__(self, key: Hashable) -> WorkloadDelta:
        for delta in self.deltas:
            if delta.key == key:
                return delta
        raise _unknown_key("workload", key,
                           [delta.key for delta in self.deltas],
                           "comparison")

    def deviation(self, key: Hashable) -> float:
        """|relative delta| of one workload's headline statistic."""
        return self[key].deviation

    def to_dict(self) -> Dict[str, object]:
        return {"baseline": self.baseline_backend,
                "other": self.other_backend,
                "workloads": {str(delta.key): {
                    "metric": delta.metric,
                    "baseline": delta.baseline,
                    "other": delta.other,
                    "delta": delta.delta,
                    "relative": delta.relative}
                    for delta in self.deltas}}

    def __str__(self) -> str:
        lines = [f"{self.baseline_backend} vs {self.other_backend}"]
        for delta in self.deltas:
            lines.append(f"  {delta.key}: {delta.baseline:g} -> "
                         f"{delta.other:g} ({delta.relative:+.2%})")
        return "\n".join(lines)


@dataclass(frozen=True)
class ScenarioRun:
    """Outcome of one :meth:`CompiledScenario.run` on some backend.

    ``seed``, ``machines`` and ``params`` are run provenance: the
    effective RNG seed and cluster size the executing backend saw, plus
    the campaign grid parameters (empty outside a campaign).  They travel
    through :meth:`to_dict` so any exported run is attributable.
    """

    engine: object                       # the live system, fully run
    until: float
    results: Dict[Hashable, object]      # workload key -> collected result
    backend: str = "kollaps"
    scenario: str = ""
    metrics: Dict[Hashable, Metrics] = field(default_factory=dict)
    seed: Optional[int] = None
    machines: Optional[int] = None
    params: Mapping[str, object] = field(default_factory=dict)

    def __getitem__(self, key: Hashable):
        try:
            return self.results[key]
        except KeyError:
            raise _unknown_key("workload", key, self.results,
                               "run") from None

    def __contains__(self, key: Hashable) -> bool:
        return key in self.results

    def keys(self) -> List[Hashable]:
        return list(self.results)

    def metric(self, key: Hashable) -> Metrics:
        try:
            return self.metrics[key]
        except KeyError:
            raise _unknown_key("workload", key, self.results,
                               "run") from None

    # ----------------------------------------------------------- comparison
    def compare(self, other: "ScenarioRun") -> RunComparison:
        """Per-workload deltas against another run of the same scenario.

        ``self`` is the baseline (deviations are relative to it); only
        workloads present in both runs *with* a headline statistic are
        compared (a custom workload returning non-numeric data has none).
        """
        deltas = []
        for key, metrics in self.metrics.items():
            other_metrics = other.metrics.get(key)
            if other_metrics is None:
                continue
            if metrics.primary not in metrics.summary or \
                    other_metrics.primary not in other_metrics.summary:
                continue
            deltas.append(WorkloadDelta(
                key=key, metric=metrics.primary,
                baseline=metrics.value, other=other_metrics.value))
        return RunComparison(baseline_backend=self.backend,
                             other_backend=other.backend,
                             deltas=tuple(deltas))

    # --------------------------------------------------------------- export
    def to_dict(self) -> Dict[str, object]:
        return {"scenario": self.scenario, "backend": self.backend,
                "until": self.until,
                "seed": self.seed, "machines": self.machines,
                "params": dict(self.params),
                "workloads": {str(key): metrics.to_dict()
                              for key, metrics in self.metrics.items()}}

    @classmethod
    def from_dict(cls, data: Mapping) -> "ScenarioRun":
        """Rebuild a run exported by :meth:`to_dict` (JSON round-trip).

        Only what ``to_dict`` exports survives: metrics, provenance and
        identity.  The live ``engine`` and raw per-workload ``results``
        are gone — this is the form campaign stores and worker processes
        hand back, good for aggregation and :meth:`compare` but not for
        poking at application state.
        """
        metrics = {key: Metrics.from_dict(record)
                   for key, record in data.get("workloads", {}).items()}
        seed = data.get("seed")
        machines = data.get("machines")
        return cls(engine=None, until=float(data.get("until", 0.0)),
                   results={key: record for key, record in metrics.items()},
                   backend=data.get("backend", "kollaps"),
                   scenario=data.get("scenario", ""), metrics=metrics,
                   seed=None if seed is None else int(seed),
                   machines=None if machines is None else int(machines),
                   params=dict(data.get("params", {})))

    def to_csv(self) -> str:
        """Flat CSV: summary rows then series samples, per workload.

        Columns are ``workload,series,time,value``; summary statistics
        appear as ``summary.<name>`` rows with an empty time column.
        """
        out = io.StringIO()
        out.write("workload,series,time,value\n")
        for key in sorted(self.metrics, key=str):
            metrics = self.metrics[key]
            name = str(key).replace(",", ";")
            for stat in sorted(metrics.summary):
                out.write(f"{name},summary.{stat},,"
                          f"{metrics.summary[stat]!r}\n")
            out.write(f"{name},summary.drops,,{metrics.drops}\n")
            for series_name, series in (("throughput", metrics.throughput),
                                        ("latency", metrics.latency)):
                for time, value in series:
                    out.write(f"{name},{series_name},{time!r},{value!r}\n")
        return out.getvalue()
