"""Builder-producing topology generators for the evaluation workloads.

These are the :mod:`repro.topogen` generators re-implemented as front-ends
of the unified Scenario API: each returns an *uncompiled*
:class:`~repro.scenario.builder.Scenario`, so callers can chain events,
workloads and deployment settings before compiling.  The legacy
``repro.topogen`` functions are thin shims that compile these builders and
return the bare :class:`~repro.topology.model.Topology`.

Construction order (and therefore every seeded RNG draw and link id) is
identical to the historical generators, keeping all seeded topologies
bit-for-bit reproducible.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence, Tuple

from repro.scenario.builder import Scenario

__all__ = [
    "point_to_point",
    "dumbbell",
    "star",
    "tree",
    "scale_free",
    "aws_star",
    "aws_mesh",
    "throttling",
    "fat_tree",
    "jellyfish",
    "AWS_REGION_LATENCY_FROM_US_EAST_1",
    "INTER_REGION_RTT_MS",
    "CLIENT_ACCESS_PROFILE",
    "region_rtt",
]


# --------------------------------------------------------------------------
# Elementary shapes (micro-benchmarks, §5.1–5.3).
# --------------------------------------------------------------------------
def point_to_point(bandwidth: float, latency: float = 0.001, *,
                   jitter: float = 0.0, loss: float = 0.0,
                   client: str = "client", server: str = "server") -> Scenario:
    """Two services joined by a single switch (the Table 2 / §5.1 shape).

    ``latency``, ``jitter`` and ``loss`` are end-to-end: each half link gets
    a share such that path composition (sum, root-sum-square, 1-product)
    recovers the requested values.
    """
    half_jitter = jitter / 2.0 ** 0.5
    half_loss = 1.0 - (1.0 - loss) ** 0.5
    return (Scenario.build("point-to-point")
            .service(client, image="iperf")
            .service(server, image="iperf")
            .bridge("s0")
            .link(client, "s0", latency=latency / 2.0, up=bandwidth,
                  jitter=half_jitter, loss=half_loss)
            .link("s0", server, latency=latency / 2.0, up=bandwidth,
                  jitter=half_jitter, loss=half_loss))


def dumbbell(pairs: int, *, access_bandwidth: float = 1e9,
             shared_bandwidth: float = 50e6, access_latency: float = 0.001,
             shared_latency: float = 0.010) -> Scenario:
    """``pairs`` clients one side, ``pairs`` servers the other; one shared
    link between the two bridges (the §5.2 metadata-scalability workload)."""
    if pairs < 1:
        raise ValueError("a dumbbell needs at least one pair")
    builder = (Scenario.build(f"dumbbell-{pairs}")
               .bridge("left").bridge("right")
               .link("left", "right", latency=shared_latency,
                     up=shared_bandwidth))
    for index in range(pairs):
        client = f"client{index}"
        server = f"server{index}"
        builder.service(client, image="iperf").service(server, image="iperf")
        builder.link(client, "left", latency=access_latency,
                     up=access_bandwidth)
        builder.link("right", server, latency=access_latency,
                     up=access_bandwidth)
    return builder


def star(leaves: Sequence[str], *, bandwidth: float = 1e9,
         latency: float = 0.001, hub: str = "hub") -> Scenario:
    """All ``leaves`` hang off one central bridge."""
    builder = Scenario.build("star").bridge(hub)
    for leaf in leaves:
        builder.service(leaf)
        builder.link(leaf, hub, latency=latency, up=bandwidth)
    return builder


def tree(depth: int, fanout: int, *, bandwidth: float = 1e9,
         latency: float = 0.001) -> Scenario:
    """A complete switch tree with services at the leaves."""
    if depth < 1:
        raise ValueError("tree depth must be >= 1")
    builder = Scenario.build(f"tree-d{depth}-f{fanout}").bridge("b0.0")
    previous = ["b0.0"]
    for level in range(1, depth):
        current = []
        for parent_index, parent in enumerate(previous):
            for child in range(fanout):
                name = f"b{level}.{parent_index * fanout + child}"
                builder.bridge(name)
                builder.link(parent, name, latency=latency, up=bandwidth)
                current.append(name)
        previous = current
    leaf_index = 0
    for parent in previous:
        for _ in range(fanout):
            name = f"leaf{leaf_index}"
            builder.service(name)
            builder.link(parent, name, latency=latency, up=bandwidth)
            leaf_index += 1
    return builder


# --------------------------------------------------------------------------
# Scale-free Internet-like topologies (§5.5, Table 4).
# --------------------------------------------------------------------------
def scale_free(total_nodes: int, *, seed: int = 0,
               switch_fraction: float = 1.0 / 3.0,
               attachment_edges: int = 2,
               backbone_bandwidth: float = 1e9,
               access_bandwidth: float = 100e6,
               backbone_latency_range=(0.002, 0.010),
               access_latency_range=(0.001, 0.002)) -> Scenario:
    """Barabási–Albert preferential attachment: a switch backbone plus
    end-nodes attaching preferentially by degree (1000 elements =
    666 end-nodes + 334 switches, matching Table 4)."""
    if total_nodes < 4:
        raise ValueError("scale-free topology needs at least 4 elements")
    rng = random.Random(seed)
    switch_count = max(2, round(total_nodes * switch_fraction))
    node_count = total_nodes - switch_count

    builder = Scenario.build(f"scale-free-{total_nodes}")
    switches = [f"sw{i}" for i in range(switch_count)]
    for name in switches:
        builder.bridge(name)

    def backbone_link(source: str, destination: str) -> None:
        builder.link(source, destination,
                     latency=rng.uniform(*backbone_latency_range),
                     up=backbone_bandwidth)

    # `attachment_targets` holds one entry per incident edge, so sampling
    # uniformly from it is degree-proportional sampling.
    attachment_targets = [switches[0], switches[1]]
    backbone_link(switches[0], switches[1])
    for index in range(2, switch_count):
        new_switch = switches[index]
        edges = min(attachment_edges, index)
        chosen = set()
        while len(chosen) < edges:
            chosen.add(rng.choice(attachment_targets))
        for target in sorted(chosen):
            backbone_link(new_switch, target)
            attachment_targets.append(target)
            attachment_targets.append(new_switch)

    # End-nodes attach preferentially, like stub networks joining the core.
    for index in range(node_count):
        name = f"n{index}"
        builder.service(name)
        target = rng.choice(attachment_targets)
        builder.link(name, target,
                     latency=rng.uniform(*access_latency_range),
                     up=access_bandwidth)
    return builder


# --------------------------------------------------------------------------
# Amazon EC2 geo-distributed topologies (Table 3, §5.6).
# --------------------------------------------------------------------------
# Table 3: destination -> (one-way latency ms, measured EC2 jitter ms).
AWS_REGION_LATENCY_FROM_US_EAST_1: Dict[str, Tuple[float, float]] = {
    "us-east-1": (6.0, 0.5607),
    "us-east-2": (17.0, 1.2411),
    "ca-central-1": (24.0, 1.2451),
    "us-west-1": (70.0, 1.3627),
    "eu-west-1": (78.0, 1.2000),
    "eu-west-2": (85.0, 1.6609),
    "eu-north-1": (119.0, 1.2850),
    "ap-northeast-1": (170.0, 1.4217),
    "ap-south-1": (194.0, 2.0233),
    "ap-northeast-2": (200.0, 1.8364),
    "ap-southeast-2": (208.0, 1.4277),
    "ap-southeast-1": (249.0, 1.3728),
}

# Round-trip latency (ms) between the five regions of [78]; symmetric.
INTER_REGION_RTT_MS: Dict[Tuple[str, str], float] = {
    ("virginia", "oregon"): 81.0,
    ("virginia", "ireland"): 81.0,
    ("virginia", "saopaulo"): 146.0,
    ("virginia", "sydney"): 229.0,
    ("oregon", "ireland"): 161.0,
    ("oregon", "saopaulo"): 182.0,
    ("oregon", "sydney"): 161.0,
    ("ireland", "saopaulo"): 191.0,
    ("ireland", "sydney"): 309.0,
    ("saopaulo", "sydney"): 326.0,
}

# Additional regions used by the Cassandra deployment (§5.6) and the
# what-if scenario (Figure 11): Frankfurt <-> Sydney and Frankfurt <-> Seoul.
INTER_REGION_RTT_MS.update({
    ("frankfurt", "sydney"): 290.0,
    ("frankfurt", "seoul"): 145.0,  # the "halved latency" move of Figure 11
    ("frankfurt", "virginia"): 89.0,
    ("frankfurt", "ireland"): 25.0,
})


def region_rtt(a: str, b: str) -> float:
    """Symmetric lookup into :data:`INTER_REGION_RTT_MS` (seconds)."""
    if a == b:
        return 0.002  # intra-region round trip
    value = INTER_REGION_RTT_MS.get((a, b)) or INTER_REGION_RTT_MS.get((b, a))
    if value is None:
        raise KeyError(f"no RTT data between {a!r} and {b!r}")
    return value / 1000.0


def aws_star(*, bandwidth: float = 1e9, source: str = "us-east-1",
             symmetric_jitter: bool = False) -> Scenario:
    """One probe service per Table 3 destination, all reached from ``source``.

    Each destination hangs off its own bridge so every pair
    ``(probe, target)`` traverses exactly the Table 3 latency and jitter.
    By default jitter rides only the forward direction, so an echo RTT's
    standard deviation equals the configured value; ``symmetric_jitter``
    jitters both directions, composing to sqrt(2) of the configured value.
    """
    builder = (Scenario.build("aws-star")
               .service("probe", image="ping")
               .bridge("igw")
               .link("probe", "igw", latency=0.0001, up=bandwidth))
    for region, (latency_ms, jitter_ms) in \
            AWS_REGION_LATENCY_FROM_US_EAST_1.items():
        service = f"target-{region}"
        builder.service(service, image="ping")
        if symmetric_jitter:
            builder.link("igw", service, latency=latency_ms / 1000.0,
                         up=bandwidth, jitter=jitter_ms / 1000.0)
        else:
            # Jitter only on the forward direction: two unidirectional
            # declarations (the builder's up/down shorthand is symmetric
            # in everything but bandwidth).
            builder.link("igw", service, latency=latency_ms / 1000.0,
                         up=bandwidth, jitter=jitter_ms / 1000.0,
                         bidirectional=False)
            builder.link(service, "igw", latency=latency_ms / 1000.0,
                         up=bandwidth, bidirectional=False)
    return builder


def aws_mesh(regions: Sequence[str], services_per_region: int = 1, *,
             bandwidth: float = 1e9, jitter_ms: float = 1.5,
             service_prefix: str = "node",
             rtt_override: Optional[Dict[Tuple[str, str], float]] = None,
             rtt_scale: float = 1.0) -> Scenario:
    """A geo-distributed deployment: one bridge per region, full mesh between.

    Inter-region links carry half the region pair's RTT in each direction;
    ``rtt_scale`` supports the Figure 11 what-if (halved latencies) and
    ``rtt_override`` lets callers substitute measured matrices.  Services
    are named ``{prefix}-{region}-{index}``.
    """
    builder = Scenario.build("aws-mesh")
    for region in regions:
        builder.bridge(f"br-{region}")
        for index in range(services_per_region):
            name = f"{service_prefix}-{region}-{index}"
            builder.service(name)
            builder.link(name, f"br-{region}", latency=0.0005, up=bandwidth)
    for i, region_a in enumerate(regions):
        for region_b in regions[i + 1:]:
            if rtt_override is not None:
                rtt = (rtt_override.get((region_a, region_b))
                       or rtt_override[(region_b, region_a)]) / 1000.0
            else:
                rtt = region_rtt(region_a, region_b)
            rtt *= rtt_scale
            builder.link(f"br-{region_a}", f"br-{region_b}",
                         latency=rtt / 2.0, up=bandwidth,
                         jitter=jitter_ms / 1000.0 / 2.0)
    return builder


# --------------------------------------------------------------------------
# The decentralized-throttling topology of §5.4 (Figure 8).
# --------------------------------------------------------------------------
# (bandwidth Mb/s, latency ms) for clients 1..3 on each side.
CLIENT_ACCESS_PROFILE = ((50e6, 0.010), (50e6, 0.005), (10e6, 0.005))


def throttling() -> Scenario:
    """Six clients behind two bridges, six servers behind a third:
    C1–C3 on B1 and C4–C6 on B2 with the 50/50/10 Mb/s access profile,
    every server on B3 at 50 Mb/s, B1—B2 at 50 Mb/s, B2—B3 at 100 Mb/s."""
    builder = Scenario.build("section54").bridges("b1", "b2", "b3")
    for index in range(1, 7):
        builder.service(f"c{index}", image="iperf-client")
        builder.service(f"s{index}", image="iperf-server")
    # Clients 1-3 on B1, clients 4-6 on B2, same access profile.
    for offset, bridge in ((0, "b1"), (3, "b2")):
        for position, (bandwidth, latency) in enumerate(CLIENT_ACCESS_PROFILE):
            builder.link(f"c{offset + position + 1}", bridge,
                         latency=latency, up=bandwidth)
    for index in range(1, 7):
        builder.link(f"s{index}", "b3", latency=0.005, up=50e6)
    builder.link("b1", "b2", latency=0.010, up=50e6)
    builder.link("b2", "b3", latency=0.010, up=100e6)
    return builder


# --------------------------------------------------------------------------
# Data-center fabrics (§6/§7 time-dilation studies).
# --------------------------------------------------------------------------
def fat_tree(k: int, *, bandwidth: float = 10e9, latency: float = 25e-6,
             hosts_per_edge: Optional[int] = None) -> Scenario:
    """A k-ary fat-tree [Al-Fares et al., SIGCOMM'08] with hosts on the
    edge layer; ``hosts_per_edge`` defaults to ``k/2`` (the full tree)."""
    if k < 2 or k % 2:
        raise ValueError(f"fat-tree arity must be even and >= 2, got {k}")
    half = k // 2
    if hosts_per_edge is None:
        hosts_per_edge = half
    if not 0 < hosts_per_edge <= half:
        raise ValueError(
            f"hosts_per_edge must be in 1..{half}, got {hosts_per_edge}")
    builder = Scenario.build(f"fat-tree-k{k}")

    cores = []
    for index in range(half * half):
        core = f"core{index}"
        builder.bridge(core)
        cores.append(core)

    host_index = 0
    for pod in range(k):
        aggregations = []
        for a in range(half):
            name = f"p{pod}-agg{a}"
            builder.bridge(name)
            aggregations.append(name)
            # Each aggregation switch connects to `half` cores: the a-th
            # aggregation switch uses cores [a*half, (a+1)*half).
            for c in range(half):
                builder.link(name, cores[a * half + c], latency=latency,
                             up=bandwidth)
        for e in range(half):
            edge = f"p{pod}-edge{e}"
            builder.bridge(edge)
            for aggregation in aggregations:
                builder.link(edge, aggregation, latency=latency, up=bandwidth)
            for _ in range(hosts_per_edge):
                host = f"h{host_index}"
                host_index += 1
                builder.service(host, image="workload")
                builder.link(host, edge, latency=latency, up=bandwidth)
    return builder


def jellyfish(switches: int, degree: int, hosts_per_switch: int = 1, *,
              bandwidth: float = 10e9, latency: float = 25e-6,
              seed: int = 0) -> Scenario:
    """A jellyfish [Singla et al., NSDI'12]: random ``degree``-regular
    switch graph, hosts attached; deterministic for a given ``seed``.

    Uses the standard incremental construction: repeatedly join random
    pairs of switches with free ports; when stuck, break an existing link
    to free ports up.
    """
    if switches < degree + 1:
        raise ValueError("need more switches than the degree")
    if degree < 2:
        raise ValueError(f"degree must be >= 2, got {degree}")
    rng = random.Random(seed)
    builder = Scenario.build(f"jellyfish-s{switches}-d{degree}")

    names = [f"sw{index}" for index in range(switches)]
    for name in names:
        builder.bridge(name)

    free = {name: degree for name in names}
    edges = set()

    def connect(first: str, second: str) -> None:
        edges.add((min(first, second), max(first, second)))
        builder.link(first, second, latency=latency, up=bandwidth)
        free[first] -= 1
        free[second] -= 1

    def disconnect(first: str, second: str) -> None:
        edges.discard((min(first, second), max(first, second)))
        builder.unlink(first, second)
        free[first] += 1
        free[second] += 1

    stuck = 0
    while True:
        candidates = [name for name in names if free[name] > 0]
        open_pairs = [(a, b) for i, a in enumerate(candidates)
                      for b in candidates[i + 1:]
                      if (a, b) not in edges and (b, a) not in edges]
        if not open_pairs:
            # Fewer than two joinable port owners left: rewire if a node
            # still has 2+ free ports, else done.
            rich = [name for name in candidates if free[name] >= 2]
            if not rich or not edges or stuck > switches * degree:
                break
            stuck += 1
            node = rng.choice(rich)

            def undirected(first: str, second: str):
                return (min(first, second), max(first, second))

            # Rewire an edge neither endpoint of which already touches
            # the node (otherwise reconnecting would duplicate a link).
            rewirable = [edge for edge in sorted(edges)
                         if node not in edge
                         and undirected(node, edge[0]) not in edges
                         and undirected(node, edge[1]) not in edges]
            if not rewirable:
                continue
            victim = rng.choice(rewirable)
            disconnect(*victim)
            connect(node, victim[0])
            connect(node, victim[1])
            continue
        stuck = 0
        connect(*rng.choice(sorted(open_pairs)))

    host_index = 0
    for name in names:
        for _ in range(hosts_per_switch):
            host = f"h{host_index}"
            host_index += 1
            builder.service(host, image="workload")
            builder.link(host, name, latency=latency, up=bandwidth)
    return builder
