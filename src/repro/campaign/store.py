"""The persistent, resumable campaign result store.

One directory per campaign (``campaigns/<name>/`` by default) holding:

* ``results.jsonl`` — one JSON record per executed point, appended as
  points complete and flushed line-by-line, so a killed campaign loses at
  most the point that was in flight.  Records are keyed by the point's
  content hash (:meth:`~repro.campaign.grid.Point.digest`); duplicate
  hashes resolve last-wins, which is how ``--fresh`` reruns supersede old
  results without rewriting history.
* ``manifest.json`` — the campaign definition that produced the records,
  rewritten at the start of every run (provenance, not identity: points
  are matched by hash, so editing the grid simply makes the new points
  run while untouched ones still resume).

A half-written trailing line (the in-flight point at kill time) is
skipped on load rather than poisoning the resume.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Mapping, Optional

__all__ = ["ResultStore", "RESUMABLE_STATUSES"]

#: Statuses a resumed run trusts and skips.  ``error`` is deliberately
#: absent: a crashed point (a bug, a flaky dependency) retries on resume,
#: while an ``incompatible`` point is a deterministic capability verdict
#: that re-running cannot change.
RESUMABLE_STATUSES = ("ok", "incompatible")


class ResultStore:
    """Append-only JSONL records for one campaign, addressed by point hash."""

    def __init__(self, directory: str) -> None:
        self.directory = str(directory)
        self.results_path = os.path.join(self.directory, "results.jsonl")
        self.manifest_path = os.path.join(self.directory, "manifest.json")

    # ---------------------------------------------------------------- write
    def append(self, record: Mapping) -> None:
        """Persist one point record (must carry its ``hash``) durably."""
        if "hash" not in record:
            raise ValueError("a store record needs the point 'hash'")
        os.makedirs(self.directory, exist_ok=True)
        with open(self.results_path, "a", encoding="utf-8") as handle:
            # default=repr mirrors the digest path's canonical JSON: any
            # grid value the hash accepted must also store (resume keys on
            # the precomputed 'hash', never on re-parsed params).
            handle.write(json.dumps(record, sort_keys=True, default=repr)
                         + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def write_manifest(self, spec: Mapping) -> None:
        os.makedirs(self.directory, exist_ok=True)
        with open(self.manifest_path, "w", encoding="utf-8") as handle:
            json.dump(spec, handle, indent=2, sort_keys=True)
            handle.write("\n")

    # ----------------------------------------------------------------- read
    def load(self) -> Dict[str, dict]:
        """hash -> latest record; corrupt (half-written) lines are skipped."""
        records: Dict[str, dict] = {}
        if not os.path.exists(self.results_path):
            return records
        with open(self.results_path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue        # the interrupted point's partial write
                if isinstance(record, dict) and "hash" in record:
                    records[record["hash"]] = record
        return records

    def manifest(self) -> Optional[dict]:
        if not os.path.exists(self.manifest_path):
            return None
        with open(self.manifest_path, encoding="utf-8") as handle:
            return json.load(handle)

    def completed(self, statuses: Iterable[str] = RESUMABLE_STATUSES
                  ) -> Dict[str, dict]:
        """hash -> record for every point a resumed run may skip."""
        wanted = set(statuses)
        return {digest: record for digest, record in self.load().items()
                if record.get("status") in wanted}

    # --------------------------------------------------------------- status
    def status_counts(self, points,
                      records: Optional[Dict[str, dict]] = None
                      ) -> Dict[str, int]:
        """How this campaign's points stand: per-status counts + missing.

        Pass preloaded ``records`` (from :meth:`load`) to avoid re-parsing
        a large store when combining with :meth:`orphans`.
        """
        records = self.load() if records is None else records
        counts: Dict[str, int] = {"ok": 0, "incompatible": 0, "error": 0,
                                  "missing": 0}
        for point in points:
            record = records.get(point.digest())
            if record is None:
                counts["missing"] += 1
            else:
                status = record.get("status", "error")
                counts[status] = counts.get(status, 0) + 1
        return counts

    def orphans(self, points,
                records: Optional[Dict[str, dict]] = None) -> List[str]:
        """Stored hashes no current point claims (grid edits leave these)."""
        records = self.load() if records is None else records
        live = {point.digest() for point in points}
        return sorted(digest for digest in records if digest not in live)
