"""The persistent, resumable campaign result store.

One directory per campaign (``campaigns/<name>/`` by default) holding:

* ``results.jsonl`` — one JSON record per executed point, appended as
  points complete and flushed line-by-line, so a killed campaign loses at
  most the point that was in flight.  Records are keyed by the point's
  content hash (:meth:`~repro.campaign.grid.Point.digest`); duplicate
  hashes resolve last-wins, which is how ``--fresh`` reruns supersede old
  results without rewriting history.
* ``manifest.json`` — the campaign definition that produced the records,
  rewritten at the start of every run (provenance, not identity: points
  are matched by hash, so editing the grid simply makes the new points
  run while untouched ones still resume).

A half-written trailing line (the in-flight point at kill time) is
skipped on load rather than poisoning the resume.
"""

from __future__ import annotations

import glob
import json
import os
from typing import Dict, Iterable, List, Mapping, Optional

__all__ = ["ResultStore", "RESUMABLE_STATUSES", "encode_record",
           "read_records"]


def encode_record(record: Mapping) -> str:
    """One store line: canonical JSON with the digest path's repr fallback.

    default=repr mirrors the digest path's canonical JSON: any grid value
    the hash accepted must also store (resume keys on the precomputed
    'hash', never on re-parsed params).
    """
    if "hash" not in record:
        raise ValueError("a store record needs the point 'hash'")
    return json.dumps(record, sort_keys=True, default=repr) + "\n"


def read_records(path: str) -> Dict[str, dict]:
    """hash -> latest record from one JSONL file, last-wins.

    Corrupt lines — the half-written tail of a killed writer, whether a
    campaign process or a fleet worker's shard — are skipped rather than
    poisoning the load.
    """
    records: Dict[str, dict] = {}
    if not os.path.exists(path):
        return records
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue        # the interrupted writer's partial line
            if isinstance(record, dict) and "hash" in record:
                records[record["hash"]] = record
    return records

#: Statuses a resumed run trusts and skips.  ``error`` is deliberately
#: absent: a crashed point (a bug, a flaky dependency) retries on resume,
#: while an ``incompatible`` point is a deterministic capability verdict
#: that re-running cannot change.
RESUMABLE_STATUSES = ("ok", "incompatible")


class ResultStore:
    """Append-only JSONL records for one campaign, addressed by point hash."""

    def __init__(self, directory: str) -> None:
        self.directory = str(directory)
        self.results_path = os.path.join(self.directory, "results.jsonl")
        self.manifest_path = os.path.join(self.directory, "manifest.json")

    # ---------------------------------------------------------------- write
    def append(self, record: Mapping) -> None:
        """Persist one point record (must carry its ``hash``) durably."""
        self.append_many([record])

    def append_many(self, records: Iterable[Mapping]) -> int:
        """Persist a batch of records under one open + one fsync.

        The per-record :meth:`append` fsync is the right durability for a
        live sweep (lose at most the in-flight point), but a bulk path —
        the fleet coordinator merging a whole shard, a store migration —
        would pay one disk barrier per record for no extra safety: the
        batch is all-or-nothing anyway.  Returns the number written.
        """
        lines = [encode_record(record) for record in records]
        if not lines:
            return 0
        os.makedirs(self.directory, exist_ok=True)
        with open(self.results_path, "a", encoding="utf-8") as handle:
            handle.writelines(lines)
            handle.flush()
            os.fsync(handle.fileno())
        return len(lines)

    def write_manifest(self, spec: Mapping) -> None:
        os.makedirs(self.directory, exist_ok=True)
        with open(self.manifest_path, "w", encoding="utf-8") as handle:
            json.dump(spec, handle, indent=2, sort_keys=True)
            handle.write("\n")

    # ----------------------------------------------------------------- read
    def load(self) -> Dict[str, dict]:
        """hash -> latest record; corrupt (half-written) lines are skipped."""
        return read_records(self.results_path)

    def shard_paths(self) -> List[str]:
        """Per-worker shard files a distributed run left under this store."""
        return sorted(glob.glob(os.path.join(self.directory, "shards",
                                             "*.jsonl")))

    def manifest(self) -> Optional[dict]:
        if not os.path.exists(self.manifest_path):
            return None
        with open(self.manifest_path, encoding="utf-8") as handle:
            return json.load(handle)

    def completed(self, statuses: Iterable[str] = RESUMABLE_STATUSES
                  ) -> Dict[str, dict]:
        """hash -> record for every point a resumed run may skip."""
        wanted = set(statuses)
        return {digest: record for digest, record in self.load().items()
                if record.get("status") in wanted}

    # --------------------------------------------------------------- status
    def status_counts(self, points,
                      records: Optional[Dict[str, dict]] = None
                      ) -> Dict[str, int]:
        """How this campaign's points stand: per-status counts + missing.

        Pass preloaded ``records`` (from :meth:`load`) to avoid re-parsing
        a large store when combining with :meth:`orphans`.
        """
        records = self.load() if records is None else records
        counts: Dict[str, int] = {"ok": 0, "incompatible": 0, "error": 0,
                                  "missing": 0}
        for point in points:
            record = records.get(point.digest())
            if record is None:
                counts["missing"] += 1
            else:
                status = record.get("status", "error")
                counts[status] = counts.get(status, 0) + 1
        return counts

    def orphans(self, points,
                records: Optional[Dict[str, dict]] = None) -> List[str]:
        """Stored hashes no current point claims (grid edits leave these)."""
        records = self.load() if records is None else records
        live = {point.digest() for point in points}
        return sorted(digest for digest in records if digest not in live)

    # ----------------------------------------------------------- compaction
    def _record_lines(self, path: str) -> int:
        count = 0
        if os.path.exists(path):
            with open(path, encoding="utf-8") as handle:
                count = sum(1 for line in handle if line.strip())
        return count

    def compact(self) -> Dict[str, int]:
        """Garbage-collect the store: one record per hash, no shard files.

        A long-lived sweep accumulates superseded lines — ``--fresh``
        reruns, retried errors, a fleet's reassigned leases — plus the
        per-worker shard files a distributed run already merged into
        ``results.jsonl``.  ``compact()`` rewrites ``results.jsonl`` with
        exactly the last-wins survivors (in stable hash order), first
        salvaging any shard record the coordinator died before merging,
        then deletes the shard files.  The rewrite goes through a
        temporary file + ``os.replace``, so a crash mid-compaction leaves
        either the old or the new store, never a truncated one.

        Returns the reclamation report: ``records_kept``,
        ``records_dropped`` (superseded or duplicate lines removed),
        ``records_salvaged`` (unmerged shard records adopted),
        ``shards_removed`` and ``bytes_reclaimed``.  Running it twice is a
        no-op: the second pass keeps every record and reclaims 0 bytes.

        Only compact a quiescent campaign — a live fleet is still
        appending to the shards this deletes.
        """
        shard_files = self.shard_paths()
        lines_before = self._record_lines(self.results_path) + sum(
            self._record_lines(path) for path in shard_files)
        bytes_before = sum(
            os.path.getsize(path)
            for path in [self.results_path] + shard_files
            if os.path.exists(path))
        records = self.load()
        salvaged = 0
        for path in shard_files:
            for digest, record in read_records(path).items():
                canonical = records.get(digest)
                if canonical is None:
                    records[digest] = record
                    salvaged += 1
                elif record.get("status") in RESUMABLE_STATUSES and \
                        canonical.get("status") not in RESUMABLE_STATUSES:
                    # The retry a crashed coordinator never merged beats
                    # the stale error it was retrying — the same rule the
                    # fleet's own resume salvage applies.
                    records[digest] = record
                    salvaged += 1
        os.makedirs(self.directory, exist_ok=True)
        scratch = self.results_path + ".compact"
        with open(scratch, "w", encoding="utf-8") as handle:
            for digest in sorted(records):
                handle.write(encode_record(records[digest]))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(scratch, self.results_path)
        for path in shard_files:
            os.remove(path)
        shards_dir = os.path.join(self.directory, "shards")
        if os.path.isdir(shards_dir) and not os.listdir(shards_dir):
            os.rmdir(shards_dir)
        bytes_after = os.path.getsize(self.results_path)
        return {"records_kept": len(records),
                "records_dropped": lines_before - len(records),
                "records_salvaged": salvaged,
                "shards_removed": len(shard_files),
                "bytes_reclaimed": bytes_before - bytes_after}
