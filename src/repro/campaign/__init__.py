"""The campaign subsystem: parallel, resumable experiment sweeps.

The paper's evaluation is a grid — topologies × backends × seeds × engine
tunables.  A :class:`Campaign` declares that grid over one scenario
factory and executes it as a sweep: deterministic
:class:`~repro.campaign.grid.Point` expansion, a process pool with
per-point isolation and failure capture, a persistent JSONL
:class:`~repro.campaign.store.ResultStore` (content-addressed by point
hash, so an interrupted campaign resumes exactly where it stopped) and an
:class:`~repro.campaign.aggregate.Aggregate` API over the unified
:class:`~repro.scenario.results.ScenarioRun` results.

    from repro.campaign import Campaign

    result = (Campaign("sweep")
              .scenario(factory)                  # factory(**params) -> Scenario
              .grid(bandwidth=[1e6, 1e8, 1e9])
              .seeds(3)
              .backends("kollaps", "baremetal")
              .run(jobs=4, store="campaigns"))

The CLI front end is ``repro campaign run|status|report``; the paper's
fig5/table2/table4 reproductions are campaigns too, via
:func:`repro.experiments.base.as_campaign`.
"""

from repro.campaign.aggregate import Aggregate
from repro.campaign.builder import Campaign, CampaignResult, load_campaign
from repro.campaign.executor import (
    CampaignEvent,
    PointResult,
    execute_points,
    run_point,
)
from repro.campaign.grid import BackendEntry, CampaignError, Point, \
    expand_grid
from repro.campaign.store import ResultStore
from repro.campaign.distributed import (
    Coordinator,
    FleetEvent,
    Worker,
    run_fleet,
)

__all__ = [
    "Aggregate",
    "BackendEntry",
    "Campaign",
    "CampaignError",
    "CampaignEvent",
    "CampaignResult",
    "Coordinator",
    "FleetEvent",
    "Point",
    "PointResult",
    "ResultStore",
    "Worker",
    "execute_points",
    "expand_grid",
    "load_campaign",
    "run_fleet",
    "run_point",
]
