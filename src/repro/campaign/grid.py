"""Deterministic grid expansion: one campaign, many :class:`Point`\\ s.

A campaign's parameter grid — scenario parameters × seeds × backends —
expands to a flat, deterministically ordered list of points.  Each point
is content-addressed: :meth:`Point.digest` hashes the parameters, seed,
backend and backend options (never the expansion index), so the same
experimental condition always lands on the same key however the grid is
declared, and a :class:`~repro.campaign.store.ResultStore` can recognise
completed work across interrupted runs.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = ["Point", "BackendEntry", "expand_grid", "CampaignError"]

Items = Tuple[Tuple[str, object], ...]


class CampaignError(ValueError):
    """A campaign definition (or its execution request) is invalid."""


def _canonical_json(value) -> str:
    """Deterministic JSON for hashing: sorted keys, repr fallback."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      default=repr)


@dataclass(frozen=True)
class BackendEntry:
    """One execution target of a campaign: a registry backend, its factory
    options, and the label that distinguishes two configurations of the
    same backend (e.g. ``trickle_default`` vs ``trickle_tuned``)."""

    name: str
    label: str
    options: Items = ()

    def options_dict(self) -> Dict[str, object]:
        return dict(self.options)


@dataclass(frozen=True)
class Point:
    """One cell of the campaign grid: params × seed × backend.

    ``index`` is the deterministic position in the expanded grid (the
    shard order); it is excluded from :meth:`digest` so re-declaring the
    same grid in a different order still resumes cleanly.
    """

    campaign: str
    index: int
    params: Items
    seed: int
    backend: str                  # registry name, e.g. "trickle"
    label: str                    # display/identity name, e.g. "trickle_def"
    backend_options: Items = ()
    until: Optional[float] = None  # campaign-level run-horizon cap

    def params_dict(self) -> Dict[str, object]:
        return dict(self.params)

    def options_dict(self) -> Dict[str, object]:
        return dict(self.backend_options)

    def spec(self) -> Dict[str, object]:
        """The identity of this point (everything but the shard index).

        ``until`` is part of identity: results measured under a different
        horizon must not satisfy a resume.
        """
        return {"campaign": self.campaign,
                "params": self.params_dict(),
                "seed": self.seed,
                "backend": self.backend,
                "label": self.label,
                "backend_options": self.options_dict(),
                "until": self.until}

    def digest(self) -> str:
        """Content address: a stable hash of :meth:`spec`."""
        raw = _canonical_json(self.spec()).encode("utf-8")
        return hashlib.sha256(raw).hexdigest()[:16]

    def describe(self) -> str:
        """``backend=kollaps seed=0 rate=1e+06`` — the human-facing key."""
        parts = [f"backend={self.label}", f"seed={self.seed}"]
        parts += [f"{name}={value!r}" if isinstance(value, str)
                  else f"{name}={value:g}" if isinstance(value, float)
                  else f"{name}={value}"
                  for name, value in self.params]
        return " ".join(parts)

    def to_dict(self) -> Dict[str, object]:
        record = self.spec()
        record["index"] = self.index
        return record

    @classmethod
    def from_dict(cls, data: Mapping) -> "Point":
        until = data.get("until")
        return cls(campaign=data["campaign"],
                   index=int(data.get("index", -1)),
                   params=tuple(data["params"].items()),
                   seed=int(data["seed"]),
                   backend=data["backend"],
                   label=data.get("label", data["backend"]),
                   backend_options=tuple(
                       data.get("backend_options", {}).items()),
                   until=None if until is None else float(until))


def expand_grid(campaign: str, grid: Mapping[str, Sequence],
                seeds: Iterable[int], backends: Sequence[BackendEntry],
                until: Optional[float] = None) -> List[Point]:
    """The full cartesian product, in one deterministic shard order.

    Order: parameter combinations vary slowest (grid declaration order,
    first parameter outermost), then seeds ascending, then backends in
    declaration order — so all executions of one scenario configuration
    are adjacent in the shard sequence.
    """
    names = list(grid)
    combos = itertools.product(*(grid[name] for name in names)) \
        if names else [()]
    seed_list = list(seeds)
    points: List[Point] = []
    index = 0
    for combo in combos:
        params = tuple(zip(names, combo))
        for seed in seed_list:
            for entry in backends:
                points.append(Point(
                    campaign=campaign, index=index, params=params,
                    seed=seed, backend=entry.name, label=entry.label,
                    backend_options=entry.options, until=until))
                index += 1
    digests: Dict[str, Point] = {}
    for point in points:
        clash = digests.setdefault(point.digest(), point)
        if clash is not point:
            raise CampaignError(
                f"campaign {campaign!r} expands two identical points "
                f"({point.describe()}); labels must disambiguate repeated "
                "backend/option combinations")
    return points
