"""Point execution: per-point isolation, a process pool, failure capture.

One :func:`run_point` call turns a scenario factory plus a
:class:`~repro.campaign.grid.Point` into a :class:`PointResult`.  Every
outcome is captured — a clean :class:`~repro.scenario.results.ScenarioRun`,
a deterministic :class:`~repro.scenario.backends.BackendCompatibilityError`
(the sweep's N/A cells) or an arbitrary crash — so one broken point never
kills the sweep.

``jobs > 1`` fans points across a :class:`concurrent.futures
.ProcessPoolExecutor`.  Workers hand back the *serialized* run
(:meth:`ScenarioRun.to_dict`) because a live engine does not cross a
process boundary; the parent reconstructs a metrics-only
:class:`ScenarioRun` via :meth:`ScenarioRun.from_dict`.  Factories that
cannot be pickled (closures, REPL lambdas) degrade to in-process serial
execution with a ``fallback`` progress event instead of failing.
"""

from __future__ import annotations

import importlib.machinery
import importlib.util
import pickle
import sys
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field, replace
from inspect import Parameter, signature
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.campaign.grid import Point
from repro.campaign.store import RESUMABLE_STATUSES, ResultStore
from repro.scenario.results import ScenarioRun

__all__ = ["PointResult", "CampaignEvent", "run_point", "execute_points"]


@dataclass(frozen=True)
class PointResult:
    """One point's outcome: a run, an incompatibility, or a failure.

    ``run`` is the live :class:`ScenarioRun` (engine attached) when the
    point executed in this process, and the metrics-only reconstruction
    when it came back from a worker or the store — :attr:`source` says
    which.
    """

    point: Point
    status: str                       # "ok" | "incompatible" | "error"
    run: Optional[ScenarioRun] = None
    error: str = ""
    elapsed: float = 0.0
    source: str = "run"               # "run" | "pool" | "store"

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_record(self) -> Dict[str, object]:
        """The JSONL store record (wall-clock excluded from identity)."""
        return {"hash": self.point.digest(),
                "point": self.point.to_dict(),
                "status": self.status,
                "error": self.error,
                "elapsed": round(self.elapsed, 6),
                "run": None if self.run is None else self.run.to_dict()}

    @classmethod
    def from_record(cls, record: Dict, point: Point,
                    source: str = "store") -> "PointResult":
        run = record.get("run")
        return cls(point=point, status=record.get("status", "error"),
                   run=None if run is None else ScenarioRun.from_dict(run),
                   error=record.get("error", ""),
                   elapsed=float(record.get("elapsed", 0.0)), source=source)


@dataclass(frozen=True)
class CampaignEvent:
    """One progress notification handed to the campaign's monitor."""

    kind: str                 # "start" | "ok" | "incompatible" | "error"
                              # | "skip" | "fallback"
    point: Optional[Point] = None
    error: str = ""
    elapsed: float = 0.0
    detail: str = ""


def _accepts_seed(factory: Callable) -> bool:
    """Whether the factory *declares* a ``seed`` parameter.

    Deliberately ignores ``**kwargs`` catch-alls: a factory that would
    merely swallow an unnamed seed gets the builder-side
    ``deploy(seed=...)`` treatment instead, so ``seeds(n)`` can never
    record n identical runs under different seed labels.
    """
    try:
        parameters = signature(factory).parameters
    except (TypeError, ValueError):
        return False
    parameter = parameters.get("seed")
    return parameter is not None and parameter.kind in (
        Parameter.POSITIONAL_OR_KEYWORD, Parameter.KEYWORD_ONLY)


def run_point(factory: Callable, point: Point,
              until: Optional[float] = None) -> PointResult:
    """Execute one grid point in this process, capturing every outcome.

    The factory is called with the point's grid parameters (plus ``seed``
    when its signature takes one); a returned
    :class:`~repro.scenario.builder.Scenario` builder gets the point's
    seed via ``deploy(seed=...)`` before compiling, so every point is
    attributable even when the factory ignores seeding.
    """
    from repro.scenario import BackendCompatibilityError, Scenario
    watch = telemetry.Stopwatch()
    span = telemetry.span("campaign.point", hash=point.digest(),
                          label=point.label, index=point.index)

    def failed(status: str, message: str) -> PointResult:
        span.set(status=status).finish()
        result = PointResult(point=point, status=status, error=message,
                             elapsed=watch.stop())
        _record_point_metrics(result)
        return result

    try:
        kwargs = point.params_dict()
        seed_threaded = _accepts_seed(factory)
        if seed_threaded:
            kwargs["seed"] = point.seed
        produced = factory(**kwargs)
        if isinstance(produced, Scenario):
            if not seed_threaded:
                produced.deploy(seed=point.seed)
            compiled = produced.compile()
        else:
            compiled = produced
        config_seed = getattr(getattr(compiled, "config", None), "seed", None)
        if not seed_threaded and config_seed != point.seed:
            return failed(
                "error",
                f"factory {getattr(factory, '__name__', factory)!r} returned "
                f"a compiled scenario with seed {config_seed} but takes no "
                f"'seed' parameter, so point seed {point.seed} cannot be "
                "applied; accept seed= or return an uncompiled Scenario")
        run = compiled.run(until=until, backend=point.backend,
                           **point.options_dict())
    except BackendCompatibilityError as error:
        return failed("incompatible", str(error))
    except Exception as error:  # noqa: BLE001 — the whole job is capture
        trace = traceback.format_exc(limit=8)
        return failed("error", f"{type(error).__name__}: {error}\n{trace}")
    span.set(status="ok").finish()
    run = replace(run, params=point.params_dict(),
                  backend=point.label)
    result = PointResult(point=point, status="ok", run=run,
                         elapsed=watch.stop())
    _record_point_metrics(result)
    return result


def _record_point_metrics(result: PointResult) -> None:
    if not telemetry.enabled():
        return
    registry = telemetry.metrics
    registry.counter("campaign.points").inc()
    registry.counter(f"campaign.points_{result.status}").inc()
    registry.histogram("campaign.point_seconds").observe(result.elapsed)


# ---------------------------------------------------------------------------
# Worker-side task: resolve the factory, run, hand back a plain record.
# ---------------------------------------------------------------------------
FactoryRef = Tuple[str, str, str]       # (module name, file path, qualname)


def factory_ref(factory: Callable) -> Optional[FactoryRef]:
    """A picklable reference a worker can resolve from the source file.

    Needed when the factory lives in a module that only exists in *this*
    process's ``sys.modules`` (a campaign file loaded by path): fork
    children inherit the module, but spawn/forkserver children cannot
    import it by name, so the reference ships the path instead of the
    function.  Returns None when plain by-reference pickling suffices
    (an importable module) or no file reference is possible.
    """
    module_name = getattr(factory, "__module__", None)
    qualname = getattr(factory, "__qualname__", "")
    if not module_name or "." in qualname or "<" in qualname:
        return None
    if "." in module_name:
        return None                     # package submodules import normally
    # PathFinder (unlike find_spec) ignores sys.modules, which is exactly
    # the question: could a fresh worker import this name?
    try:
        importable = importlib.machinery.PathFinder.find_spec(
            module_name) is not None
    except (ImportError, ValueError):
        importable = False
    if importable and module_name != "__main__":
        return None
    path = getattr(sys.modules.get(module_name), "__file__", None)
    if path is None:
        return None
    return (module_name, path, qualname)


def resolve_factory(factory: Optional[Callable],
                    ref: Optional[FactoryRef]) -> Callable:
    """The worker-side inverse of :func:`factory_ref`."""
    if factory is not None:
        return factory
    module_name, path, qualname = ref
    module = sys.modules.get(module_name)
    if module is None or getattr(module, "__file__", None) != path:
        # Never displace an unrelated module of the same name (a spawn
        # child's own __main__, say): reload the file under an alias.
        alias = (module_name if module is None
                 else f"_campaign_{module_name.strip('_')}")
        module = sys.modules.get(alias)
        if module is None or getattr(module, "__file__", None) != path:
            spec = importlib.util.spec_from_file_location(alias, path)
            if spec is None or spec.loader is None:
                raise ImportError(
                    f"cannot reload campaign module {module_name!r} "
                    f"from {path!r}")
            module = importlib.util.module_from_spec(spec)
            sys.modules[alias] = module
            spec.loader.exec_module(module)
    return getattr(module, qualname)


def _pool_task(factory: Optional[Callable], ref: Optional[FactoryRef],
               point_data: Dict, until: Optional[float]) -> Dict:
    point = Point.from_dict(point_data)
    record = run_point(resolve_factory(factory, ref), point,
                       until).to_record()
    # Pool workers are long-lived: push their span buffer to disk after
    # every point so a killed worker loses at most the in-flight point.
    telemetry.flush()
    return record


def _poolable(factory: Callable) -> bool:
    try:
        pickle.dumps(factory)
        return True
    except Exception:  # noqa: BLE001 — any pickling failure means "no"
        return False


@dataclass
class ExecutionReport:
    """What :func:`execute_points` did: results in shard order + tallies."""

    results: List[PointResult] = field(default_factory=list)
    executed: int = 0
    skipped: int = 0
    failures: int = 0

    def sorted_results(self) -> List[PointResult]:
        return sorted(self.results, key=lambda result: result.point.index)


def execute_points(factory: Callable, points: Sequence[Point], *,
                   jobs: int = 1, store: Optional[ResultStore] = None,
                   resume: bool = True, until: Optional[float] = None,
                   progress: Optional[Callable[[CampaignEvent], None]] = None
                   ) -> ExecutionReport:
    """Run every point, skipping stored ones, fanning across processes.

    Deterministic shard ordering: points are submitted (and results
    returned) in grid-expansion order regardless of completion order or
    ``jobs``.  Each completed point is appended to ``store`` before the
    next result is awaited, so an interrupt preserves all finished work.
    """
    notify = progress if progress is not None else (lambda event: None)
    report = ExecutionReport()

    completed = {}
    if store is not None and resume:
        completed = store.completed(RESUMABLE_STATUSES)
    pending: List[Point] = []
    for point in points:
        record = completed.get(point.digest())
        if record is not None:
            result = PointResult.from_record(record, point, source="store")
            report.results.append(result)
            report.skipped += 1
            notify(CampaignEvent(kind="skip", point=point,
                                 elapsed=result.elapsed))
        else:
            pending.append(point)

    parallel = jobs > 1 and len(pending) > 1
    ref = factory_ref(factory) if parallel else None
    if parallel and ref is None and not _poolable(factory):
        notify(CampaignEvent(
            kind="fallback",
            detail=f"factory {getattr(factory, '__name__', factory)!r} is "
                   "not picklable; running serially in-process"))
        parallel = False

    def finish(result: PointResult) -> None:
        report.results.append(result)
        report.executed += 1
        if not result.ok:
            report.failures += 1
        if store is not None:
            store.append(result.to_record())
        notify(CampaignEvent(kind=result.status, point=result.point,
                             error=result.error, elapsed=result.elapsed))

    if not parallel:
        for point in pending:
            notify(CampaignEvent(kind="start", point=point))
            finish(run_point(factory, point, until))
        report.results = report.sorted_results()
        return report

    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = {}
        for point in pending:
            notify(CampaignEvent(kind="start", point=point))
            futures[pool.submit(_pool_task, None if ref else factory,
                                ref, point.to_dict(), until)] = point
        remaining = set(futures)
        while remaining:
            done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
            for future in done:
                point = futures[future]
                try:
                    record = future.result()
                    result = PointResult.from_record(record, point,
                                                     source="pool")
                except Exception as error:  # worker died (OOM, signal, ...)
                    result = PointResult(
                        point=point, status="error",
                        error=f"worker failed: {type(error).__name__}: "
                              f"{error}")
                finish(result)
    report.results = report.sorted_results()
    return report
