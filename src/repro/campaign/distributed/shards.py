"""Per-worker shard stores: each fleet worker appends only to its own file.

The distributed store layout keeps the single-writer invariant without any
locking: the coordinator is the only writer of ``results.jsonl``, and each
worker is the only writer of ``shards/<worker>.jsonl``.  Workers append
records exactly as a local campaign does (flushed, fsynced, one JSON line
per point); the coordinator tails every shard incrementally and merges new
records into the canonical store last-wins — so a distributed sweep's
``results.jsonl`` is byte-compatible with a local one, and
:meth:`~repro.campaign.store.ResultStore.compact` can delete merged shards
wholesale.

A killed worker leaves at most one half-written trailing line in its
shard; :class:`ShardReader` (like the store's own loader) skips it, and —
because it might still be the *start* of a record an unkilled worker is
mid-write — never advances its offset past an unterminated tail, so a
slow multi-part write is read whole on a later poll.  A worker reusing
the shard (the same id rejoining after a kill) newline-terminates the
torn fragment before its first append, so a fresh record is never glued
onto it.
"""

from __future__ import annotations

import json
import os
import re
from typing import Dict, List, Mapping, Tuple

from repro.campaign.store import encode_record

__all__ = ["ShardStore", "ShardReader", "shard_path", "worker_of_shard"]

_WORKER_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.\-]*$")


def shard_path(directory: str, worker: str) -> str:
    """``<campaign dir>/shards/<worker>.jsonl`` for a validated worker id."""
    if not _WORKER_RE.match(worker):
        raise ValueError(
            f"worker id {worker!r} must be alphanumeric (plus _ . -): it "
            "names files in the shared store")
    return os.path.join(directory, "shards", f"{worker}.jsonl")


def worker_of_shard(path: str) -> str:
    return os.path.splitext(os.path.basename(path))[0]


class ShardStore:
    """Append-only JSONL records for one worker of one campaign."""

    def __init__(self, directory: str, worker: str) -> None:
        self.directory = str(directory)
        self.worker = worker
        self.path = shard_path(self.directory, worker)
        self._tail_checked = False

    def _terminate_torn_tail(self) -> None:
        """Newline-terminate a predecessor's unterminated last line.

        A worker killed mid-``write(2)`` leaves its shard ending in a
        partial line.  This process is now the single writer of that
        file; appending a record straight after the fragment would glue
        the two into one line that never parses — the fragment's point
        *and* the new record would be lost to every reader, and the new
        record's lease would never complete.  Terminating the fragment
        turns it into an ordinary skippable garbage line instead.
        """
        try:
            with open(self.path, "rb+") as handle:
                handle.seek(0, os.SEEK_END)
                if handle.tell() == 0:
                    return
                handle.seek(-1, os.SEEK_END)
                if handle.read(1) != b"\n":
                    handle.write(b"\n")
                    handle.flush()
                    os.fsync(handle.fileno())
        except FileNotFoundError:
            pass

    def append(self, record: Mapping) -> None:
        """Persist one point record durably (same framing as the canonical
        store, so merge and compaction treat the lines identically)."""
        line = encode_record(record)
        os.makedirs(os.path.dirname(self.path), exist_ok=True)
        if not self._tail_checked:
            # Only a *previous* process can have torn the tail — within
            # this one every append is a whole line — so check once.
            self._terminate_torn_tail()
            self._tail_checked = True
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())

    def load(self) -> Dict[str, dict]:
        """hash -> latest record, tolerating a corrupt tail."""
        from repro.campaign.store import read_records
        return read_records(self.path)


class ShardReader:
    """Incremental tail of one shard file, for the coordinator's merges.

    Each :meth:`poll` returns only the records appended since the last
    poll.  The reader remembers a byte offset and resumes there, so a
    coordinator polling many shards in a tight serve loop re-reads
    nothing.  Lines are consumed only when newline-terminated; a partial
    tail (a worker killed mid-write, or simply mid-``write(2)``) stays
    unconsumed until either a later poll completes it or it is abandoned
    for good — garbage on it never poisons the merge, because the line
    must still parse as a record to be returned.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.offset = 0

    def poll(self) -> List[Tuple[str, dict]]:
        """(hash, record) for every complete new line, in append order."""
        if not os.path.exists(self.path):
            return []
        records: List[Tuple[str, dict]] = []
        with open(self.path, "rb") as handle:
            handle.seek(self.offset)
            chunk = handle.read()
        consumed = chunk.rfind(b"\n") + 1
        if consumed == 0:
            return []
        self.offset += consumed
        for raw in chunk[:consumed].splitlines():
            raw = raw.strip()
            if not raw:
                continue
            try:
                record = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                continue            # a torn or garbage line: skip, move on
            if isinstance(record, dict) and "hash" in record:
                records.append((record["hash"], record))
        return records
