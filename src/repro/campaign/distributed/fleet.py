"""A whole fleet on one machine: coordinator plus N worker threads.

``repro campaign fleet <src> --workers N`` (and the tests) drive a real
distributed run without provisioning anything: the coordinator serves in
the calling thread while N :class:`~repro.campaign.distributed.worker
.Worker` threads poll the same fleet directory through the identical
file protocol a multi-host deployment uses.  Nothing is mocked — leases,
heartbeats, shard merges and reassignment all happen exactly as they
would across hosts, which is what makes the local fleet a faithful
rehearsal (and the place to inject worker deaths via ``fail_after``).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional, Union

from repro.campaign.builder import Campaign, CampaignResult
from repro.campaign.store import ResultStore
from repro.campaign.distributed.coordinator import Coordinator, FleetEvent
from repro.campaign.distributed.worker import Worker

__all__ = ["run_fleet"]


def run_fleet(campaign: Campaign, *,
              workers: int = 2,
              store: Union[str, ResultStore] = "campaigns",
              cluster=None,
              lease_size: int = 4,
              lease_timeout: float = 30.0,
              resume: bool = True,
              poll: float = 0.05,
              timeout: Optional[float] = None,
              fail_after: Optional[Dict[int, int]] = None,
              progress: Optional[Callable[[FleetEvent], None]] = None
              ) -> CampaignResult:
    """Run one campaign on a simulated fleet of ``workers`` threads.

    ``store`` is a campaigns root directory or a ready store — a fleet is
    inherently store-backed (the store *is* the data plane).  ``cluster``
    optionally bounds concurrently working workers by machine count.
    ``fail_after`` maps a worker index to a point budget after which that
    worker dies mid-lease (fault injection: the coordinator must reassign
    its lease for the sweep to finish).  Returns the merged
    :class:`CampaignResult` — byte-identical in aggregate to a serial
    ``campaign.run(jobs=1)`` of the same grid.
    """
    if workers < 1:
        raise ValueError("a fleet needs at least one worker")
    store_obj = store if isinstance(store, ResultStore) \
        else campaign._store(store)
    coordinator = Coordinator(campaign, store_obj, cluster=cluster,
                              lease_size=lease_size,
                              lease_timeout=lease_timeout, resume=resume,
                              progress=progress)
    coordinator.start()

    budgets = fail_after or {}
    threads = []
    for index in range(workers):
        # The coordinator started (and republished state) before any
        # worker spawns, so a "done" seen at worker startup is genuinely
        # this run's — no need for the cross-host stale-done grace.
        worker = Worker(campaign, store_obj.directory,
                        f"local-{index}",
                        max_points=budgets.get(index),
                        stale_done_grace=0.0)
        thread = threading.Thread(
            target=worker.run,
            kwargs={"poll": poll, "timeout": timeout},
            name=f"campaign-worker-{index}", daemon=True)
        thread.start()
        threads.append(thread)

    try:
        result = coordinator.serve(poll=poll, timeout=timeout)
    finally:
        # Workers exit on the published done state; on an error path the
        # state stays "serving", so don't block forever on daemon threads.
        for thread in threads:
            thread.join(timeout=2.0 if timeout is None else timeout)
    return result
