"""The fleet's shared-filesystem control plane.

Kollaps' own design point (§3) is that coordination state lives *with*
the participants, not in a central message bus — and a campaign store is
already a shared directory every fleet member can reach (a volume in the
compose/k8s deployment, a plain directory for a local fleet).  The
control plane is therefore files under ``<campaign dir>/fleet/``, each
with exactly one writer:

``state.json``
    Coordinator-owned: serving/done status plus progress counters.
    Workers poll it to discover completion (and to wait for a coordinator
    that has not started yet).
``workers/<worker>.json``
    Worker-owned: the join announcement.
``leases/<worker>.json``
    Coordinator-owned: the worker's current lease (point payloads
    included, so a worker never re-expands the grid) or its revocation.
``heartbeats/<worker>.json``
    Worker-owned: a monotonically increasing sequence number.  The
    *coordinator's* clock turns "the sequence changed" into a liveness
    timestamp, so fleet hosts never need synchronized clocks.

Every JSON document is written to a scratch file and ``os.replace``\\ d
into place — readers see the old version or the new one, never a torn
write.  Readers treat unparseable or missing files as "not there yet".
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

__all__ = ["FleetPaths", "write_json", "read_json"]


def write_json(path: str, document: Dict) -> None:
    """Atomically publish one control-plane document."""
    os.makedirs(os.path.dirname(path), exist_ok=True)
    scratch = f"{path}.{os.getpid()}.tmp"
    with open(scratch, "w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True, default=repr)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(scratch, path)


def read_json(path: str) -> Optional[Dict]:
    """The document, or None while absent / not yet fully published."""
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (FileNotFoundError, ValueError):
        return None


class FleetPaths:
    """Path arithmetic for one campaign's fleet directory."""

    def __init__(self, directory: str) -> None:
        self.directory = str(directory)
        self.fleet_dir = os.path.join(self.directory, "fleet")
        self.state = os.path.join(self.fleet_dir, "state.json")
        self.workers_dir = os.path.join(self.fleet_dir, "workers")
        self.leases_dir = os.path.join(self.fleet_dir, "leases")
        self.heartbeats_dir = os.path.join(self.fleet_dir, "heartbeats")

    def worker(self, worker: str) -> str:
        return os.path.join(self.workers_dir, f"{worker}.json")

    def lease(self, worker: str) -> str:
        return os.path.join(self.leases_dir, f"{worker}.json")

    def heartbeat(self, worker: str) -> str:
        return os.path.join(self.heartbeats_dir, f"{worker}.json")

    def joined_workers(self) -> Dict[str, Dict]:
        """worker id -> join document, for every announced worker."""
        if not os.path.isdir(self.workers_dir):
            return {}
        joined: Dict[str, Dict] = {}
        for name in sorted(os.listdir(self.workers_dir)):
            if not name.endswith(".json"):
                continue
            document = read_json(os.path.join(self.workers_dir, name))
            if document is not None:
                joined[name[:-len(".json")]] = document
        return joined
