"""Distributed campaign execution: a coordinator/worker fleet over hosts.

PR 3's campaigns parallelised a sweep across *processes*; this package
spreads one across *hosts*, the way Kollaps itself decentralises
emulation state (§3).  A :class:`Coordinator` owns the grid and the
canonical :class:`~repro.campaign.store.ResultStore` and hands out
:class:`Lease`\\ s — batches of points with a heartbeat deadline — to
:class:`Worker`\\ s, each of which executes its points through the usual
per-point isolation path and appends to its *own* shard file
(``campaigns/<name>/shards/<worker>.jsonl``).  The coordinator tails the
shards and merges records into ``results.jsonl`` last-wins, reassigning
any lease whose worker stops heartbeating — so a sweep survives a host
loss, and distributed, parallel and serial runs of one campaign produce
byte-identical aggregates.

    from repro.campaign.distributed import run_fleet

    result = run_fleet(campaign, workers=4, store="campaigns",
                       lease_timeout=60.0)

The control plane is plain files under ``campaigns/<name>/fleet/`` (one
writer each, atomically replaced), so a fleet needs nothing but a shared
volume: ``repro campaign serve`` runs the coordinator, ``repro campaign
work`` a worker, ``repro campaign fleet --workers N`` a whole local
fleet, and :func:`repro.orchestration.campaign_fleet_plan` emits the
compose/k8s deployment for a real one.
"""

from repro.campaign.distributed.coordinator import (
    Coordinator,
    FleetEvent,
    WorkerState,
    ensure_quiescent,
    serving_state,
)
from repro.campaign.distributed.fleet import run_fleet
from repro.campaign.distributed.leases import Lease, LeaseTable
from repro.campaign.distributed.protocol import FleetPaths
from repro.campaign.distributed.shards import (
    ShardReader,
    ShardStore,
    shard_path,
    worker_of_shard,
)
from repro.campaign.distributed.worker import Worker, default_worker_id

__all__ = [
    "Coordinator",
    "FleetEvent",
    "FleetPaths",
    "Lease",
    "LeaseTable",
    "ShardReader",
    "ShardStore",
    "Worker",
    "WorkerState",
    "default_worker_id",
    "ensure_quiescent",
    "run_fleet",
    "serving_state",
    "shard_path",
    "worker_of_shard",
]
