"""Lease bookkeeping: which worker owns which points, until when.

A *lease* is the coordinator's unit of work assignment: a batch of point
digests handed to one worker together with a deadline.  The worker renews
the deadline by heartbeating (at least once per completed point); a
worker that stops heartbeating — crashed host, killed process, partitioned
network — lets its lease expire, and the coordinator returns the
unfinished digests to the pending queue for reassignment.  Completed
digests never re-enter the queue, so a worker that dies mid-lease loses
only its in-flight points, and a *zombie* (a worker presumed dead that
keeps writing) is harmless: its late shard records merge last-wins with
the reassigned execution of the same content-addressed point.

:class:`LeaseTable` is pure bookkeeping — no I/O, no threads, and an
explicit ``now`` on every call — so lease expiry and reassignment are
testable with a fake clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign.grid import Point

__all__ = ["Lease", "LeaseTable"]


@dataclass
class Lease:
    """One worker's current work batch, with its liveness deadline."""

    lease_id: int
    worker: str
    digests: Tuple[str, ...]
    issued: float
    deadline: float
    #: Digests of this lease the coordinator has seen results for.
    done: List[str] = field(default_factory=list)

    def outstanding(self) -> List[str]:
        finished = set(self.done)
        return [digest for digest in self.digests
                if digest not in finished]

    def to_dict(self) -> Dict[str, object]:
        return {"lease_id": self.lease_id, "worker": self.worker,
                "digests": list(self.digests), "issued": self.issued,
                "deadline": self.deadline}


class LeaseTable:
    """The coordinator's assignment state over one campaign's points.

    Points enter as *pending* (in shard order), move into at most one
    active :class:`Lease` each, and leave on completion.  ``timeout``
    seconds without a heartbeat expires a lease: :meth:`expire` revokes
    it and returns its unfinished digests to the front of the pending
    queue (re-sorted into shard order, so reassignment never perturbs
    the deterministic aggregate).
    """

    def __init__(self, points: Sequence[Point], *, timeout: float = 30.0,
                 completed: Sequence[str] = ()) -> None:
        if timeout <= 0:
            raise ValueError("lease timeout must be positive")
        self.timeout = timeout
        self._order: Dict[str, int] = {point.digest(): point.index
                                       for point in points}
        already = set(completed) & set(self._order)
        self._completed: set = already
        self._pending: List[str] = [
            digest for digest in sorted(self._order, key=self._order.get)
            if digest not in already]
        self._leases: Dict[str, Lease] = {}      # worker -> active lease
        self._next_id = 1

    # ------------------------------------------------------------- queries
    @property
    def pending(self) -> List[str]:
        """Unassigned, uncompleted digests, in shard order."""
        return list(self._pending)

    @property
    def leases(self) -> Dict[str, Lease]:
        return dict(self._leases)

    def lease_of(self, worker: str) -> Optional[Lease]:
        return self._leases.get(worker)

    @property
    def completed(self) -> set:
        return set(self._completed)

    def done(self) -> bool:
        """Every point completed (nothing pending, nothing leased)."""
        return not self._pending and not self._leases

    def remaining(self) -> int:
        return len(self._order) - len(self._completed)

    # ------------------------------------------------------------ granting
    def grant(self, worker: str, now: float, *, size: int = 4
              ) -> Optional[Lease]:
        """A new lease of up to ``size`` pending digests, or None.

        None means the worker already holds a lease or nothing is
        pending — an idle worker polls again after the next merge or
        expiry changes the queue.
        """
        if size < 1:
            raise ValueError("lease size must be >= 1")
        if worker in self._leases or not self._pending:
            return None
        batch = tuple(self._pending[:size])
        del self._pending[:len(batch)]
        lease = Lease(lease_id=self._next_id, worker=worker, digests=batch,
                      issued=now, deadline=now + self.timeout)
        self._next_id += 1
        self._leases[worker] = lease
        return lease

    # ------------------------------------------------------------ liveness
    def heartbeat(self, worker: str, now: float) -> bool:
        """Renew the worker's lease deadline; False when it holds none
        (expired and revoked, or never granted) — the worker must drop
        its batch and ask for a fresh lease."""
        lease = self._leases.get(worker)
        if lease is None:
            return False
        lease.deadline = now + self.timeout
        return True

    def expire(self, now: float) -> List[Lease]:
        """Revoke every lease past its deadline, requeueing unfinished
        digests in shard order; returns the revoked leases."""
        expired = [lease for lease in self._leases.values()
                   if now > lease.deadline]
        for lease in expired:
            del self._leases[lease.worker]
            self._pending.extend(digest for digest in lease.outstanding()
                                 if digest not in self._completed)
        if expired:
            self._pending.sort(key=self._order.get)
        return expired

    def release(self, worker: str) -> Optional[Lease]:
        """Voluntarily revoke a worker's lease (clean shutdown), requeueing
        its unfinished digests."""
        lease = self._leases.pop(worker, None)
        if lease is not None:
            self._pending.extend(digest for digest in lease.outstanding()
                                 if digest not in self._completed)
            self._pending.sort(key=self._order.get)
        return lease

    # ---------------------------------------------------------- completion
    def complete(self, digest: str) -> bool:
        """Record one finished point (wherever its result came from).

        Unknown digests (orphans from an edited grid, duplicate merges)
        return False and change nothing.
        """
        if digest not in self._order or digest in self._completed:
            return False
        self._completed.add(digest)
        try:
            self._pending.remove(digest)
        except ValueError:
            pass
        for worker, lease in list(self._leases.items()):
            if digest in lease.digests:
                lease.done.append(digest)
                if not lease.outstanding():
                    del self._leases[worker]
        return True
