"""The fleet coordinator: one campaign, many hosts, one canonical store.

The :class:`Coordinator` owns the expanded grid and the canonical
:class:`~repro.campaign.store.ResultStore`.  It admits workers (bounded
by a :class:`~repro.cluster.Cluster`'s machines), hands each a *lease* —
a batch of point payloads with a liveness deadline — tails every worker's
shard file, and merges finished records into ``results.jsonl`` last-wins.
A worker that stops heartbeating past the lease timeout is presumed dead:
its unfinished digests return to the pending queue in shard order and the
next idle worker picks them up, so a sweep survives the loss of any
single host.  Completion is decided by the content-addressed store, never
by which worker claimed what — which is why distributed, parallel and
serial executions of one campaign aggregate byte-identically.

The coordinator is single-threaded: :meth:`serve` is a poll loop over
:meth:`step`, and :meth:`step` takes an explicit ``now`` so every
scheduling decision (grant, expiry, reassignment) is testable with a
fake clock and no sleeping.
"""

from __future__ import annotations

import os
import time
import uuid
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro import telemetry
from repro.campaign.builder import Campaign, CampaignResult
from repro.campaign.executor import PointResult
from repro.campaign.grid import CampaignError, Point
from repro.campaign.store import RESUMABLE_STATUSES, ResultStore
from repro.campaign.distributed.leases import LeaseTable
from repro.campaign.distributed.protocol import (
    FleetPaths,
    read_json,
    write_json,
)
from repro.campaign.distributed.shards import (
    ShardReader,
    shard_path,
    worker_of_shard,
)

__all__ = ["Coordinator", "FleetEvent", "WorkerState"]

logger = telemetry.get_logger(__name__)

#: How many timeouts of patience heartbeats alone can buy in
#: :meth:`Coordinator.serve`.  A slow healthy point and a wedged one are
#: indistinguishable from heartbeats (the pulse thread beats through
#: both), so liveness extends the no-progress deadline — but only up to
#: this multiple of ``timeout`` without a completed point or an advance
#: of any worker's executed counter, after which an explicitly
#: time-bounded sweep raises instead of hanging on a wedge forever.
LIVENESS_PATIENCE = 3


@dataclass(frozen=True)
class FleetEvent:
    """One coordinator observation, for the fleet monitor.

    ``rows`` accompanies ``merge`` events: ``(backend label, workload,
    headline value)`` triples extracted from the merged record, which is
    what lets the dashboard maintain live aggregate deltas without ever
    re-reading the store.
    """

    kind: str            # "serve" | "join" | "wait" | "lease" | "heartbeat"
                         # | "merge" | "expire" | "dead" | "done"
    time: float = 0.0
    worker: str = ""
    point: Optional[Point] = None
    status: str = ""
    lease_id: int = 0
    count: int = 0
    detail: str = ""
    rows: Tuple[Tuple[str, str, float], ...] = ()
    #: The worker's telemetry snapshot carried by a heartbeat document
    #: (None on events that don't ship one) — how the fleet monitor's
    #: live points/sec and solver-share panels are fed.
    metrics: Optional[Dict] = None


@dataclass
class WorkerState:
    """What the coordinator knows about one admitted worker."""

    worker: str
    machine: Optional[str] = None       # None: waiting for cluster capacity
    # "joining": announced but no heartbeat observed yet (gets neither a
    # machine nor a lease — the join doc may be a dead fleet's leftover);
    # "waiting": alive but no machine free in the cluster.
    status: str = "joining"             # "joining" | "waiting" | "live"
                                        # | "suspect"
    last_seen: float = 0.0
    #: The worker process's boot marker: a restart (same id, new
    #: process) restarts the heartbeat seq, so the high-water mark only
    #: means anything within one incarnation.
    incarnation: str = ""
    heartbeat_seq: int = -1
    #: Highest executed-counter seen in this worker's heartbeats —
    #: advances only when the worker finishes points, which is what
    #: separates slow progress from a wedge that merely heartbeats.
    executed_seen: int = -1
    lease_seq: int = 0
    reader: Optional[ShardReader] = None
    completed: int = 0
    #: Latest telemetry snapshot shipped in a heartbeat document.
    metrics: Optional[Dict] = None
    #: When the executed counter last advanced (coordinator clock):
    #: records finished then but merge only when the shard is tailed,
    #: so merge time minus this approximates the shard-merge lag.
    executed_advanced_at: Optional[float] = None


def _headline_rows(record: Dict) -> Tuple[Tuple[str, str, float], ...]:
    """(backend, workload, value) per workload with a headline statistic."""
    run = record.get("run")
    if not isinstance(run, dict):
        return ()
    backend = str(record.get("point", {}).get("label", "?"))
    rows = []
    workloads = run.get("workloads", {})
    for key in sorted(workloads):
        metrics = workloads[key]
        primary = metrics.get("primary")
        summary = metrics.get("summary", {})
        if primary in summary:
            rows.append((backend, str(key), float(summary[primary])))
    return tuple(rows)


class Coordinator:
    """Serve one campaign to a fleet of shard-writing workers."""

    def __init__(self, campaign: Campaign, store: ResultStore, *,
                 cluster=None, workers_per_machine: int = 1,
                 lease_size: int = 4, lease_timeout: float = 30.0,
                 resume: bool = True,
                 progress: Optional[Callable[[FleetEvent], None]] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.campaign = campaign
        self.store = store
        self.cluster = cluster
        self.workers_per_machine = workers_per_machine
        self.lease_size = lease_size
        self.lease_timeout = lease_timeout
        self.clock = clock
        self._notify = progress if progress is not None else lambda event: None
        self.paths = FleetPaths(store.directory)
        #: Stamped into every lease document: worker ids recur across
        #: runs (``local-0``…), so a worker must be able to tell a fresh
        #: coordinator's lease (whose seq counter restarted) from a
        #: stale one left behind by the previous run.
        self.run_id = uuid.uuid4().hex[:12]

        self.points: List[Point] = campaign.points()
        self._by_digest: Dict[str, Point] = {point.digest(): point
                                             for point in self.points}
        self.resume = resume
        stored = store.completed(RESUMABLE_STATUSES) if resume else {}
        self.resumed = sorted(set(stored) & set(self._by_digest),
                              key=lambda digest: self._by_digest[digest].index)
        self.table = LeaseTable(self.points, timeout=lease_timeout,
                                completed=self.resumed)
        self.workers: Dict[str, WorkerState] = {}
        self._readers: Dict[str, ShardReader] = {}
        self._state_seq = 0
        self._last_published: Optional[Tuple] = None
        self._published_at = float("-inf")
        #: Observed heartbeat advances: serve() extends its deadline on
        #: these (bounded by LIVENESS_PATIENCE), so one healthy point
        #: longer than the timeout does not abort a provably live fleet.
        self._liveness = 0
        #: Observed *execution* progress: completed merges are counted
        #: via the lease table; this adds executed-counter advances from
        #: heartbeats, so a worker grinding through a big lease still
        #: counts as progressing between merges.
        self._progress = 0
        self._served = False
        #: Coordinator-side instruments: shard-merge lag and merge
        #: counts.  Aggregated with the workers' heartbeat snapshots
        #: into the ``telemetry`` block of ``state.json``.
        self.metrics = telemetry.MetricsRegistry()

    # -------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Publish the manifest and the serving state (idempotent)."""
        if self._served:
            return
        self._served = True
        self._reset_control_plane()
        self._adopt_leftover_shards()
        self.store.write_manifest(self.campaign.spec())
        self._publish("serving")
        self._notify(FleetEvent(kind="serve", time=self.clock(),
                                count=len(self.points),
                                detail=f"{len(self.resumed)} resumed "
                                       "from store"))

    def _reset_control_plane(self) -> None:
        """Clear the previous fleet's leases and heartbeats.

        Lease and heartbeat documents only mean anything within one
        coordinator run: a stale lease whose seq outruns this run's
        restarted counter would make a rejoining worker ignore every
        fresh grant, and a stale heartbeat seq would hide a dead
        worker's silence.  A previous run's ``state.json`` goes too —
        its ``done`` would make a freshly started worker exit before
        this run grants anything (:meth:`start` republishes ``serving``
        immediately).  Join documents stay — a live worker that joined
        before the coordinator started never re-announces, and
        admission waits for a fresh heartbeat anyway, so a dead fleet's
        leftover join doc can never earn a machine or a lease.
        """
        for directory in (self.paths.leases_dir, self.paths.heartbeats_dir):
            if not os.path.isdir(directory):
                continue
            for name in os.listdir(directory):
                if name.endswith(".json"):
                    os.remove(os.path.join(directory, name))
        if os.path.exists(self.paths.state):
            os.remove(self.paths.state)

    def _adopt_leftover_shards(self) -> None:
        """Settle shard files a previous fleet left behind.

        A fresh run (``resume=False``) deletes them: their records must
        not satisfy any point of *this* sweep, and a worker reusing the
        id would otherwise have its stale history merged as brand-new
        completions.  A resumed run instead salvages unmerged records
        with resumable statuses into the canonical store (the work a
        crashed coordinator never merged) and pre-consumes everything
        else — stale ``error`` records are *retried*, exactly like the
        local resume path — by keeping each file's reader offset at its
        current end for when that worker id rejoins.
        """
        if not self.resume:
            for path in self.store.shard_paths():
                os.remove(path)
            return
        salvaged: List[Dict] = []
        for path in self.store.shard_paths():
            reader = ShardReader(path)
            for digest, record in reader.poll():
                if digest not in self._by_digest:
                    continue
                if record.get("status") not in RESUMABLE_STATUSES:
                    continue
                if not self.table.complete(digest):
                    continue            # canonical store already has it
                salvaged.append(record)
                self.resumed.append(digest)
            self._readers[worker_of_shard(path)] = reader
        if salvaged:
            self.store.append_many(salvaged)
            self.resumed.sort(
                key=lambda digest: self._by_digest[digest].index)

    def serve(self, *, poll: float = 0.2,
              timeout: Optional[float] = None) -> CampaignResult:
        """Poll :meth:`step` until every point completes, then merge-close.

        ``timeout`` (seconds without fleet progress) guards a fleet that
        never shows up or stops progressing — it raises
        :class:`TimeoutError` rather than spinning forever.  Every merge
        and every executed-counter advance fully resets the deadline, so
        a steadily completing sweep of any length never trips it.
        Heartbeats alone *extend* it too — a single healthy point
        running longer than the timeout stays alive — but only up to
        ``LIVENESS_PATIENCE``×``timeout`` without execution progress: a
        wedged worker whose pulse keeps beating cannot hang an
        explicitly time-bounded sweep forever.
        """
        self.start()
        now = self.clock()
        deadline = None if timeout is None else now + timeout
        hard = None if timeout is None else now + LIVENESS_PATIENCE * timeout
        progressed = (len(self.table.completed), self._progress)
        alive = self._liveness
        while not self.done():
            self.step(self.clock())
            if self.done():
                break
            now = self.clock()
            if (len(self.table.completed), self._progress) != progressed:
                progressed = (len(self.table.completed), self._progress)
                if timeout is not None:
                    deadline = now + timeout
                    hard = now + LIVENESS_PATIENCE * timeout
            elif self._liveness != alive and timeout is not None:
                deadline = min(now + timeout, hard)
            alive = self._liveness
            if deadline is not None and now > deadline:
                self._publish("serving")
                raise TimeoutError(
                    f"campaign {self.campaign.name!r} fleet made no "
                    f"execution progress for {timeout:g}s "
                    f"({self.table.remaining()} points outstanding)")
            time.sleep(poll)
        return self.finish()

    def done(self) -> bool:
        return self.table.done()

    def finish(self) -> CampaignResult:
        """Publish the done state and load the merged canonical result."""
        self._publish("done")
        self._notify(FleetEvent(kind="done", time=self.clock(),
                                count=len(self.table.completed)))
        return self.result()

    def result(self) -> CampaignResult:
        records = self.store.load()
        results = []
        for point in self.points:
            record = records.get(point.digest())
            if record is not None:
                results.append(PointResult.from_record(record, point))
        return CampaignResult(self.campaign.name, results,
                              skipped=len(self.resumed))

    # ------------------------------------------------------------------ step
    def step(self, now: float) -> None:
        """One scheduling round: admit, observe, merge, expire, grant."""
        self._admit(now)
        self._observe_heartbeats(now)
        self._merge_shards(now)
        self._expire(now)
        self._grant(now)
        self._publish("done" if self.done() else "serving")

    # ----------------------------------------------------------- admission
    def _admit(self, now: float) -> None:
        for worker, _document in self.paths.joined_workers().items():
            if worker in self.workers:
                continue
            # A pre-consumed reader (leftover shard adopted at start)
            # keeps its offset, so stale records never re-merge.
            reader = self._readers.pop(worker, None) or ShardReader(
                shard_path(self.store.directory, worker))
            # Announced, not yet placed: a join doc alone may be a dead
            # fleet's leftover, so the machine and the first lease wait
            # for a heartbeat observed *this* run.
            self.workers[worker] = WorkerState(worker=worker, last_seen=now,
                                               reader=reader)

    def _place(self, state: WorkerState, now: float) -> None:
        """Give the worker a machine (cluster capacity) or leave it waiting."""
        if self.cluster is None:
            state.machine, state.status = "local", "live"
        else:
            machine = self.cluster.acquire(
                state.worker, per_machine=self.workers_per_machine)
            if machine is None:
                state.status = "waiting"
                self._notify(FleetEvent(
                    kind="wait", time=now, worker=state.worker,
                    detail="no machine free in the cluster"))
                return
            state.machine, state.status = machine, "live"
        self._notify(FleetEvent(kind="join", time=now, worker=state.worker,
                                detail=state.machine or ""))

    # ------------------------------------------------------------ liveness
    def _observe_heartbeats(self, now: float) -> None:
        for worker, state in self.workers.items():
            document = read_json(self.paths.heartbeat(worker))
            if document is None:
                continue
            boot = str(document.get("boot", ""))
            if boot != state.incarnation:
                # A restarted worker (same id, new process): its seq and
                # executed counters restarted, so both high-water marks
                # reset with it — otherwise the rejoiner is muted
                # forever (or its progress signal is).
                state.incarnation = boot
                state.heartbeat_seq = -1
                state.executed_seen = -1
            seq = int(document.get("seq", -1))
            if seq <= state.heartbeat_seq:
                continue
            state.heartbeat_seq = seq
            self._liveness += 1
            executed = int(document.get("executed", 0))
            if executed > state.executed_seen:
                state.executed_seen = executed
                state.executed_advanced_at = now
                self._progress += 1
            state.last_seen = now
            snapshot = document.get("metrics")
            if isinstance(snapshot, dict):
                state.metrics = snapshot
            self.table.heartbeat(worker, now)
            self._notify(FleetEvent(kind="heartbeat", time=now,
                                    worker=worker, count=seq,
                                    metrics=state.metrics))
            if state.status == "joining":
                # First heartbeat observed: the worker is provably alive
                # in this run, so it may now compete for a machine.
                self._place(state, now)
            elif state.status == "suspect":
                # Back from the dead (a stall, not a crash): it lost its
                # lease but may compete for a machine and new work again.
                self._place(state, now)

    def _expire(self, now: float) -> None:
        for lease in self.table.expire(now):
            state = self.workers.get(lease.worker)
            outstanding = lease.outstanding()
            if state is not None:
                state.status = "suspect"
                if self.cluster is not None:
                    self.cluster.evict(lease.worker)
                state.machine = None
            write_json(self.paths.lease(lease.worker),
                       {"status": "revoked", "lease_id": lease.lease_id,
                        "run": self.run_id,
                        "seq": state.lease_seq + 1 if state else 0})
            if state is not None:
                state.lease_seq += 1
            logger.warning(
                "lease %d of worker %s expired; %d point(s) back in "
                "the queue", lease.lease_id, lease.worker,
                len(outstanding))
            self._notify(FleetEvent(
                kind="expire", time=now, worker=lease.worker,
                lease_id=lease.lease_id, count=len(outstanding),
                detail=f"{len(outstanding)} points back in the queue"))
            # A freed machine may unblock a waiting worker immediately.
            for other in self.workers.values():
                if other.status == "waiting":
                    self._place(other, now)

    # --------------------------------------------------------------- merge
    def _merge_shards(self, now: float) -> None:
        fresh: List[Dict] = []
        for worker, state in self.workers.items():
            if state.reader is None:
                continue
            for digest, record in state.reader.poll():
                point = self._by_digest.get(digest)
                if point is None:
                    continue            # an orphan from another grid
                if not self.table.complete(digest):
                    continue            # duplicate (a zombie's late write)
                state.completed += 1
                fresh.append(record)
                self.metrics.counter("coordinator.merges").inc()
                if state.executed_advanced_at is not None:
                    self.metrics.histogram(
                        "coordinator.merge_lag_seconds").observe(
                        max(0.0, now - state.executed_advanced_at))
                self._notify(FleetEvent(
                    kind="merge", time=now, worker=worker, point=point,
                    status=str(record.get("status", "error")),
                    count=len(self.table.completed),
                    rows=_headline_rows(record)))
        if fresh:
            # One open + one fsync for the whole batch: the bulk-merge
            # path the per-record append would make O(batch) barriers.
            self.store.append_many(fresh)
            logger.info("merged %d record(s) into the canonical store "
                        "(%d/%d complete)", len(fresh),
                        len(self.table.completed), len(self.points))

    # --------------------------------------------------------------- grant
    def _grant(self, now: float) -> None:
        for worker, state in sorted(self.workers.items()):
            if state.status != "live":
                continue
            lease = self.table.grant(worker, now, size=self.lease_size)
            if lease is None:
                continue
            state.lease_seq += 1
            write_json(self.paths.lease(worker), {
                "status": "granted",
                "lease_id": lease.lease_id,
                "run": self.run_id,
                "seq": state.lease_seq,
                "deadline": lease.deadline,
                "timeout": self.lease_timeout,
                "points": [self._by_digest[digest].to_dict()
                           for digest in lease.digests],
            })
            logger.info("granted lease %d to worker %s (%d points)",
                        lease.lease_id, worker, len(lease.digests))
            self._notify(FleetEvent(kind="lease", time=now, worker=worker,
                                    lease_id=lease.lease_id,
                                    count=len(lease.digests)))

    # --------------------------------------------------------------- state
    def _publish(self, status: str) -> None:
        """Republish ``state.json`` only when its content would change —
        an idle poll loop must not fsync the shared volume 5×/second.

        It *is* refreshed at least once per ``min(lease_timeout, 15s)``
        even when unchanged: workers treat any state advance as fleet
        progress, so this bounded beat keeps an idle worker's
        no-progress deadline renewing while a peer grinds through one
        long point (a worker ``--timeout`` above ~15s is therefore
        always safe, whatever the lease timeout).
        """
        now = self.clock()
        snapshot = (status, len(self.table.completed),
                    tuple(sorted(self.workers)))
        if snapshot == self._last_published \
                and now - self._published_at < min(self.lease_timeout, 15.0):
            return
        self._last_published = snapshot
        self._published_at = now
        self._state_seq += 1
        write_json(self.paths.state, {
            "status": status,
            "campaign": self.campaign.name,
            "run": self.run_id,
            "seq": self._state_seq,
            "total": len(self.points),
            "completed": len(self.table.completed),
            "workers": sorted(self.workers),
            "telemetry": self.fleet_telemetry(),
        })

    def fleet_telemetry(self) -> Dict:
        """Fleet-wide metric aggregate plus per-worker snapshots.

        Published with every ``state.json`` so ``campaign status`` and
        the dashboards read live points/sec and solver-time breakdowns
        off the shared volume.  Deliberately excluded from the publish
        change-detection snapshot: telemetry alone never forces an
        extra fsync on an otherwise idle fleet.
        """
        fleet = telemetry.MetricsRegistry()
        fleet.merge(self.metrics.snapshot())
        per_worker: Dict[str, Dict] = {}
        for worker, state in sorted(self.workers.items()):
            if state.metrics is not None:
                per_worker[worker] = state.metrics
                fleet.merge(state.metrics)
        return {"fleet": fleet.snapshot(), "workers": per_worker}

    # ------------------------------------------------------------- queries
    def describe(self) -> str:
        leased = sum(1 for lease in self.table.leases.values()
                     for _digest in lease.digests)
        return (f"fleet for campaign {self.campaign.name!r}: "
                f"{len(self.table.completed)}/{len(self.points)} points, "
                f"{len(self.workers)} worker(s), "
                f"{leased} leased, {len(self.table.pending)} pending")


def serving_state(store: ResultStore) -> Optional[Dict]:
    """The fleet state document of a campaign store, if any."""
    return read_json(FleetPaths(store.directory).state)


def ensure_quiescent(store: ResultStore, *, force: bool = False) -> None:
    """Refuse destructive store maintenance while a fleet is serving.

    A crashed coordinator leaves a stale ``serving`` state behind;
    ``force=True`` is the operator's override for exactly that case.
    """
    state = serving_state(store)
    if state and state.get("status") == "serving" and not force:
        raise CampaignError(
            f"campaign {state.get('campaign', '?')!r} has a fleet marked "
            "as serving; finish it (or pass force/--force if the "
            "coordinator crashed) before compacting")
