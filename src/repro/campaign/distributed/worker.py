"""A fleet worker: lease in, points through the isolation path, shard out.

One :class:`Worker` process (or thread, for the local ``--workers N``
simulation) joins a campaign's fleet directory, polls for leases, runs
each leased point through the *same*
:func:`~repro.campaign.executor.run_point` isolation path a local sweep
uses — every outcome captured, a crash never poisons the batch — and
appends the records to its own shard file.  It never touches the
canonical store: merging is the coordinator's job, which is what keeps
every file single-writer.

Heartbeats happen on every poll and before every point, so a lease stays
live exactly as long as the worker makes progress; a worker that wedges
mid-point stops heartbeating and loses the lease.  ``max_points`` is the
built-in fault injection: the worker dies (stops heartbeating, abandons
its lease) after executing that many points — how the tests and the CI
mini-sweep simulate a host loss without actually provisioning one.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Optional

from repro.campaign.builder import Campaign
from repro.campaign.grid import Point
from repro.campaign.distributed.protocol import (
    FleetPaths,
    read_json,
    write_json,
)
from repro.campaign.distributed.shards import ShardStore

__all__ = ["Worker", "default_worker_id"]


def default_worker_id() -> str:
    """``<hostname>-<pid>`` — unique per process across fleet hosts."""
    import socket
    host = socket.gethostname().split(".")[0] or "worker"
    safe = "".join(ch if ch.isalnum() or ch in "_-." else "-"
                   for ch in host)
    return f"{safe}-{os.getpid()}"


class WorkerDied(RuntimeError):
    """Internal: the fault-injection budget ran out mid-lease."""


class Worker:
    """Execute leased points of one campaign, appending to an own shard."""

    def __init__(self, campaign: Campaign, directory: str, worker_id: str, *,
                 max_points: Optional[int] = None,
                 progress: Optional[Callable[[str], None]] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.campaign = campaign
        self.worker_id = worker_id
        self.paths = FleetPaths(directory)
        self.shard = ShardStore(directory, worker_id)
        self.max_points = max_points
        self.clock = clock
        self._notify = progress if progress is not None else lambda line: None
        self._heartbeat_seq = 0
        self._lease_seq = -1
        self.executed = 0

    # ------------------------------------------------------------- plumbing
    def join(self) -> None:
        write_json(self.paths.worker(self.worker_id),
                   {"worker": self.worker_id, "pid": os.getpid(),
                    "campaign": self.campaign.name})
        self._notify(f"worker {self.worker_id}: joined "
                     f"{self.paths.directory}")

    def heartbeat(self, *, lease_id: int = 0) -> None:
        self._heartbeat_seq += 1
        write_json(self.paths.heartbeat(self.worker_id),
                   {"worker": self.worker_id, "seq": self._heartbeat_seq,
                    "lease_id": lease_id, "executed": self.executed})

    def _coordinator_done(self) -> bool:
        state = read_json(self.paths.state)
        return bool(state) and state.get("status") == "done"

    # ------------------------------------------------------------ execution
    def _execute_lease(self, lease: dict) -> None:
        lease_id = int(lease.get("lease_id", 0))
        self._notify(f"worker {self.worker_id}: lease {lease_id} "
                     f"({len(lease.get('points', []))} points)")
        for data in lease.get("points", []):
            if self.max_points is not None \
                    and self.executed >= self.max_points:
                raise WorkerDied(
                    f"worker {self.worker_id} died after "
                    f"{self.executed} points (fault injection)")
            self.heartbeat(lease_id=lease_id)
            point = Point.from_dict(data)
            result = self.campaign.run_point(point)
            self.shard.append(result.to_record())
            self.executed += 1
            self.heartbeat(lease_id=lease_id)
            self._notify(f"worker {self.worker_id}: [{result.status}] "
                         f"{point.describe()} ({result.elapsed:.2f}s)")

    def run(self, *, poll: float = 0.2,
            timeout: Optional[float] = None) -> int:
        """Join, then work leases until the coordinator publishes *done*.

        Returns the number of points executed.  ``timeout`` bounds the
        total wall time (for a worker whose coordinator never appears);
        fault injection exhausting ``max_points`` returns silently —
        a dead worker does not report.
        """
        self.join()
        deadline = None if timeout is None else self.clock() + timeout
        try:
            while not self._coordinator_done():
                if deadline is not None and self.clock() > deadline:
                    raise TimeoutError(
                        f"worker {self.worker_id}: no completion from the "
                        f"coordinator within {timeout:g}s")
                self.heartbeat()
                lease = read_json(self.paths.lease(self.worker_id))
                seq = -1 if lease is None else int(lease.get("seq", -1))
                if lease is not None and seq > self._lease_seq:
                    self._lease_seq = seq
                    if lease.get("status") == "granted":
                        self._execute_lease(lease)
                        continue        # ask immediately for the next one
                time.sleep(poll)
        except WorkerDied as death:
            self._notify(str(death))
        self._notify(f"worker {self.worker_id}: done "
                     f"({self.executed} points executed)")
        return self.executed
