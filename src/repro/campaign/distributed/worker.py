"""A fleet worker: lease in, points through the isolation path, shard out.

One :class:`Worker` process (or thread, for the local ``--workers N``
simulation) joins a campaign's fleet directory, polls for leases, runs
each leased point through the *same*
:func:`~repro.campaign.executor.run_point` isolation path a local sweep
uses — every outcome captured, a crash never poisons the batch — and
appends the records to its own shard file.  It never touches the
canonical store: merging is the coordinator's job, which is what keeps
every file single-writer.

Heartbeats happen on every idle poll and, while a lease executes, from a
small background pulse thread — so a single point that runs longer than
the lease timeout never gets a healthy worker declared dead and its
in-flight points executed twice.  A worker that actually dies (crashed
process, lost host) takes the pulse thread with it, stops heartbeating,
and loses the lease.  ``max_points`` is the built-in fault injection:
the worker dies (stops heartbeating, abandons its lease) after executing
that many points — how the tests and the CI mini-sweep simulate a host
loss without actually provisioning one.
"""

from __future__ import annotations

import os
import re
import threading
import time
import uuid
from typing import Callable, Optional

from repro import telemetry
from repro.campaign.builder import Campaign
from repro.campaign.grid import Point
from repro.campaign.distributed.protocol import (
    FleetPaths,
    read_json,
    write_json,
)
from repro.campaign.distributed.shards import ShardStore

__all__ = ["Worker", "default_worker_id"]

logger = telemetry.get_logger(__name__)


def default_worker_id() -> str:
    """``<hostname>-<pid>`` — unique per process across fleet hosts.

    Always satisfies the shard-path worker-id grammar (starts with an
    alphanumeric): odd hostnames are sanitized and, failing that, the
    id falls back to ``worker-<pid>``.
    """
    import socket
    host = socket.gethostname().split(".")[0]
    safe = re.sub(r"[^A-Za-z0-9_.\-]", "-", host).lstrip("_.-") or "worker"
    return f"{safe}-{os.getpid()}"


def _state_signature(state: Optional[dict]) -> Optional[tuple]:
    """What makes one published coordinator state distinguishable from
    another — any change means the coordinator is (or was) alive now."""
    if not state:
        return None
    return (state.get("status"), state.get("run"), state.get("seq"))


class WorkerDied(RuntimeError):
    """Internal: the fault-injection budget ran out mid-lease."""


class Worker:
    """Execute leased points of one campaign, appending to an own shard."""

    def __init__(self, campaign: Campaign, directory: str, worker_id: str, *,
                 max_points: Optional[int] = None,
                 heartbeat_interval: float = 1.0,
                 stale_done_grace: Optional[float] = None,
                 progress: Optional[Callable[[str], None]] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.campaign = campaign
        self.worker_id = worker_id
        self.paths = FleetPaths(directory)
        self.shard = ShardStore(directory, worker_id)
        self.max_points = max_points
        self.heartbeat_interval = heartbeat_interval
        self.stale_done_grace = stale_done_grace
        self.clock = clock
        self._notify = progress if progress is not None else lambda line: None
        self._heartbeat_seq = 0
        self._heartbeat_lock = threading.Lock()
        #: Stamped into every heartbeat: a worker restarted with the
        #: same id restarts its seq counter, and the coordinator uses
        #: the boot change (not raw seq ordering) to notice it is alive.
        self._boot = uuid.uuid4().hex[:12]
        self._lease_seq = -1
        self._run_id: Optional[str] = None
        self.executed = 0
        #: Per-worker instrument bag.  A separate registry (not the
        #: process-global one) so the local thread-fleet simulation keeps
        #: each worker's numbers apart; its snapshot rides inside every
        #: heartbeat document for the coordinator to aggregate.
        self.metrics = telemetry.MetricsRegistry()
        self._waiting_since: Optional[float] = None

    # ------------------------------------------------------------- plumbing
    def join(self) -> None:
        write_json(self.paths.worker(self.worker_id),
                   {"worker": self.worker_id, "pid": os.getpid(),
                    "campaign": self.campaign.name})
        logger.info("worker %s joined fleet %s", self.worker_id,
                    self.paths.directory)
        self._notify(f"worker {self.worker_id}: joined "
                     f"{self.paths.directory}")

    def heartbeat(self, *, lease_id: int = 0) -> None:
        # Locked: the poll loop and the per-lease pulse thread both beat,
        # and the seq must stay strictly monotonic for the coordinator.
        with self._heartbeat_lock:
            self._heartbeat_seq += 1
            write_json(self.paths.heartbeat(self.worker_id),
                       {"worker": self.worker_id, "boot": self._boot,
                        "seq": self._heartbeat_seq,
                        "lease_id": lease_id, "executed": self.executed,
                        "metrics": self.metrics.snapshot()})

    def _pulse(self, stop: threading.Event, lease_id: int,
               interval: float) -> None:
        """Keep the lease alive while ``run_point`` blocks the main thread.

        A benchmark point can legitimately run far longer than the
        coordinator's lease timeout; without this pulse the coordinator
        would declare the worker dead mid-execution and hand its
        in-flight points to someone else.  A crashed worker takes this
        thread down with it, so actual death still expires the lease.
        """
        while not stop.wait(interval):
            self.heartbeat(lease_id=lease_id)

    def _next_lease(self, serving_run: Optional[str]) -> Optional[dict]:
        """The freshest unseen lease document of the *serving* run.

        ``serving_run`` is the run id of the currently published
        ``serving`` state (None while no coordinator serves).  A live
        coordinator always publishes its state before granting, so a
        lease document from any other run is a dead fleet's leftover:
        it is ignored entirely — never executed, never consumed — so a
        worker started against a stale ``done`` directory does not burn
        real benchmark time re-running the previous fleet's last grant.

        One leftover *is* deliberately honoured: a ``serving`` state
        whose run matches the lease.  It may come from a coordinator
        that crashed mid-sweep, but it is indistinguishable from a live
        idle coordinator whose grant is waiting for exactly this worker
        (e.g. this worker restarting mid-run) — refusing it would
        deadlock the live case, while executing the crashed case wastes
        at most one batch whose records the next resume salvages from
        the shard.

        Within the serving run, a seq is only "new" once: a fresh
        coordinator restarts its per-worker counters, so a run-id
        change resets the high-water mark instead of muting every
        grant of the new run.
        """
        if serving_run is None:
            return None
        lease = read_json(self.paths.lease(self.worker_id))
        if lease is None or lease.get("run") != serving_run:
            return None
        if serving_run != self._run_id:
            self._run_id = serving_run
            self._lease_seq = -1
        seq = int(lease.get("seq", -1))
        if seq <= self._lease_seq:
            return None
        self._lease_seq = seq
        return lease if lease.get("status") == "granted" else None

    # ------------------------------------------------------------ execution
    def _execute_lease(self, lease: dict) -> None:
        lease_id = int(lease.get("lease_id", 0))
        if self._waiting_since is not None:
            self.metrics.histogram("worker.lease_wait_seconds").observe(
                self.clock() - self._waiting_since)
            self._waiting_since = None
        self.metrics.counter("worker.leases").inc()
        logger.info("worker %s: lease %d granted (%d points)",
                    self.worker_id, lease_id,
                    len(lease.get("points", [])))
        self._notify(f"worker {self.worker_id}: lease {lease_id} "
                     f"({len(lease.get('points', []))} points)")
        # Pulse well inside the lease timeout (the coordinator stamps it
        # into the grant) so a renewal always lands before expiry.
        timeout = float(lease.get("timeout", 3 * self.heartbeat_interval))
        interval = max(0.05, min(self.heartbeat_interval, timeout / 3.0))
        stop = threading.Event()
        pulse = threading.Thread(
            target=self._pulse, args=(stop, lease_id, interval),
            name=f"heartbeat-{self.worker_id}", daemon=True)
        pulse.start()
        try:
            for data in lease.get("points", []):
                if self.max_points is not None \
                        and self.executed >= self.max_points:
                    raise WorkerDied(
                        f"worker {self.worker_id} died after "
                        f"{self.executed} points (fault injection)")
                self.heartbeat(lease_id=lease_id)
                point = Point.from_dict(data)
                before = telemetry.metrics.snapshot() \
                    if telemetry.enabled() else None
                with telemetry.span("worker.point", worker=self.worker_id,
                                    hash=point.digest()):
                    result = self.campaign.run_point(point)
                self.shard.append(result.to_record())
                self.executed += 1
                self._record_point(result, before)
                self.heartbeat(lease_id=lease_id)
                self._notify(f"worker {self.worker_id}: [{result.status}] "
                             f"{point.describe()} ({result.elapsed:.2f}s)")
        finally:
            # Stops on completion AND on fault-injected death: a dead
            # worker must not keep its abandoned lease alive.
            stop.set()
            pulse.join()
            self._waiting_since = self.clock()

    def _record_point(self, result, before: Optional[dict]) -> None:
        """Fold one finished point into the worker's heartbeat metrics."""
        self.metrics.counter("worker.points").inc()
        self.metrics.counter("worker.busy_seconds").inc(result.elapsed)
        self.metrics.histogram("worker.point_seconds").observe(
            result.elapsed)
        if before is not None:
            # Attribute the *global* solver/collapse counters moved by
            # this point to this worker — exact for one-process-per-
            # worker fleets, approximate for the local thread fleet.
            delta = telemetry.metrics.delta_since(before)
            for name in ("sharing.solver_seconds", "collapse.seconds",
                         "sharing.solver_iterations",
                         "collapse.recomputes"):
                moved = delta.get(name, 0.0)
                if moved:
                    self.metrics.counter("worker." + name).inc(moved)

    def run(self, *, poll: float = 0.2,
            timeout: Optional[float] = None) -> int:
        """Join, then work leases until the coordinator publishes *done*.

        Returns the number of points executed.  ``timeout`` is a
        *no-progress* deadline, matching the coordinator's: it resets
        whenever the coordinator's state advances or this worker
        finishes a lease, so a long but steadily progressing sweep is
        never abandoned — only a coordinator that never appears (or a
        fleet that stalls outright) trips it.

        A ``done`` state already present when the worker starts may be
        a *previous* run's leftover (a coordinator about to resume the
        campaign clears it, but this worker may have been started
        first).  Such a pre-existing ``done`` is trusted only after it
        survives ``stale_done_grace`` seconds unchanged — the window an
        operator has to start ``serve`` after this worker; a ``done``
        published *after* the worker started — any state change at all —
        is the live coordinator speaking and is acted on immediately.

        Fault injection exhausting ``max_points`` returns silently —
        a dead worker does not report.
        """
        stale = _state_signature(read_json(self.paths.state))
        self.join()
        self._waiting_since = self.clock()
        grace = self.stale_done_grace if self.stale_done_grace is not None \
            else max(10.0, 10.0 * poll)
        deadline = None if timeout is None else self.clock() + timeout
        stale_done_since: Optional[float] = None
        last_signature = stale
        last_beat = float("-inf")
        try:
            while True:
                state = read_json(self.paths.state)
                signature = _state_signature(state)
                if signature != last_signature:
                    last_signature = signature
                    if timeout is not None:
                        deadline = self.clock() + timeout
                if state is not None and state.get("status") == "done":
                    if stale is None or signature != stale:
                        break           # published since we started: live
                    if stale_done_since is None:
                        stale_done_since = self.clock()
                    elif self.clock() - stale_done_since >= grace:
                        break           # nobody resumed it: genuinely done
                else:
                    # A live serving state (or none yet): from here on,
                    # any done is this coordinator's news, not leftovers.
                    stale = None
                    stale_done_since = None
                if deadline is not None and self.clock() > deadline:
                    raise TimeoutError(
                        f"worker {self.worker_id}: no coordinator "
                        f"progress within {timeout:g}s")
                # Throttled to heartbeat_interval: an idle fleet must not
                # fsync the shared volume once per poll tick per worker.
                if self.clock() - last_beat >= self.heartbeat_interval:
                    self.heartbeat()
                    last_beat = self.clock()
                serving_run = (state.get("run") if state is not None
                               and state.get("status") == "serving"
                               else None)
                lease = self._next_lease(serving_run)
                if lease is not None:
                    self._execute_lease(lease)
                    if timeout is not None:
                        deadline = self.clock() + timeout
                    continue            # ask immediately for the next one
                time.sleep(poll)
        except WorkerDied as death:
            logger.warning("%s", death)
            self._notify(str(death))
        logger.info("worker %s done (%d points executed)",
                    self.worker_id, self.executed)
        self._notify(f"worker {self.worker_id}: done "
                     f"({self.executed} points executed)")
        return self.executed
