"""The :class:`Campaign` builder: factory × grid × seeds × backends.

A campaign turns one scenario factory plus a parameter grid into a
parallel, resumable experiment sweep::

    from repro.campaign import Campaign

    def sweep(*, bandwidth, seed=0):
        return (point_to_point(bandwidth)
                .workload(flow("client", "server", key="f"))
                .deploy(seed=seed, duration=5.0))

    result = (Campaign("shaping")
              .scenario(sweep)
              .grid(bandwidth=[1e6, 1e7, 1e8, 1e9])
              .seeds(3)
              .backends("kollaps", "baremetal")
              .run(jobs=4, store="campaigns"))
    print(result.aggregate().to_markdown())

``run()`` expands the grid to deterministic
:class:`~repro.campaign.grid.Point`\\ s, skips the ones a previous
(interrupted) run already stored, executes the rest with per-point
isolation, and returns a :class:`CampaignResult` whose
:class:`~repro.campaign.aggregate.Aggregate` is byte-identical however
many jobs ran the sweep.
"""

from __future__ import annotations

import importlib.util
import os
import sys
from dataclasses import replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.campaign.aggregate import Aggregate
from repro.campaign.executor import (
    CampaignEvent,
    ExecutionReport,
    PointResult,
    execute_points,
    run_point,
)
from repro.campaign.grid import BackendEntry, CampaignError, Point, \
    expand_grid
from repro.campaign.store import ResultStore

__all__ = ["Campaign", "CampaignResult", "load_campaign"]


class CampaignResult:
    """Every point's outcome, in deterministic shard order."""

    def __init__(self, campaign: str, results: Sequence[PointResult],
                 skipped: int = 0) -> None:
        self.campaign = campaign
        self.results: List[PointResult] = list(results)
        self.skipped = skipped

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    # ------------------------------------------------------------- selection
    def ok(self) -> List[PointResult]:
        return [result for result in self.results if result.ok]

    def failed(self) -> List[PointResult]:
        return [result for result in self.results
                if result.status == "error"]

    def incompatible(self) -> List[PointResult]:
        return [result for result in self.results
                if result.status == "incompatible"]

    def result_for(self, *, backend: Optional[str] = None,
                   seed: Optional[int] = None,
                   **params) -> Optional[PointResult]:
        """The single point matching the selector, or None.

        ``backend`` matches the point's label; any grid parameter can be
        named.  Ambiguous selectors and unknown parameter names raise, so
        experiment code cannot silently read the wrong cell.
        """
        if self.results:
            known = {name for result in self.results
                     for name, _value in result.point.params}
            unknown = sorted(set(params) - known)
            if unknown:
                raise CampaignError(
                    f"selector names unknown grid parameter(s) "
                    f"{', '.join(unknown)}; this campaign's axes: "
                    f"{', '.join(sorted(known)) or 'none'}")
        matches = []
        for result in self.results:
            point = result.point
            if backend is not None and point.label != backend:
                continue
            if seed is not None and point.seed != seed:
                continue
            cell = point.params_dict()
            if any(cell.get(name) != value
                   for name, value in params.items()):
                continue
            matches.append(result)
        if len(matches) > 1:
            described = "; ".join(match.point.describe() for match in matches)
            raise CampaignError(
                f"selector matches {len(matches)} points ({described}); "
                "name more parameters")
        return matches[0] if matches else None

    def run_for(self, *, backend: Optional[str] = None,
                seed: Optional[int] = None, **params):
        """The matching point's :class:`ScenarioRun`; raises when absent.

        The error carries the point's captured failure (or says the cell
        never ran), so a KeyError-style hunt is never needed.
        """
        result = self.result_for(backend=backend, seed=seed, **params)
        selector = ", ".join(
            [f"backend={backend}"] * (backend is not None)
            + [f"seed={seed}"] * (seed is not None)
            + [f"{name}={value!r}" for name, value in params.items()])
        if result is None:
            raise CampaignError(
                f"campaign {self.campaign!r} has no point for ({selector})")
        if not result.ok or result.run is None:
            raise CampaignError(
                f"campaign {self.campaign!r} point ({selector}) did not "
                f"complete: [{result.status}] {result.error}")
        return result.run

    # ----------------------------------------------------------- aggregation
    def aggregate(self) -> Aggregate:
        return Aggregate(self.results)

    def describe(self) -> str:
        counts: Dict[str, int] = {}
        for result in self.results:
            counts[result.status] = counts.get(result.status, 0) + 1
        parts = [f"{len(self.results)} points"]
        parts += [f"{count} {status}"
                  for status, count in sorted(counts.items())]
        if self.skipped:
            parts.append(f"{self.skipped} resumed from store")
        return f"campaign {self.campaign!r}: " + ", ".join(parts)


class Campaign:
    """Fluent sweep builder over one scenario factory.

    The factory is called once per point with the point's grid parameters
    as keyword arguments (plus ``seed`` when its signature accepts one)
    and returns a :class:`~repro.scenario.builder.Scenario` builder (the
    preferred form — the campaign threads the seed) or a ready
    :class:`~repro.scenario.compiled.CompiledScenario`.
    """

    def __init__(self, name: str) -> None:
        if not name or os.path.sep in name or name in (".", ".."):
            raise CampaignError(
                f"campaign name {name!r} must be a plain directory name")
        self.name = name
        self._factory: Optional[Callable] = None
        self._grid: Dict[str, List[object]] = {}
        self._seeds: List[int] = [0]
        self._backends: List[BackendEntry] = []
        self._until: Optional[float] = None
        self._excludes: List[Callable[[Point], bool]] = []

    # ------------------------------------------------------------ definition
    def scenario(self, factory: Callable) -> "Campaign":
        """The scenario factory executed at every grid point."""
        if not callable(factory):
            raise CampaignError(
                f"scenario() takes a callable factory, got {factory!r}")
        self._factory = factory
        return self

    #: Axis names the aggregate's own report columns already use; allowing
    #: them would silently clobber rows()/summary()/compare() output.
    RESERVED_AXES = frozenset({
        "seed", "backend", "workload", "metric", "value", "status", "error",
        "baseline", "relative", "deviation", "mean", "min", "max", "count"})

    def grid(self, **params: Union[Sequence, object]) -> "Campaign":
        """Add grid axes: each keyword maps to its sequence of values.

        A scalar becomes a single-value axis; repeated calls merge (a
        repeated name replaces its axis).  Declaration order is the shard
        order's nesting: first axis varies slowest.  Axis names the
        aggregate reports under already (:attr:`RESERVED_AXES` — ``seed``,
        ``backend``, ``workload``, ``value``, ...) are rejected.
        """
        reserved = sorted(set(params) & self.RESERVED_AXES)
        if reserved:
            raise CampaignError(
                f"grid axis name(s) {', '.join(reserved)} are reserved "
                "for the aggregate's own columns; rename the parameter(s)")
        for name, values in params.items():
            if isinstance(values, (str, bytes)) or not hasattr(values,
                                                               "__iter__"):
                values = [values]
            values = list(values)
            if not values:
                raise CampaignError(f"grid axis {name!r} has no values")
            self._grid[name] = values
        return self

    def seeds(self, seeds: Union[int, Iterable[int]]) -> "Campaign":
        """``seeds(3)`` means seeds 0..2; an iterable gives them verbatim."""
        if isinstance(seeds, int):
            if seeds < 1:
                raise CampaignError("seeds(n) needs n >= 1")
            self._seeds = list(range(seeds))
        else:
            self._seeds = [int(seed) for seed in seeds]
            if not self._seeds:
                raise CampaignError("seeds() needs at least one seed")
        return self

    def backend(self, name: str, *, alias: Optional[str] = None,
                **options) -> "Campaign":
        """Add one execution target; ``alias`` names this configuration
        (mandatory in effect when the same backend appears twice)."""
        label = alias if alias is not None else name
        self._backends.append(BackendEntry(
            name=name, label=label,
            options=tuple(sorted(options.items()))))
        return self

    def backends(self, *names: str) -> "Campaign":
        """Add several option-free execution targets at once."""
        for name in names:
            self.backend(name)
        return self

    def until(self, duration: Optional[float]) -> "Campaign":
        """Cap every point's run horizon (default: each scenario's own)."""
        self._until = duration
        return self

    def exclude(self, predicate: Callable[[Point], bool]) -> "Campaign":
        """Drop grid cells the sweep should never attempt (the evaluation's
        known N/A corners, e.g. a backend beyond its published scale)."""
        self._excludes.append(predicate)
        return self

    # ------------------------------------------------------------- expansion
    def points(self) -> List[Point]:
        """The deterministic shard-ordered expansion of the grid."""
        if self._factory is None:
            raise CampaignError(
                f"campaign {self.name!r} has no scenario factory; call "
                ".scenario(factory) before expanding or running")
        backends = self._backends or [BackendEntry("kollaps", "kollaps")]
        points = expand_grid(self.name, self._grid, self._seeds, backends,
                             until=self._until)
        if self._excludes:
            points = [point for point in points
                      if not any(predicate(point)
                                 for predicate in self._excludes)]
            points = [replace(point, index=index)
                      for index, point in enumerate(points)]
        return points

    def spec(self) -> Dict[str, object]:
        """The manifest form of this campaign definition."""
        backends = self._backends or [BackendEntry("kollaps", "kollaps")]
        factory = self._factory
        return {"name": self.name,
                "factory": (None if factory is None else
                            f"{getattr(factory, '__module__', '?')}."
                            f"{getattr(factory, '__qualname__', '?')}"),
                "grid": {name: [repr(value) for value in values]
                         for name, values in self._grid.items()},
                "seeds": list(self._seeds),
                "backends": [{"name": entry.name, "label": entry.label,
                              "options": entry.options_dict()}
                             for entry in backends],
                "until": self._until}

    # -------------------------------------------------------------- describe
    def describe(self, points: Optional[List[Point]] = None) -> str:
        """One-line shape summary; pass pre-expanded ``points`` to avoid
        re-expanding (and re-hashing) a large grid."""
        if points is None:
            points = self.points()
        backends = self._backends or [BackendEntry("kollaps", "kollaps")]
        axes = ", ".join(f"{name}×{len(values)}"
                         for name, values in self._grid.items()) or "(none)"
        return (f"campaign {self.name!r}: {len(points)} points — "
                f"grid [{axes}] × {len(self._seeds)} seed(s) × "
                f"{len(backends)} backend(s): "
                + ", ".join(entry.label for entry in backends))

    # ------------------------------------------------------------- execution
    def _store(self, store: Union[None, str, ResultStore]) -> \
            Optional[ResultStore]:
        if store is None or isinstance(store, ResultStore):
            return store
        return ResultStore(os.path.join(str(store), self.name))

    def run(self, *, jobs: int = 1,
            store: Union[None, str, ResultStore] = None,
            resume: bool = True,
            progress: Optional[Callable[[CampaignEvent], None]] = None
            ) -> CampaignResult:
        """Execute the sweep: expand, skip stored points, run the rest.

        ``store`` is a campaigns root directory (the campaign writes under
        ``<store>/<name>/``), a ready :class:`ResultStore`, or None for a
        purely in-memory run.  ``resume=False`` re-executes every point
        (new records supersede old ones in the store) and also drops the
        in-process collapse memo, so a ``--fresh`` run measures cold-path
        costs rather than inheriting cached shortest paths.
        """
        if not resume:
            from repro.core.collapse import clear_collapse_cache
            clear_collapse_cache()
        points = self.points()
        store_obj = self._store(store)
        if store_obj is not None:
            store_obj.write_manifest(self.spec())
        report: ExecutionReport = execute_points(
            self._factory, points, jobs=jobs, store=store_obj,
            resume=resume, until=self._until, progress=progress)
        return CampaignResult(self.name, report.sorted_results(),
                              skipped=report.skipped)

    def run_point(self, point: Point) -> PointResult:
        """Execute one already-expanded point in this process."""
        if self._factory is None:
            raise CampaignError(
                f"campaign {self.name!r} has no scenario factory")
        return run_point(self._factory, point, self._until)

    def load(self, store: Union[str, ResultStore]) -> CampaignResult:
        """This campaign's stored results, without executing anything.

        Points the store has no record for are simply absent from the
        result — ``repro campaign status`` reports them as missing.
        """
        store_obj = self._store(store)
        records = store_obj.load()
        results = []
        for point in self.points():
            record = records.get(point.digest())
            if record is not None:
                results.append(PointResult.from_record(record, point))
        return CampaignResult(self.name, results, skipped=len(results))


# ---------------------------------------------------------------------------
# Loading campaigns from files and experiment ids (the CLI's entry point).
# ---------------------------------------------------------------------------
def load_campaign(source: str) -> Campaign:
    """A campaign from a ``.py`` file exposing ``CAMPAIGN``, or a
    registered experiment id (``fig5``, ``table2``, ``table4``, ...).

    The module is registered in :data:`sys.modules` under a stable name so
    its factory functions survive pickling into worker processes.
    """
    if source.endswith(".py"):
        stem = os.path.splitext(os.path.basename(source))[0]
        module_name = f"repro_campaign_{stem}"
        spec = importlib.util.spec_from_file_location(module_name, source)
        if spec is None or spec.loader is None:
            raise CampaignError(f"cannot import campaign module {source!r}")
        module = importlib.util.module_from_spec(spec)
        sys.modules[module_name] = module
        spec.loader.exec_module(module)
        candidate = getattr(module, "CAMPAIGN", None)
        if candidate is None:
            raise CampaignError(
                f"{source!r} defines no CAMPAIGN (a Campaign or a "
                "zero-argument callable returning one)")
        if callable(candidate) and not isinstance(candidate, Campaign):
            candidate = candidate()
        if not isinstance(candidate, Campaign):
            raise CampaignError(
                f"{source!r}: CAMPAIGN is {type(candidate).__name__}, "
                "expected repro.campaign.Campaign")
        return candidate
    from repro.experiments.base import as_campaign
    try:
        return as_campaign(source)
    except KeyError as error:
        raise CampaignError(error.args[0]) from None
