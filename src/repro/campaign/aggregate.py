"""Aggregation over campaign results: group-by, stats, cross-backend deltas.

Built on the unified results API
(:class:`~repro.scenario.results.ScenarioRun` /
:class:`~repro.scenario.results.Metrics`): every row is one workload's
headline statistic at one grid point, so the same aggregate works whether
the runs are live (serial, in-process) or reconstructed from a
:class:`~repro.campaign.store.ResultStore` / worker process.  Output is
deterministic — rows follow the grid's shard order and floats render with
``repr`` — so a parallel sweep and a serial sweep of the same campaign
produce byte-identical reports.
"""

from __future__ import annotations

import io
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign.executor import PointResult

__all__ = ["Aggregate"]


def _cell(value) -> str:
    """Deterministic text for one cell (repr for floats: round-trippable)."""
    if isinstance(value, float):
        return repr(value)
    return str(value)


class Aggregate:
    """Query surface over a set of :class:`PointResult`\\ s."""

    def __init__(self, results: Sequence[PointResult]) -> None:
        self.results: List[PointResult] = sorted(
            results, key=lambda result: result.point.index)
        names: List[str] = []
        for result in self.results:
            for name, _value in result.point.params:
                if name not in names:
                    names.append(name)
        #: Grid parameter names, in first-seen (declaration) order.
        self.param_names: Tuple[str, ...] = tuple(names)

    # ------------------------------------------------------------------ rows
    def rows(self) -> List[Dict[str, object]]:
        """One row per workload per successful point: params + headline.

        Workloads without a headline statistic (custom specs returning
        non-numeric data) are skipped, matching
        :meth:`ScenarioRun.compare` semantics.
        """
        out: List[Dict[str, object]] = []
        for result in self.results:
            if not result.ok or result.run is None:
                continue
            point = result.point
            base = {name: value for name, value in point.params}
            for key in sorted(result.run.metrics, key=str):
                metrics = result.run.metrics[key]
                if metrics.primary not in metrics.summary:
                    continue
                row = dict(base)
                row.update({"seed": point.seed, "backend": point.label,
                            "workload": str(key), "metric": metrics.primary,
                            "value": metrics.value})
                out.append(row)
        return out

    def failures(self) -> List[Dict[str, object]]:
        """Errored/incompatible points, with their captured message."""
        out = []
        for result in self.results:
            if result.ok:
                continue
            point = result.point
            row = {name: value for name, value in point.params}
            row.update({"seed": point.seed, "backend": point.label,
                        "status": result.status,
                        "error": result.error.splitlines()[0]
                        if result.error else ""})
            out.append(row)
        return out

    # -------------------------------------------------------------- group-by
    def group(self, *names: str) -> Dict[Tuple, List[Dict[str, object]]]:
        """Rows bucketed by the given point attributes/parameters.

        ``names`` may be grid parameter names or the built-ins ``seed``,
        ``backend`` and ``workload``; insertion order follows the shard
        order, so iteration is deterministic.
        """
        valid = set(self.param_names) | {"seed", "backend", "workload"}
        unknown = sorted(set(names) - valid)
        if unknown:
            raise KeyError(
                f"unknown group-by column(s) {', '.join(unknown)}; "
                f"available: {', '.join(sorted(valid))}")
        groups: Dict[Tuple, List[Dict[str, object]]] = {}
        for row in self.rows():
            key = tuple(row[name] for name in names)
            groups.setdefault(key, []).append(row)
        return groups

    # --------------------------------------------------------------- summary
    def summary(self, by: Sequence[str] = ("backend",)
                ) -> List[Dict[str, object]]:
        """Mean/min/max/count of the headline value per group × workload."""
        columns = tuple(by) + ("workload", "metric")
        out: List[Dict[str, object]] = []
        for key, rows in self.group(*columns[:-1]).items():
            values = [row["value"] for row in rows]
            record = dict(zip(columns[:-1], key))
            record["metric"] = rows[0]["metric"]
            record.update({"mean": sum(values) / len(values),
                           "min": min(values), "max": max(values),
                           "count": len(values)})
            out.append(record)
        return out

    # --------------------------------------------------------------- compare
    def compare(self, baseline: str) -> List[Dict[str, object]]:
        """Per-point deviation of every backend from ``baseline``.

        For each (params, seed) cell the baseline run is compared — via
        :meth:`ScenarioRun.compare` — against every other backend's run of
        the same cell; missing baselines or counterparts simply produce no
        row (the sweep's N/A cells).  Runs are canonicalised through their
        serialized form first, so a sweep that mixes live points with
        store/pool-reconstructed ones (whose workload keys are
        stringified) still matches every workload.
        """
        from repro.scenario.results import ScenarioRun
        cells: Dict[Tuple, Dict[str, "ScenarioRun"]] = {}
        for result in self.results:
            if not result.ok or result.run is None:
                continue
            key = (result.point.params, result.point.seed)
            cells.setdefault(key, {})[result.point.label] = \
                ScenarioRun.from_dict(result.run.to_dict())
        out: List[Dict[str, object]] = []
        for (params, seed), per_backend in cells.items():
            base = per_backend.get(baseline)
            if base is None:
                continue
            for label, other in per_backend.items():
                if label == baseline:
                    continue
                comparison = base.compare(other)
                for delta in comparison:
                    row = {name: value for name, value in params}
                    row.update({"seed": seed, "backend": label,
                                "workload": str(delta.key),
                                "metric": delta.metric,
                                "baseline": delta.baseline,
                                "value": delta.other,
                                "relative": delta.relative,
                                "deviation": delta.deviation})
                    out.append(row)
        return out

    # ---------------------------------------------------------------- export
    def _columns(self, rows: List[Dict[str, object]]) -> List[str]:
        columns = [name for name in self.param_names
                   if any(name in row for row in rows)]
        for row in rows:
            for name in row:
                if name not in columns:
                    columns.append(name)
        return columns

    def to_csv(self, rows: Optional[List[Dict[str, object]]] = None) -> str:
        """Deterministic CSV of ``rows`` (default: :meth:`rows`)."""
        rows = self.rows() if rows is None else rows
        if not rows:
            return ""
        columns = self._columns(rows)
        out = io.StringIO()
        out.write(",".join(columns) + "\n")
        for row in rows:
            out.write(",".join(
                _cell(row.get(name, "")).replace(",", ";")
                for name in columns) + "\n")
        return out.getvalue()

    def to_markdown(self, rows: Optional[List[Dict[str, object]]] = None
                    ) -> str:
        """Deterministic GitHub-style table of ``rows`` (default: summary)."""
        rows = self.summary() if rows is None else rows
        if not rows:
            return "(no results)"
        columns = self._columns(rows)
        lines = ["| " + " | ".join(columns) + " |",
                 "|" + "|".join("---" for _name in columns) + "|"]
        for row in rows:
            lines.append("| " + " | ".join(
                _cell(row.get(name, "")) for name in columns) + " |")
        return "\n".join(lines)
