"""The Kollaps core: collapsing, bandwidth sharing, congestion, engine.

This package implements the paper's primary contribution (§3):

* :mod:`repro.core.properties` — end-to-end property composition,
* :mod:`repro.core.collapse` — network collapsing via all-pairs shortest
  paths,
* :mod:`repro.core.sharing` — the RTT-aware min-max bandwidth model with the
  work-conserving maximization step,
* :mod:`repro.core.congestion` — packet-loss injection proportional to
  oversubscription,
* :mod:`repro.core.emucore` / :mod:`repro.core.manager` /
  :mod:`repro.core.engine` — Emulation Cores, Emulation Managers and the
  distributed emulation loop,
* :mod:`repro.core.dynamic` — offline pre-computation of dynamic graphs.

Direct :class:`EmulationEngine` construction keeps working, but new code
should assemble experiments through the unified Scenario API
(:mod:`repro.scenario`) and obtain engines via
``Scenario...compile().engine()`` — the single validated choke point the
CLI, examples and experiment runners all use.
"""

from repro.core.properties import PathProperties, compose_path
from repro.core.collapse import (
    CollapsedPath,
    CollapsedTopology,
    clear_collapse_cache,
    collapse,
    collapse_cache_stats,
    topology_signature,
)
from repro.core.sharing import (
    FlowDemand,
    LinkUsage,
    paper_two_step_shares,
    rtt_aware_max_min,
    set_solver_backend,
    solver_backend,
)
from repro.core.congestion import combine_loss, congestion_loss
from repro.core.dynamic import DynamicTopologyPlan, TopologyState
from repro.core.emucore import EmulationCore
from repro.core.engine import EmulationEngine, EngineConfig
from repro.core.manager import EmulationManager

__all__ = [
    "PathProperties",
    "compose_path",
    "CollapsedPath",
    "CollapsedTopology",
    "collapse",
    "clear_collapse_cache",
    "collapse_cache_stats",
    "topology_signature",
    "FlowDemand",
    "LinkUsage",
    "rtt_aware_max_min",
    "paper_two_step_shares",
    "solver_backend",
    "set_solver_backend",
    "congestion_loss",
    "combine_loss",
    "DynamicTopologyPlan",
    "TopologyState",
    "EmulationEngine",
    "EngineConfig",
    "EmulationManager",
    "EmulationCore",
]
