"""The Emulation Manager: one per physical machine (§3).

Each manager runs the emulation loop for its local containers:

1. clear the state of all local active flows,
2. obtain bandwidth usage by querying each core's TCAL,
3. disseminate the local usage to the other managers (Aeron),
4. compute global bandwidth usage per path and constituent link,
5. enforce bandwidth restrictions (htb) and congestion loss (netem).

Managers never coordinate: each one merges its own samples with the latest
message from every peer and evaluates the RTT-aware min-max model locally.
Because the model and the collapsed topology are deterministic, all managers
converge to the same allocation — the decentralization argument of §3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.collapse import CollapsedTopology
from repro.core.congestion import combine_loss, congestion_loss
from repro.core.emucore import EmulationCore, UsageSample
from repro.core.sharing import FlowDemand, rtt_aware_max_min
from repro.metadata.channels import MediaDriver
from repro.metadata.encoding import FlowRecord, MetadataMessage
from repro.sim import Simulator

__all__ = ["EmulationManager"]

# Remote flow reports older than this many loop periods are discarded
# (their sender stopped reporting, so the flows are gone).
_REMOTE_EXPIRY_PERIODS = 2.5

# A non-saturating flow may grow this much above its measured usage before
# the next loop iteration re-evaluates it (paper: the maximization step
# redistributes capacity *unused* by under-demanding flows).
_GROWTH_HEADROOM = 1.5


@dataclass
class _RemoteReport:
    received_at: float
    flows: Tuple[FlowRecord, ...]


class EmulationManager:
    """Decentralized emulation agent for one machine's containers."""

    def __init__(self, sim: Simulator, machine: str, driver: MediaDriver,
                 manager_index: int, container_indices: Dict[str, int], *,
                 period: float = 0.050,
                 congestion_sensitivity: float = 1.0,
                 update_on_change_only: bool = False,
                 change_tolerance: float = 0.10,
                 keepalive_periods: int = 2) -> None:
        """``update_on_change_only`` enables the §7 future-work optimization:
        a manager republishes only when a flow's rate moved by more than
        ``change_tolerance`` (relative) or the flow set changed, with a
        keepalive every ``keepalive_periods`` so peers' expiry never
        misfires for stable long-lived flows."""
        self.sim = sim
        self.machine = machine
        self.driver = driver
        self.manager_index = manager_index
        self.period = period
        self.congestion_sensitivity = congestion_sensitivity
        self.update_on_change_only = update_on_change_only
        self.change_tolerance = change_tolerance
        self.keepalive_periods = keepalive_periods
        self._last_published: Optional[Tuple[FlowRecord, ...]] = None
        self._loops_since_publish = 0
        self.container_indices = container_indices
        self.index_to_container = {index: name for name, index
                                   in container_indices.items()}
        self.cores: Dict[str, EmulationCore] = {}
        self.collapsed: Optional[CollapsedTopology] = None
        self.capacities: Dict[int, float] = {}
        self._remote: Dict[int, _RemoteReport] = {}
        # Contention state per link id: True while the sharing model is in
        # force; the int counts consecutive quiet loops toward release.
        self._link_contended: Dict[int, bool] = {}
        self._quiet_loops: Dict[int, int] = {}
        self.loops = 0
        self.enforcements = 0
        driver.subscribe(self._on_message)

    # -------------------------------------------------------------- wiring
    def add_core(self, core: EmulationCore) -> None:
        self.cores[core.container] = core

    def install_state(self, collapsed: CollapsedTopology,
                      capacities: Dict[int, float]) -> None:
        """Swap in a new pre-computed topology state (dynamic event)."""
        self.collapsed = collapsed
        self.capacities = capacities

    def _on_message(self, message: MetadataMessage) -> None:
        if message.sender == self.manager_index:
            return
        self._remote[message.sender] = _RemoteReport(self.sim.now,
                                                     message.flows)

    # ----------------------------------------------------------------- loop
    def run_loop_iteration(self) -> None:
        """One full pass of the five-step emulation loop."""
        if self.collapsed is None:
            return
        self.loops += 1
        local_samples = self._poll_local_usage()
        self._disseminate(local_samples)
        global_flows = self._merge_global_view(local_samples)
        self._restore_idle(local_samples)
        if not global_flows:
            return
        allocation, usage_rates = self._compute_shares(global_flows)
        self._enforce(local_samples, global_flows, allocation, usage_rates)

    def _restore_idle(self,
                      local: Dict[Tuple[str, str], UsageSample]) -> None:
        """Reset chains with no active flow to their path properties.

        The sharing model covers active flows only (§3: "only active flows
        require the exchange of metadata"), so a destination that went
        quiet gets its collapsed-path bandwidth and loss back — otherwise a
        previously-throttled chain would still strangle the next burst.
        """
        for container, core in self.cores.items():
            for destination in list(core.tcal.destinations()):
                if (container, destination) in local:
                    continue
                path = self.collapsed.path(container, destination)
                if path is None:
                    continue
                core.restore(destination,
                             bandwidth=path.properties.bandwidth,
                             loss=path.properties.loss)

    # Step 1 + 2.
    def _poll_local_usage(self) -> Dict[Tuple[str, str], UsageSample]:
        samples: Dict[Tuple[str, str], UsageSample] = {}
        for container, core in self.cores.items():
            usage = core.sample_usage(self.period, now=self.sim.now)
            for destination, sample in usage.items():
                samples[(container, destination)] = sample
        return samples

    # Step 3.
    def _disseminate(self, samples: Dict[Tuple[str, str], UsageSample]) -> None:
        records = []
        for (source, destination), sample in samples.items():
            path = self.collapsed.path(source, destination)
            if path is None:
                continue
            records.append(FlowRecord(
                source_index=self.container_indices[source],
                destination_index=self.container_indices[destination],
                # Offered load (carried + back-pressured): peers need the
                # requested bandwidth to evaluate §3's congestion model.
                # Same wire format — only the value's semantics differ.
                used_bandwidth=sample.requested,
                link_ids=path.link_ids,
            ))
        flows = tuple(records)
        if self.update_on_change_only and \
                not self._publication_due(flows):
            self._loops_since_publish += 1
            return
        self._last_published = flows
        self._loops_since_publish = 0
        message = MetadataMessage(sender=self.manager_index, flows=flows)
        # Peers always receive the report (even when empty: it clears their
        # view of our finished flows).
        for machine in self.driver.peers():
            self.driver.publish_to(machine, message)

    def _publication_due(self, flows: Tuple[FlowRecord, ...]) -> bool:
        """Change detection for the update-on-change optimization."""
        if self._loops_since_publish >= self.keepalive_periods:
            return True
        previous = self._last_published
        if previous is None:
            return True
        if len(previous) != len(flows):
            return True
        before = {(record.source_index, record.destination_index):
                  record.used_bandwidth for record in previous}
        for record in flows:
            key = (record.source_index, record.destination_index)
            if key not in before:
                return True
            reference = max(before[key], 1.0)
            if abs(record.used_bandwidth - before[key]) / reference > \
                    self.change_tolerance:
                return True
        return False

    # Step 4 (first half): assemble the global flow view.
    def _merge_global_view(
            self, local: Dict[Tuple[str, str], UsageSample]
    ) -> Dict[Tuple[str, str], FlowRecord]:
        flows: Dict[Tuple[str, str], FlowRecord] = {}
        expiry = self.period * max(_REMOTE_EXPIRY_PERIODS,
                                   self.keepalive_periods + 1.5)
        for sender, report in list(self._remote.items()):
            if self.sim.now - report.received_at > expiry:
                del self._remote[sender]
                continue
            for record in report.flows:
                source = self.index_to_container.get(record.source_index)
                destination = self.index_to_container.get(
                    record.destination_index)
                if source is None or destination is None:
                    continue
                flows[(source, destination)] = record
        for (source, destination), sample in local.items():
            path = self.collapsed.path(source, destination)
            if path is None:
                continue
            flows[(source, destination)] = FlowRecord(
                source_index=self.container_indices[source],
                destination_index=self.container_indices[destination],
                used_bandwidth=sample.requested,
                link_ids=path.link_ids)
        return flows

    # Step 4 (second half): evaluate the sharing model.
    def _compute_shares(self, flows: Dict[Tuple[str, str], FlowRecord]):
        """Two solver passes implement the model of §3 exactly:

        * the *fair-share floor* — every active flow's RTT-aware min-max
          share assuming it wants everything.  A flow is never enforced
          below this, no matter how little it used last period; a short
          or bursty flow must not be ratcheted down by its own duty cycle.
        * the *maximization step* — re-solving with usage-derived demands
          redistributes capacity under-demanding flows leave unused,
          "proportionally to their original shares".

        The enforced share is the maximum of the two: the floor guarantees
        fairness, the redistribution pass grants more when contention is
        only nominal.

        Both passes share one solver structure — same flows, links and
        capacities, only demands differ — so the vectorized backend reuses
        its link×flow membership matrix across them (and across loop
        iterations while the topology epoch holds).  When every estimated
        demand is infinite (all local flows saturate their htb and remote
        flows report saturation), the second pass would be identical to the
        first and is skipped outright.
        """
        demands: List[FlowDemand] = []
        wants_all: List[FlowDemand] = []
        usage_rates: Dict[Tuple[str, str], float] = {}
        for key, record in flows.items():
            source, destination = key
            forward = self.collapsed.path(source, destination)
            if forward is None:
                continue
            backward = self.collapsed.path(destination, source)
            rtt = forward.latency + (backward.latency if backward
                                     else forward.latency)
            usage_rates[key] = record.used_bandwidth
            demands.append(FlowDemand(
                key=key, rtt=rtt, links=record.link_ids,
                demand=self._estimated_demand(key, record),
                path_bandwidth=forward.properties.bandwidth))
            wants_all.append(FlowDemand(
                key=key, rtt=rtt, links=record.link_ids,
                demand=float("inf"),
                path_bandwidth=forward.properties.bandwidth))
        floor = rtt_aware_max_min(wants_all, self.capacities)
        if any(demand.demand != float("inf") for demand in demands):
            boosted = rtt_aware_max_min(demands, self.capacities)
        else:
            boosted = floor
        allocation = {key: max(floor.get(key, 0.0), boosted.get(key, 0.0))
                      for key in usage_rates}
        return allocation, usage_rates

    def _estimated_demand(self, key: Tuple[str, str],
                          record: FlowRecord) -> float:
        """How much this flow *wants*, inferred from what it used.

        A local flow that filled its htb allocation is unconstrained (the
        shaping, not the application, was the limit), so the model should
        grant it its full fair share.  For every other flow — remote flows,
        whose enforcement state we don't see, and local under-demanding
        ones — the demand is the measured usage plus growth headroom, so
        unused capacity is redistributed (the maximization step) while a
        throttled flow can still climb back to its fair share over a few
        loop iterations.
        """
        core = self.cores.get(key[0])
        if core is not None:
            try:
                htb_rate = core.tcal.shaping_for(key[1]).htb.rate
            except KeyError:
                htb_rate = None
            if htb_rate is not None and \
                    record.used_bandwidth >= 0.9 * htb_rate:
                return float("inf")
        return record.used_bandwidth * _GROWTH_HEADROOM

    # Contention hysteresis.  §3: the model "gives the percentage of the
    # maximum bandwidth any flow is allowed to use *at capacity*" — an
    # uncontended path keeps its collapsed maximum.  A link *enters*
    # contention above ENTER x capacity and only *leaves* after usage has
    # stayed below EXIT x capacity for QUIET consecutive loops: enforced
    # flows sit exactly at the sum of their shares, so a single-threshold
    # gate would flap on every sampling wobble, momentarily unthrottle
    # everyone, and then punish the resulting burst with phantom loss.
    _CONTENTION_ENTER = 0.90
    _CONTENTION_EXIT = 0.75
    _CONTENTION_QUIET_LOOPS = 5

    # Step 5.
    def _enforce(self, local: Dict[Tuple[str, str], UsageSample],
                 flows: Dict[Tuple[str, str], FlowRecord],
                 allocation: Dict[Tuple[str, str], float],
                 usage_rates: Dict[Tuple[str, str], float]) -> None:
        # Cumulative measured usage per link across the global view: which
        # links are at capacity (throttle their flows) and which are
        # oversubscribed (additionally inject loss).
        requested: Dict[int, float] = {}
        for key, record in flows.items():
            for link_id in record.link_ids:
                requested[link_id] = requested.get(link_id, 0.0) + \
                    usage_rates.get(key, 0.0)
        contended = self._update_contention(requested)

        for key in local:
            source, destination = key
            share = allocation.get(key)
            if share is None:
                continue
            path = self.collapsed.path(source, destination)
            core = self.cores[source]
            record = flows[key]
            if not any(link_id in contended for link_id in record.link_ids):
                # No link on the path is near capacity: the flow keeps the
                # collapsed path maximum (the model only divides bandwidth
                # between flows *competing* for a saturated link).
                core.restore(destination,
                             bandwidth=path.properties.bandwidth,
                             loss=path.properties.loss)
                self.enforcements += 1
                continue
            loss_components = [path.properties.loss]
            # A 2 % tolerance absorbs measurement quantization: usage is
            # sampled over one loop period, and a flow exactly at capacity
            # must not read as oversubscribed.
            oversubscribed = any(
                requested.get(link_id, 0.0) > self.capacities[link_id] * 1.02
                for link_id in record.link_ids if link_id in self.capacities)
            if oversubscribed:
                # Each flow loses the fraction of its *own* traffic that
                # exceeds its share — "per flow, proportionally to the
                # oversubscribed capacity" (§3).  Flows within their share
                # lose nothing, so a ramping newcomer is never penalized.
                loss_components.append(congestion_loss(
                    usage_rates.get(key, 0.0), share,
                    sensitivity=self.congestion_sensitivity))
            core.enforce(destination, bandwidth=share,
                         loss=combine_loss(*loss_components))
            self.enforcements += 1

    def _update_contention(self, requested: Dict[int, float]) -> set:
        """Advance per-link contention state; returns the contended set."""
        for link_id, capacity in self.capacities.items():
            if capacity == float("inf"):
                continue
            used = requested.get(link_id, 0.0)
            if used > capacity * self._CONTENTION_ENTER:
                self._link_contended[link_id] = True
                self._quiet_loops[link_id] = 0
            elif self._link_contended.get(link_id):
                if used < capacity * self._CONTENTION_EXIT:
                    quiet = self._quiet_loops.get(link_id, 0) + 1
                    if quiet >= self._CONTENTION_QUIET_LOOPS:
                        self._link_contended[link_id] = False
                        self._quiet_loops[link_id] = 0
                    else:
                        self._quiet_loops[link_id] = quiet
                else:
                    self._quiet_loops[link_id] = 0
        return {link_id for link_id, state in self._link_contended.items()
                if state}
