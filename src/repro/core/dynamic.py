"""Offline pre-computation of the dynamic topology sequence (§3).

Computing all-pairs shortest paths online takes milliseconds for small
graphs but seconds for thousands of nodes, which would preclude sub-second
dynamics.  Kollaps therefore pre-computes, before the experiment starts, the
ordered sequence of graph states together with *all* derived metadata: the
collapsed topology and the per-link capacity map for each state.

Pre-computation is incremental through the collapse memo
(:mod:`repro.core.collapse`): an event that only changes link capacities
keeps the previous state's shortest paths and merely re-composes end-to-end
properties, an event that restores an earlier structure (a flap healing) is
a cache hit, and only events that change the routing inputs — latencies,
link ids, nodes — pay for fresh Dijkstra runs.  Links whose flow membership
is unaffected therefore never trigger recomputation, and repeated campaign
points over near-identical graphs share the whole table.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.core.collapse import CollapsedTopology, collapse
from repro.topology.events import EventSchedule
from repro.topology.model import Topology

__all__ = ["TopologyState", "DynamicTopologyPlan"]


@dataclass
class TopologyState:
    """One pre-computed instant of the experiment."""

    time: float
    topology: Topology
    collapsed: CollapsedTopology
    capacities: Dict[int, float]


class DynamicTopologyPlan:
    """The full pre-computed sequence, indexable by simulated time."""

    def __init__(self, base: Topology,
                 schedule: Optional[EventSchedule] = None) -> None:
        schedule = schedule or EventSchedule()
        self.states: List[TopologyState] = []
        trace = telemetry.span("dynamic.precompute")
        with telemetry.Stopwatch() as watch:
            for time, snapshot in schedule.snapshots(base):
                self.states.append(TopologyState(
                    time=time,
                    topology=snapshot,
                    collapsed=collapse(snapshot),
                    capacities={link.link_id: link.properties.bandwidth
                                for link in snapshot.links()},
                ))
        #: Monotonic seconds spent pre-computing every state's collapse —
        #: the cost the paper's offline phase pays to make dynamics cheap.
        self.precompute_seconds = watch.elapsed
        if telemetry.enabled():
            telemetry.metrics.counter("dynamic.precompute_seconds").inc(
                watch.elapsed)
            telemetry.metrics.counter("dynamic.precompute_states").inc(
                len(self.states))
            trace.set(states=len(self.states))
        trace.finish()
        self._times = [state.time for state in self.states]

    def __len__(self) -> int:
        return len(self.states)

    def state_at(self, time: float) -> TopologyState:
        """The state in force at simulated ``time``."""
        index = bisect.bisect_right(self._times, time) - 1
        return self.states[max(0, index)]

    def initial(self) -> TopologyState:
        return self.states[0]

    def change_times(self) -> List[float]:
        """Times (after 0) at which the topology switches state."""
        return self._times[1:]

    def all_containers(self) -> List[str]:
        """Union of container names across every state (stable order)."""
        seen: Dict[str, None] = {}
        for state in self.states:
            for container in state.topology.container_names():
                seen.setdefault(container)
        return list(seen)
