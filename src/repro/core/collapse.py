"""Network collapsing: reduce a full topology to end-to-end virtual links.

This is the paper's first key insight (§1, Figure 1): applications only
observe emergent end-to-end properties, so the emulator can discard router
and switch state entirely.  The collapse computes, for every ordered pair of
containers, the shortest path through the declared bridges and records

* the composed end-to-end properties (:class:`PathProperties`),
* the identifiers of the constituent physical links — these are what the
  bandwidth-sharing model later uses to detect flows competing on a shared
  link even though the topology has been collapsed away.

Shortest paths are computed with Dijkstra's algorithm [38] over link latency
(ties broken by hop count, then lexicographic next-hop so that the collapse
is deterministic across Emulation Managers without coordination — a
requirement for the fully decentralized design).

Memoization
-----------

Campaign grid sweeps re-collapse near-identical graphs constantly: every
point of a bandwidth sweep shares one routing structure, and every dynamic
state that only changes link capacities keeps its shortest paths.  The
module therefore memoizes :func:`collapse` results in a bounded LRU keyed
by a structural topology hash (:func:`topology_signature`):

* **hit** — a structurally identical topology (same nodes, links, ids and
  *all* properties) returns the cached path table directly;
* **incremental** — a topology whose *routing* inputs (nodes, link ids,
  latencies) match a cached entry but whose non-routing properties
  (bandwidth, jitter, loss) differ reuses the cached shortest paths and
  only re-composes the end-to-end properties — no Dijkstra runs;
* **miss** — anything else computes from scratch and populates the cache.

``REPRO_COLLAPSE_CACHE=<n>`` bounds the entry count (default 128, ``0``
disables); :func:`clear_collapse_cache` drops everything (``repro campaign
... --fresh`` calls it).  Telemetry counters ``collapse.memo_hits`` /
``collapse.memo_misses`` / ``collapse.incremental_recomputes`` /
``collapse.memo_invalidations`` expose the cache's behaviour; see
``docs/performance.md``.
"""

from __future__ import annotations

import hashlib
import heapq
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.core.properties import PathProperties, compose_path
from repro.topology.model import Link, Topology, TopologyError

__all__ = ["CollapsedPath", "CollapsedTopology", "collapse",
           "topology_signature", "clear_collapse_cache",
           "collapse_cache_stats", "COLLAPSE_CACHE_ENV_VAR"]

#: Environment variable bounding the memo cache entry count (default 128;
#: ``0`` disables memoization entirely).
COLLAPSE_CACHE_ENV_VAR = "REPRO_COLLAPSE_CACHE"
_DEFAULT_CACHE_CAPACITY = 128


@dataclass(frozen=True)
class CollapsedPath:
    """One virtual end-to-end link between two containers.

    ``properties`` are the composed end-to-end values in SI base units
    (seconds, bits/s, loss probability); ``link_ids`` are the constituent
    physical links in traversal order; ``node_path`` the traversed node
    names.  Instances are immutable and safely shared between memoized
    :class:`CollapsedTopology` views.
    """

    source: str
    destination: str
    properties: PathProperties
    link_ids: Tuple[int, ...]
    node_path: Tuple[str, ...]

    @property
    def latency(self) -> float:
        return self.properties.latency

    @property
    def bandwidth(self) -> float:
        return self.properties.bandwidth


class CollapsedTopology:
    """All-pairs collapsed view of a topology at one instant.

    The path table is immutable once built; memoized lookups hand the same
    table to several ``CollapsedTopology`` wrappers, each referencing the
    live :class:`~repro.topology.model.Topology` it was requested for.
    """

    def __init__(self, topology: Topology,
                 paths: Dict[Tuple[str, str], CollapsedPath]) -> None:
        self.topology = topology
        self._paths = paths

    def path(self, source: str, destination: str) -> Optional[CollapsedPath]:
        """The collapsed path, or ``None`` when unreachable."""
        return self._paths.get((source, destination))

    def require_path(self, source: str, destination: str) -> CollapsedPath:
        path = self.path(source, destination)
        if path is None:
            raise TopologyError(f"no path from {source!r} to {destination!r}")
        return path

    def rtt(self, source: str, destination: str) -> float:
        """Round-trip latency in seconds: forward plus reverse collapsed
        latency."""
        forward = self.require_path(source, destination)
        backward = self.require_path(destination, source)
        return forward.latency + backward.latency

    def paths(self) -> Iterable[CollapsedPath]:
        return self._paths.values()

    def pair_count(self) -> int:
        return len(self._paths)

    def reachable_from(self, source: str) -> List[str]:
        return [dst for (src, dst) in self._paths if src == source]


# ---------------------------------------------------------------------------
# Structural topology hashing.
# ---------------------------------------------------------------------------

def topology_signature(topology: Topology, *,
                       routing_only: bool = False) -> str:
    """A structural hash of ``topology`` (hex digest, 32 chars).

    Two topologies with equal signatures collapse identically: the hash
    covers services (name, replicas), bridges, and every link's endpoints,
    id and properties.  With ``routing_only=True`` only the inputs of the
    shortest-path computation are hashed — nodes, link ids and latencies —
    so two topologies differing only in bandwidth/jitter/loss share a
    routing signature (they have the same paths, with different composed
    properties).  The topology *name* is deliberately excluded: renames
    don't change behaviour.

    Complexity ``O(V log V + E log E)`` (sorting for order independence).
    """
    digest = hashlib.blake2b(digest_size=16)
    for name in sorted(topology.services):
        service = topology.services[name]
        digest.update(f"S{name}*{service.replicas};".encode())
    for name in sorted(topology.bridges):
        digest.update(f"B{name};".encode())
    links = sorted(topology.links(),
                   key=lambda link: (link.source, link.destination))
    for link in links:
        properties = link.properties
        digest.update(f"L{link.source}>{link.destination}#{link.link_id}"
                      f"@{properties.latency!r}".encode())
        if not routing_only:
            digest.update(
                f"|{properties.bandwidth!r},{properties.jitter!r},"
                f"{properties.loss!r},{properties.jitter_distribution},"
                f"{link.network}".encode())
        digest.update(b";")
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# The memo cache.
# ---------------------------------------------------------------------------

@dataclass
class _CacheEntry:
    paths: Dict[Tuple[str, str], CollapsedPath]
    routing_signature: str


_cache_lock = threading.RLock()
_cache: "OrderedDict[tuple, _CacheEntry]" = OrderedDict()
# (routing signature, sources key) -> cache key of an entry sharing that
# routing — the donor for incremental property-only recomputes.
_routing_index: Dict[tuple, tuple] = {}


def _cache_capacity() -> int:
    raw = os.environ.get(COLLAPSE_CACHE_ENV_VAR, "").strip()
    if not raw:
        return _DEFAULT_CACHE_CAPACITY
    try:
        return max(0, int(raw))
    except ValueError:
        return _DEFAULT_CACHE_CAPACITY


def clear_collapse_cache() -> None:
    """Drop every memoized collapse (``campaign --fresh``, tests).

    Counts the dropped entries into ``collapse.memo_invalidations`` when
    telemetry is enabled.
    """
    with _cache_lock:
        dropped = len(_cache)
        _cache.clear()
        _routing_index.clear()
    if dropped and telemetry.enabled():
        telemetry.metrics.counter("collapse.memo_invalidations").inc(dropped)


def collapse_cache_stats() -> Dict[str, int]:
    """Current memo occupancy: ``{"entries": n, "capacity": max}``."""
    with _cache_lock:
        return {"entries": len(_cache), "capacity": _cache_capacity()}


def _cache_store(key: tuple, routing_key: tuple,
                 entry: _CacheEntry) -> None:
    capacity = _cache_capacity()
    if capacity <= 0:
        return
    evicted = 0
    with _cache_lock:
        _cache[key] = entry
        _cache.move_to_end(key)
        _routing_index[routing_key] = key
        while len(_cache) > capacity:
            old_key, _ = _cache.popitem(last=False)
            evicted += 1
            for routing, target in list(_routing_index.items()):
                if target == old_key:
                    del _routing_index[routing]
    if evicted and telemetry.enabled():
        telemetry.metrics.counter("collapse.memo_invalidations").inc(evicted)


def _reproperty(donor: Dict[Tuple[str, str], CollapsedPath],
                topology: Topology) -> Dict[Tuple[str, str], CollapsedPath]:
    """Re-compose end-to-end properties over unchanged shortest paths.

    The donor's routing (link ids, node paths) is valid for ``topology``
    because their routing signatures match; only per-link bandwidth /
    jitter / loss may differ, so one :func:`compose_path` per pair replaces
    a Dijkstra per service.
    """
    by_id = {link.link_id: link.properties for link in topology.links()}
    fresh: Dict[Tuple[str, str], CollapsedPath] = {}
    for pair, path in donor.items():
        fresh[pair] = CollapsedPath(
            source=path.source,
            destination=path.destination,
            properties=compose_path([by_id[link_id]
                                     for link_id in path.link_ids]),
            link_ids=path.link_ids,
            node_path=path.node_path,
        )
    return fresh


# ---------------------------------------------------------------------------
# collapse() — the public entry point.
# ---------------------------------------------------------------------------

def collapse(topology: Topology, *,
             sources: Optional[Sequence[str]] = None,
             memo: bool = True) -> CollapsedTopology:
    """Collapse ``topology`` into end-to-end virtual links.

    ``sources`` restricts the computation to paths originating at the given
    containers — each Emulation Manager only computes the part of the
    topology affecting its local containers (§3), which this parameter
    models.  With the default, all ordered container pairs are computed.

    ``memo=False`` bypasses the module cache entirely (neither read nor
    populated) — used by the precompute ablation and the cold-path
    benchmark, which must measure a genuine from-scratch collapse.

    Determinism: the same topology always yields the same path table —
    Dijkstra ties break on hop count then lexicographic node order, so
    every decentralized manager derives an identical collapse.  Complexity
    is one Dijkstra per *service* (``O((V + E) log V)`` each) plus
    ``O(pairs)`` assembly; memo hits are ``O(signature)`` = ``O(V + E)``,
    incremental reuses ``O(pairs × path length)``.
    """
    if not memo or _cache_capacity() <= 0:
        return _collapse_full(topology, sources)

    recording = telemetry.enabled()
    started = telemetry.clock() if recording else 0.0
    sources_key = tuple(sources) if sources is not None else None
    full_key = (topology_signature(topology), sources_key)
    with _cache_lock:
        entry = _cache.get(full_key)
        if entry is not None:
            _cache.move_to_end(full_key)
    if entry is not None:
        if recording:
            registry = telemetry.metrics
            registry.counter("collapse.memo_hits").inc()
            registry.counter("collapse.memo_seconds").inc(
                telemetry.clock() - started)
        return CollapsedTopology(topology, entry.paths)

    if recording:
        telemetry.metrics.counter("collapse.memo_misses").inc()
    routing_signature = topology_signature(topology, routing_only=True)
    routing_key = (routing_signature, sources_key)
    with _cache_lock:
        donor_key = _routing_index.get(routing_key)
        donor = _cache.get(donor_key) if donor_key is not None else None
    if donor is not None:
        paths = _reproperty(donor.paths, topology)
        _cache_store(full_key, routing_key,
                     _CacheEntry(paths, routing_signature))
        if recording:
            registry = telemetry.metrics
            registry.counter("collapse.incremental_recomputes").inc()
            registry.counter("collapse.incremental_seconds").inc(
                telemetry.clock() - started)
        return CollapsedTopology(topology, paths)

    result = _collapse_full(topology, sources)
    _cache_store(full_key, routing_key,
                 _CacheEntry(result._paths, routing_signature))
    return result


def _collapse_full(topology: Topology,
                   sources: Optional[Sequence[str]]) -> CollapsedTopology:
    """The from-scratch all-pairs collapse (one Dijkstra per service)."""
    recording = telemetry.enabled()
    started = telemetry.clock() if recording else 0.0
    trace = telemetry.span("collapse.all_pairs",
                           containers=len(topology.container_names()))
    graph = _service_graph(topology)
    containers = topology.container_names()
    container_service = {name: name.split(".")[0] for name in containers}
    wanted_sources = list(sources) if sources is not None else containers

    # One Dijkstra per *service* (containers of a service share paths).
    needed_services = sorted({container_service[c] for c in wanted_sources
                              if c in container_service})
    service_paths: Dict[str, Dict[str, List[Link]]] = {
        service: _dijkstra(graph, service) for service in needed_services}

    paths: Dict[Tuple[str, str], CollapsedPath] = {}
    for source in wanted_sources:
        src_service = container_service.get(source)
        if src_service is None:
            continue
        reachable = service_paths[src_service]
        for destination in containers:
            if destination == source:
                continue
            dst_service = container_service[destination]
            if dst_service == src_service:
                links = _intra_service_path(graph, src_service)
                if links is None:
                    continue
            else:
                links = reachable.get(dst_service)
                if links is None:
                    continue
            node_path = (source,) + tuple(
                link.destination for link in links[:-1]) + (destination,)
            paths[(source, destination)] = CollapsedPath(
                source=source,
                destination=destination,
                properties=compose_path([link.properties for link in links]),
                link_ids=tuple(link.link_id for link in links),
                node_path=node_path,
            )
    if recording:
        registry = telemetry.metrics
        registry.counter("collapse.recomputes").inc()
        registry.counter("collapse.pairs").inc(len(paths))
        registry.counter("collapse.seconds").inc(telemetry.clock() - started)
        trace.set(pairs=len(paths), services=len(needed_services))
    trace.finish()
    return CollapsedTopology(topology, paths)


def _service_graph(topology: Topology) -> Dict[str, List[Link]]:
    """Adjacency list over service and bridge names."""
    graph: Dict[str, List[Link]] = {name: [] for name in topology.node_names()}
    for link in topology.links():
        if link.source in graph and link.destination in graph:
            graph[link.source].append(link)
    for edges in graph.values():
        edges.sort(key=lambda link: link.destination)
    return graph


def _dijkstra(graph: Dict[str, List[Link]],
              origin: str) -> Dict[str, List[Link]]:
    """Latency-weighted shortest paths from ``origin`` to every node.

    Ties are broken by hop count and then by the lexicographic order of the
    traversed node names so every Emulation Manager independently derives an
    identical collapse.
    """
    if origin not in graph:
        return {}
    # Priority: (latency, hops, path-of-node-names).
    best: Dict[str, Tuple[float, int]] = {origin: (0.0, 0)}
    chosen: Dict[str, List[Link]] = {origin: []}
    done: set = set()
    queue: List[Tuple[float, int, Tuple[str, ...], str]] = [
        (0.0, 0, (origin,), origin)]
    while queue:
        latency, hops, names, node = heapq.heappop(queue)
        if node in done:
            continue
        done.add(node)
        for link in graph[node]:
            neighbour = link.destination
            if neighbour in done:
                continue
            candidate = (latency + link.properties.latency, hops + 1)
            incumbent = best.get(neighbour)
            if incumbent is None or candidate < incumbent:
                best[neighbour] = candidate
                chosen[neighbour] = chosen[node] + [link]
                heapq.heappush(queue, (candidate[0], candidate[1],
                                       names + (neighbour,), neighbour))
    del chosen[origin]
    return chosen


def _intra_service_path(graph: Dict[str, List[Link]],
                        service: str) -> Optional[List[Link]]:
    """Path between two replicas of the same service.

    Replicas attach to the network through the service's access link, so
    traffic between them traverses that link out to the first bridge and
    back — e.g. two ``sv`` replicas behind switch ``s2`` in Figure 1
    communicate over ``sv -> s2 -> sv``.
    """
    for link in graph.get(service, []):
        reverse = next((back for back in graph.get(link.destination, [])
                        if back.destination == service), None)
        if reverse is not None:
            return [link, reverse]
    return None
