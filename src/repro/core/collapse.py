"""Network collapsing: reduce a full topology to end-to-end virtual links.

This is the paper's first key insight (§1, Figure 1): applications only
observe emergent end-to-end properties, so the emulator can discard router
and switch state entirely.  The collapse computes, for every ordered pair of
containers, the shortest path through the declared bridges and records

* the composed end-to-end properties (:class:`PathProperties`),
* the identifiers of the constituent physical links — these are what the
  bandwidth-sharing model later uses to detect flows competing on a shared
  link even though the topology has been collapsed away.

Shortest paths are computed with Dijkstra's algorithm [38] over link latency
(ties broken by hop count, then lexicographic next-hop so that the collapse
is deterministic across Emulation Managers without coordination — a
requirement for the fully decentralized design).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.core.properties import PathProperties, compose_path
from repro.topology.model import Link, Topology, TopologyError

__all__ = ["CollapsedPath", "CollapsedTopology", "collapse"]


@dataclass(frozen=True)
class CollapsedPath:
    """One virtual end-to-end link between two containers."""

    source: str
    destination: str
    properties: PathProperties
    link_ids: Tuple[int, ...]
    node_path: Tuple[str, ...]

    @property
    def latency(self) -> float:
        return self.properties.latency

    @property
    def bandwidth(self) -> float:
        return self.properties.bandwidth


class CollapsedTopology:
    """All-pairs collapsed view of a topology at one instant."""

    def __init__(self, topology: Topology,
                 paths: Dict[Tuple[str, str], CollapsedPath]) -> None:
        self.topology = topology
        self._paths = paths

    def path(self, source: str, destination: str) -> Optional[CollapsedPath]:
        """The collapsed path, or ``None`` when unreachable."""
        return self._paths.get((source, destination))

    def require_path(self, source: str, destination: str) -> CollapsedPath:
        path = self.path(source, destination)
        if path is None:
            raise TopologyError(f"no path from {source!r} to {destination!r}")
        return path

    def rtt(self, source: str, destination: str) -> float:
        """Round-trip latency: forward plus reverse collapsed latency."""
        forward = self.require_path(source, destination)
        backward = self.require_path(destination, source)
        return forward.latency + backward.latency

    def paths(self) -> Iterable[CollapsedPath]:
        return self._paths.values()

    def pair_count(self) -> int:
        return len(self._paths)

    def reachable_from(self, source: str) -> List[str]:
        return [dst for (src, dst) in self._paths if src == source]


def collapse(topology: Topology, *,
             sources: Optional[Sequence[str]] = None) -> CollapsedTopology:
    """Collapse ``topology`` into end-to-end virtual links.

    ``sources`` restricts the computation to paths originating at the given
    containers — each Emulation Manager only computes the part of the
    topology affecting its local containers (§3), which this parameter
    models.  With the default, all ordered container pairs are computed.
    """
    recording = telemetry.enabled()
    started = telemetry.clock() if recording else 0.0
    trace = telemetry.span("collapse.all_pairs",
                           containers=len(topology.container_names()))
    graph = _service_graph(topology)
    containers = topology.container_names()
    container_service = {name: name.split(".")[0] for name in containers}
    wanted_sources = list(sources) if sources is not None else containers

    # One Dijkstra per *service* (containers of a service share paths).
    needed_services = sorted({container_service[c] for c in wanted_sources
                              if c in container_service})
    service_paths: Dict[str, Dict[str, List[Link]]] = {
        service: _dijkstra(graph, service) for service in needed_services}

    paths: Dict[Tuple[str, str], CollapsedPath] = {}
    for source in wanted_sources:
        src_service = container_service.get(source)
        if src_service is None:
            continue
        reachable = service_paths[src_service]
        for destination in containers:
            if destination == source:
                continue
            dst_service = container_service[destination]
            if dst_service == src_service:
                links = _intra_service_path(graph, src_service)
                if links is None:
                    continue
            else:
                links = reachable.get(dst_service)
                if links is None:
                    continue
            node_path = (source,) + tuple(
                link.destination for link in links[:-1]) + (destination,)
            paths[(source, destination)] = CollapsedPath(
                source=source,
                destination=destination,
                properties=compose_path([link.properties for link in links]),
                link_ids=tuple(link.link_id for link in links),
                node_path=node_path,
            )
    if recording:
        registry = telemetry.metrics
        registry.counter("collapse.recomputes").inc()
        registry.counter("collapse.pairs").inc(len(paths))
        registry.counter("collapse.seconds").inc(telemetry.clock() - started)
        trace.set(pairs=len(paths), services=len(needed_services))
    trace.finish()
    return CollapsedTopology(topology, paths)


def _service_graph(topology: Topology) -> Dict[str, List[Link]]:
    """Adjacency list over service and bridge names."""
    graph: Dict[str, List[Link]] = {name: [] for name in topology.node_names()}
    for link in topology.links():
        if link.source in graph and link.destination in graph:
            graph[link.source].append(link)
    for edges in graph.values():
        edges.sort(key=lambda link: link.destination)
    return graph


def _dijkstra(graph: Dict[str, List[Link]],
              origin: str) -> Dict[str, List[Link]]:
    """Latency-weighted shortest paths from ``origin`` to every node.

    Ties are broken by hop count and then by the lexicographic order of the
    traversed node names so every Emulation Manager independently derives an
    identical collapse.
    """
    if origin not in graph:
        return {}
    # Priority: (latency, hops, path-of-node-names).
    best: Dict[str, Tuple[float, int]] = {origin: (0.0, 0)}
    chosen: Dict[str, List[Link]] = {origin: []}
    done: set = set()
    queue: List[Tuple[float, int, Tuple[str, ...], str]] = [
        (0.0, 0, (origin,), origin)]
    while queue:
        latency, hops, names, node = heapq.heappop(queue)
        if node in done:
            continue
        done.add(node)
        for link in graph[node]:
            neighbour = link.destination
            if neighbour in done:
                continue
            candidate = (latency + link.properties.latency, hops + 1)
            incumbent = best.get(neighbour)
            if incumbent is None or candidate < incumbent:
                best[neighbour] = candidate
                chosen[neighbour] = chosen[node] + [link]
                heapq.heappush(queue, (candidate[0], candidate[1],
                                       names + (neighbour,), neighbour))
    del chosen[origin]
    return chosen


def _intra_service_path(graph: Dict[str, List[Link]],
                        service: str) -> Optional[List[Link]]:
    """Path between two replicas of the same service.

    Replicas attach to the network through the service's access link, so
    traffic between them traverses that link out to the first bridge and
    back — e.g. two ``sv`` replicas behind switch ``s2`` in Figure 1
    communicate over ``sv -> s2 -> sv``.
    """
    for link in graph.get(service, []):
        reverse = next((back for back in graph.get(link.destination, [])
                        if back.destination == service), None)
        if reverse is not None:
            return [link, reverse]
    return None
