"""RTT-aware min-max bandwidth sharing (§3).

The paper models how TCP Reno divides a bottleneck among competing flows:
each long-lived flow's share of a link is inversely proportional to its
round-trip time [Kelly 1997; Massoulié & Roberts 2002; Padhye et al. 2000]::

    Share(f) = ( RTT(f) * Σ_i 1/RTT(f_i) )^-1        (fraction of capacity)

Because a flow can be capped below its share by another link on its path (or
by its application demand), the model adds a *maximization step*: surplus
capacity left by constrained flows is redistributed to the remaining flows
proportionally to their original shares, keeping links work-conserving.

Two solvers are provided:

* :func:`rtt_aware_max_min` — exact RTT-weighted max-min via progressive
  filling.  Running the maximization step to its fixed point is equivalent
  to progressive filling with weights ``1/RTT``; this is the solver the
  emulation engine uses.
* :func:`paper_two_step_shares` — the literal two-pass computation in the
  paper's text (initial share, then one proportional redistribution).  Kept
  for the ablation benchmark; it deviates from the fixed point only when a
  single redistribution pass cannot absorb all surplus.

Shares are enforced *per destination, not per flow* (§3): callers aggregate
all traffic between one container pair into a single :class:`FlowDemand`.

Solver backends
---------------

:func:`rtt_aware_max_min` has two interchangeable implementations:

* **numpy** — each waterfilling round is vectorized min/masking over a
  link×flow membership matrix that is built once per (flow set, link set)
  epoch and reused across solves (the Emulation Manager re-solves the same
  structure every loop period; the fluid integrator every ``dt``).
* **python** — the original dict-based progressive filler, dependency-free.

Selection is automatic (numpy when importable, python otherwise) and can be
forced with ``REPRO_ENGINE=numpy|python`` in the environment or
:func:`set_solver_backend` in code.  In automatic mode, problems under
``_VECTORIZE_MIN_FLOWS`` flows always take the python path — array setup
costs more than the whole scalar solve there, and the emulation loop's
per-pair solves are tiny; an explicit force is honoured at any size.  Both
backends run the same progressive filling and agree within float round-off
(< 1e-9 relative — enforced by ``tests/test_engine_fastpath.py`` and the
benchmark checksum in ``BENCH_engine.json``); see ``docs/performance.md``.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro import telemetry

__all__ = ["FlowDemand", "LinkUsage", "rtt_aware_max_min",
           "paper_two_step_shares", "solver_backend", "set_solver_backend",
           "ENGINE_ENV_VAR"]

_EPSILON = 1e-9

#: Environment variable forcing the solver backend: ``numpy`` or ``python``
#: (anything else, or unset, means auto-detect).
ENGINE_ENV_VAR = "REPRO_ENGINE"

#: Below this flow count, automatic backend selection stays on the python
#: path: the measured crossover is ~8 flows (array construction dominates
#: under it, vectorized rounds win above it).  Forcing numpy explicitly
#: bypasses the threshold.
_VECTORIZE_MIN_FLOWS = 8


@dataclass(frozen=True)
class FlowDemand:
    """One aggregated flow for the sharing model.

    ``key`` identifies the (source, destination) container pair; ``rtt`` is
    the collapsed round-trip latency in **seconds**; ``links`` are the
    identifiers of the physical links the collapsed path traverses;
    ``demand`` is the rate the application currently wants in **bits/s**
    (``inf`` for a saturating bulk flow); ``path_bandwidth`` is the
    collapsed path's narrowest-link capacity in **bits/s**.
    """

    key: Hashable
    rtt: float
    links: Tuple[int, ...]
    demand: float = float("inf")
    path_bandwidth: float = float("inf")

    @property
    def weight(self) -> float:
        """RTT-fairness weight; latency-free paths share equally."""
        return 1.0 / max(self.rtt, 1e-6)


@dataclass
class LinkUsage:
    """Mutable per-link accounting used while solving."""

    capacity: float
    flows: List[FlowDemand] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Backend selection.
# ---------------------------------------------------------------------------

_np = None
_np_probed = False
_forced_backend: Optional[str] = None


def _numpy():
    """The numpy module, or None — probed once per process."""
    global _np, _np_probed
    if not _np_probed:
        _np_probed = True
        try:
            import numpy
            _np = numpy
        except ImportError:
            _np = None
    return _np


def set_solver_backend(name: Optional[str]) -> None:
    """Force the :func:`rtt_aware_max_min` backend from code.

    ``"numpy"`` or ``"python"`` forces that implementation; ``None`` (or
    ``"auto"``) restores the default resolution: the ``REPRO_ENGINE``
    environment variable if set, otherwise numpy when importable.  An
    in-code force takes precedence over the environment.
    """
    global _forced_backend
    if name not in (None, "auto", "numpy", "python"):
        raise ValueError(f"unknown solver backend {name!r} "
                         "(expected numpy, python or None/auto)")
    _forced_backend = None if name in (None, "auto") else name


def solver_backend() -> str:
    """The backend the next :func:`rtt_aware_max_min` call will use.

    Returns ``"numpy"`` or ``"python"``.  Raises :class:`RuntimeError` when
    numpy is explicitly requested (via :func:`set_solver_backend` or
    ``REPRO_ENGINE=numpy``) but not importable — an explicit override must
    not silently degrade.
    """
    choice = _resolved_choice()
    if choice == "python":
        return "python"
    if choice == "numpy":
        if _numpy() is None:
            raise RuntimeError(
                "solver backend forced to numpy (REPRO_ENGINE or "
                "set_solver_backend) but numpy is not importable; install "
                "numpy or select the python backend")
        return "numpy"
    return "numpy" if _numpy() is not None else "python"


def _resolved_choice() -> str:
    """``"numpy"``, ``"python"`` or ``"auto"`` after override resolution."""
    return _forced_backend or \
        os.environ.get(ENGINE_ENV_VAR, "").strip().lower() or "auto"


def _dispatch_backend(flow_count: int) -> str:
    """The backend for one concrete solve of ``flow_count`` flows.

    Same as :func:`solver_backend` except that in automatic mode problems
    below ``_VECTORIZE_MIN_FLOWS`` stay on the python path, where the
    scalar solve beats numpy's array-setup cost.
    """
    backend = solver_backend()
    if (backend == "numpy" and flow_count < _VECTORIZE_MIN_FLOWS
            and _resolved_choice() != "numpy"):
        return "python"
    return backend


# ---------------------------------------------------------------------------
# Membership matrix cache (numpy backend).
#
# The hot callers — the Emulation Manager's loop and the fluid integrator —
# re-solve the *same* (flow set, link set) structure every period with only
# demands changing, so the link×flow matrix is built once per topology epoch
# and reused.  The key deliberately ignores capacity *values* (they become a
# fresh vector each solve) so dynamic bandwidth events don't evict it.
# ---------------------------------------------------------------------------

_MATRIX_CACHE_CAPACITY = 64
_matrix_cache: "OrderedDict[tuple, tuple]" = OrderedDict()
_matrix_lock = threading.Lock()


def clear_matrix_cache() -> None:
    """Drop every cached membership matrix (tests, topology teardown)."""
    with _matrix_lock:
        _matrix_cache.clear()


def _membership(flows: Sequence[FlowDemand],
                capacities: Mapping[int, float]):
    """(link order, float matrix, bool matrix) for this problem structure.

    ``matrix[l, f]`` counts how many times flow ``f`` traverses link ``l``
    (matching the pure-python accounting, which counts one flow per path
    occurrence); links absent from ``capacities`` are unconstrained and
    excluded entirely.
    """
    np = _numpy()
    key = (tuple(flow.links for flow in flows), frozenset(capacities))
    with _matrix_lock:
        entry = _matrix_cache.get(key)
        if entry is not None:
            _matrix_cache.move_to_end(key)
    if entry is not None:
        if telemetry.enabled():
            telemetry.metrics.counter("sharing.matrix_reuses").inc()
        return entry
    rows: Dict[int, int] = {}
    link_order: List[int] = []
    for flow in flows:
        for link_id in flow.links:
            if link_id in capacities and link_id not in rows:
                rows[link_id] = len(link_order)
                link_order.append(link_id)
    matrix = np.zeros((len(link_order), len(flows)), dtype=float)
    for column, flow in enumerate(flows):
        for link_id in flow.links:
            row = rows.get(link_id)
            if row is not None:
                matrix[row, column] += 1.0
    entry = (tuple(link_order), matrix, matrix > 0.0)
    with _matrix_lock:
        _matrix_cache[key] = entry
        while len(_matrix_cache) > _MATRIX_CACHE_CAPACITY:
            _matrix_cache.popitem(last=False)
    if telemetry.enabled():
        telemetry.metrics.counter("sharing.matrix_builds").inc()
    return entry


# ---------------------------------------------------------------------------
# The two rtt_aware_max_min implementations.
# ---------------------------------------------------------------------------

def _index_links(flows: Sequence[FlowDemand],
                 capacities: Mapping[int, float]) -> Dict[int, LinkUsage]:
    links: Dict[int, LinkUsage] = {}
    for flow in flows:
        for link_id in flow.links:
            if link_id not in capacities:
                continue
            usage = links.get(link_id)
            if usage is None:
                usage = links[link_id] = LinkUsage(capacities[link_id])
            usage.flows.append(flow)
    return links


def _python_max_min(flows: Sequence[FlowDemand],
                    capacities: Mapping[int, float]
                    ) -> Tuple[Dict[Hashable, float], int]:
    """The original dict-based progressive filler; returns (allocation,
    waterfilling rounds)."""
    iterations = 0
    links = _index_links(flows, capacities)
    allocation: Dict[Hashable, float] = {flow.key: 0.0 for flow in flows}
    frozen: Dict[Hashable, bool] = {flow.key: False for flow in flows}
    flow_cap = {flow.key: min(flow.demand, flow.path_bandwidth)
                for flow in flows}

    while not all(frozen.values()):
        iterations += 1
        # Smallest time-step at which either a link saturates or a flow
        # reaches its individual cap.
        step = float("inf")
        for usage in links.values():
            active_weight = sum(flow.weight for flow in usage.flows
                                if not frozen[flow.key])
            if active_weight <= _EPSILON:
                continue
            remaining = usage.capacity - sum(
                allocation[flow.key] for flow in usage.flows)
            if remaining <= _EPSILON:
                step = 0.0
                break
            step = min(step, remaining / active_weight)
        for flow in flows:
            if frozen[flow.key]:
                continue
            headroom = flow_cap[flow.key] - allocation[flow.key]
            if headroom <= _EPSILON:
                step = 0.0
                break
            step = min(step, headroom / flow.weight)
        if step == float("inf"):
            # Nothing binds the remaining flows: give each its own cap (an
            # entirely unconstrained flow keeps whatever it has, which can
            # only happen for zero-bandwidth-relevant paths).
            for flow in flows:
                if not frozen[flow.key]:
                    if flow_cap[flow.key] != float("inf"):
                        allocation[flow.key] = flow_cap[flow.key]
                    frozen[flow.key] = True
            break

        for flow in flows:
            if not frozen[flow.key]:
                allocation[flow.key] += flow.weight * step

        # Freeze flows at saturated links or at their own cap.
        for usage in links.values():
            used = sum(allocation[flow.key] for flow in usage.flows)
            if used >= usage.capacity - _EPSILON:
                for flow in usage.flows:
                    frozen[flow.key] = True
        for flow in flows:
            if allocation[flow.key] >= flow_cap[flow.key] - _EPSILON:
                frozen[flow.key] = True
    return allocation, iterations


def _numpy_max_min(flows: Sequence[FlowDemand],
                   capacities: Mapping[int, float]
                   ) -> Tuple[Dict[Hashable, float], int]:
    """Vectorized progressive filling; returns (allocation, rounds).

    Identical waterfilling to :func:`_python_max_min`, expressed as whole-
    array operations over the cached link×flow membership matrix.  The
    saturation tolerance scales with magnitude (``ε·max(capacity, 1)``)
    so rates around 1e8 bits/s — where one double ulp exceeds the absolute
    ε — still freeze in one round; the resulting allocations stay within
    1e-9 relative of the python backend's.
    """
    np = _np
    link_order, matrix, member = _membership(flows, capacities)
    count = len(flows)
    weights = np.fromiter((flow.weight for flow in flows),
                          dtype=float, count=count)
    caps = np.fromiter((min(flow.demand, flow.path_bandwidth)
                        for flow in flows), dtype=float, count=count)
    link_caps = np.fromiter((capacities[link_id] for link_id in link_order),
                            dtype=float, count=len(link_order))
    finite_links = np.isfinite(link_caps)
    link_slack = np.maximum(np.abs(link_caps), 1.0) * _EPSILON
    finite_caps = np.isfinite(caps)
    cap_slack = np.where(finite_caps,
                         np.maximum(np.abs(caps), 1.0) * _EPSILON, 0.0)
    allocation = np.zeros(count)
    frozen = np.zeros(count, dtype=bool)
    # Link usage tracked incrementally: one matmul per round, not two.
    used = np.zeros(len(link_order))
    saturation_floor = link_caps - link_slack
    cap_floor = caps - cap_slack
    iterations = 0
    infinity = float("inf")
    # Every round with a finite step freezes at least one flow, so the
    # guard is never reached in practice; it bounds pathological float
    # behaviour instead of looping forever.
    guard = 4 * count + 64
    while not frozen.all() and iterations < guard:
        iterations += 1
        active_weights = np.where(frozen, 0.0, weights)
        step = infinity
        active_weight = None
        if len(link_order):
            active_weight = matrix @ active_weights
            binding = finite_links & (active_weight > _EPSILON)
            if binding.any():
                remaining = link_caps[binding] - used[binding]
                link_steps = np.where(remaining <= link_slack[binding], 0.0,
                                      remaining / active_weight[binding])
                step = float(link_steps.min())
        headroom = np.where(frozen, infinity, caps - allocation)
        flow_steps = np.where(headroom <= cap_slack, 0.0,
                              headroom / weights)
        step = min(step, float(flow_steps.min()))
        if step == infinity:
            unconstrained = ~frozen & finite_caps
            allocation[unconstrained] = caps[unconstrained]
            break
        if step > 0.0:
            allocation += active_weights * step
            if active_weight is not None:
                used += active_weight * step
        if len(link_order):
            saturated = finite_links & (used >= saturation_floor)
            if saturated.any():
                frozen |= member[saturated].any(axis=0)
        frozen |= allocation >= cap_floor
    return ({flow.key: float(allocation[index])
             for index, flow in enumerate(flows)}, iterations)


def rtt_aware_max_min(flows: Sequence[FlowDemand],
                      capacities: Mapping[int, float]) -> Dict[Hashable, float]:
    """Exact RTT-weighted max-min allocation by progressive filling.

    All flows grow their rate as ``weight * t`` simultaneously; when a link
    saturates, the flows crossing it freeze at their current rate; when a
    flow reaches its demand or path cap it freezes too.  Links with infinite
    capacity never bind.  Returns ``{flow.key: rate}`` in **bits/s**.

    Complexity: at most ``F`` waterfilling rounds (each round freezes at
    least one flow), each ``O(F + Σ path lengths)`` — vectorized on the
    numpy backend, dict loops on the python one (see :func:`solver_backend`
    and ``docs/performance.md``).  The result is deterministic: the same
    flows and capacities produce bit-identical allocations on one backend,
    and the two backends agree within 1e-9 relative — which is why every
    decentralized Emulation Manager converges to the same enforcement
    without coordination (§3).
    """
    if not flows:
        return {}
    recording = telemetry.enabled()
    started = telemetry.clock() if recording else 0.0
    if _dispatch_backend(len(flows)) == "numpy":
        allocation, iterations = _numpy_max_min(flows, capacities)
    else:
        allocation, iterations = _python_max_min(flows, capacities)
    if recording:
        registry = telemetry.metrics
        registry.counter("sharing.solver_calls").inc()
        registry.counter("sharing.solver_iterations").inc(iterations)
        registry.counter("sharing.solver_seconds").inc(
            telemetry.clock() - started)
        registry.counter("sharing.solver_flows").inc(len(flows))
    return allocation


def paper_two_step_shares(flows: Sequence[FlowDemand],
                          capacities: Mapping[int, float]) -> Dict[Hashable, float]:
    """The paper's literal two-step computation, per link.

    Step 1: every flow on a link gets ``capacity * weight / Σ weights``.
    Step 2 (maximization): flows capped below their share (by demand, path
    bandwidth or a smaller share on another link) release their surplus,
    which is redistributed proportionally to the original shares of the
    remaining flows.  The flow's final rate is the minimum across its links.

    Always pure python: this heuristic exists for the sharing ablation
    (``repro.experiments.ablation_sharing``), not for any hot path, so it
    is not worth a vectorized twin.  Units and determinism match
    :func:`rtt_aware_max_min`; complexity is ``O(F·L)`` with exactly two
    passes.
    """
    if not flows:
        return {}
    links = _index_links(flows, capacities)
    flow_cap = {flow.key: min(flow.demand, flow.path_bandwidth)
                for flow in flows}

    initial: Dict[int, Dict[Hashable, float]] = {}
    for link_id, usage in links.items():
        total_weight = sum(flow.weight for flow in usage.flows)
        initial[link_id] = {
            flow.key: usage.capacity * flow.weight / total_weight
            for flow in usage.flows}

    # A flow's provisional rate is its smallest per-link share or its cap.
    provisional: Dict[Hashable, float] = {}
    for flow in flows:
        shares = [initial[link_id][flow.key] for link_id in flow.links
                  if link_id in initial]
        provisional[flow.key] = min([flow_cap[flow.key]] + shares)

    # One maximization pass per link: hand surplus to flows whose
    # provisional rate equals their share on this link (i.e. this link is
    # their bottleneck) proportionally to original shares.  A bonus is
    # additionally capped by the remaining headroom on the flow's *other*
    # links — the redistribution must never oversubscribe a neighbour.
    final = dict(provisional)
    used: Dict[int, float] = {
        link_id: sum(final[flow.key] for flow in usage.flows)
        for link_id, usage in links.items()}
    for link_id, usage in links.items():
        surplus = usage.capacity - used[link_id]
        if surplus <= _EPSILON:
            continue
        bottlenecked = [flow for flow in usage.flows
                        if final[flow.key] >= initial[link_id][flow.key] - _EPSILON
                        and final[flow.key] < flow_cap[flow.key] - _EPSILON]
        weight_sum = sum(initial[link_id][flow.key] for flow in bottlenecked)
        if weight_sum <= _EPSILON:
            continue
        for flow in bottlenecked:
            bonus = surplus * initial[link_id][flow.key] / weight_sum
            bonus = min(bonus, flow_cap[flow.key] - final[flow.key])
            for other in flow.links:
                if other in used and other != link_id:
                    bonus = min(bonus,
                                links[other].capacity - used[other])
            if bonus <= 0.0:
                continue
            final[flow.key] += bonus
            for touched in flow.links:
                if touched in used:
                    used[touched] += bonus
    return final
