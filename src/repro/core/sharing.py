"""RTT-aware min-max bandwidth sharing (§3).

The paper models how TCP Reno divides a bottleneck among competing flows:
each long-lived flow's share of a link is inversely proportional to its
round-trip time [Kelly 1997; Massoulié & Roberts 2002; Padhye et al. 2000]::

    Share(f) = ( RTT(f) * Σ_i 1/RTT(f_i) )^-1        (fraction of capacity)

Because a flow can be capped below its share by another link on its path (or
by its application demand), the model adds a *maximization step*: surplus
capacity left by constrained flows is redistributed to the remaining flows
proportionally to their original shares, keeping links work-conserving.

Two solvers are provided:

* :func:`rtt_aware_max_min` — exact RTT-weighted max-min via progressive
  filling.  Running the maximization step to its fixed point is equivalent
  to progressive filling with weights ``1/RTT``; this is the solver the
  emulation engine uses.
* :func:`paper_two_step_shares` — the literal two-pass computation in the
  paper's text (initial share, then one proportional redistribution).  Kept
  for the ablation benchmark; it deviates from the fixed point only when a
  single redistribution pass cannot absorb all surplus.

Shares are enforced *per destination, not per flow* (§3): callers aggregate
all traffic between one container pair into a single :class:`FlowDemand`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro import telemetry

__all__ = ["FlowDemand", "LinkUsage", "rtt_aware_max_min",
           "paper_two_step_shares"]

_EPSILON = 1e-9


@dataclass(frozen=True)
class FlowDemand:
    """One aggregated flow for the sharing model.

    ``key`` identifies the (source, destination) container pair; ``rtt`` is
    the collapsed round-trip latency; ``links`` are the identifiers of the
    physical links the collapsed path traverses; ``demand`` is the rate the
    application currently wants (``inf`` for a saturating bulk flow);
    ``path_bandwidth`` is the collapsed path's narrowest-link capacity.
    """

    key: Hashable
    rtt: float
    links: Tuple[int, ...]
    demand: float = float("inf")
    path_bandwidth: float = float("inf")

    @property
    def weight(self) -> float:
        """RTT-fairness weight; latency-free paths share equally."""
        return 1.0 / max(self.rtt, 1e-6)


@dataclass
class LinkUsage:
    """Mutable per-link accounting used while solving."""

    capacity: float
    flows: List[FlowDemand] = field(default_factory=list)


def _index_links(flows: Sequence[FlowDemand],
                 capacities: Mapping[int, float]) -> Dict[int, LinkUsage]:
    links: Dict[int, LinkUsage] = {}
    for flow in flows:
        for link_id in flow.links:
            if link_id not in capacities:
                continue
            usage = links.get(link_id)
            if usage is None:
                usage = links[link_id] = LinkUsage(capacities[link_id])
            usage.flows.append(flow)
    return links


def rtt_aware_max_min(flows: Sequence[FlowDemand],
                      capacities: Mapping[int, float]) -> Dict[Hashable, float]:
    """Exact RTT-weighted max-min allocation by progressive filling.

    All flows grow their rate as ``weight * t`` simultaneously; when a link
    saturates, the flows crossing it freeze at their current rate; when a
    flow reaches its demand or path cap it freezes too.  Links with infinite
    capacity never bind.  Returns ``{flow.key: rate}``.
    """
    if not flows:
        return {}
    recording = telemetry.enabled()
    started = telemetry.clock() if recording else 0.0
    iterations = 0
    links = _index_links(flows, capacities)
    allocation: Dict[Hashable, float] = {flow.key: 0.0 for flow in flows}
    frozen: Dict[Hashable, bool] = {flow.key: False for flow in flows}
    flow_cap = {flow.key: min(flow.demand, flow.path_bandwidth)
                for flow in flows}

    while not all(frozen.values()):
        iterations += 1
        # Smallest time-step at which either a link saturates or a flow
        # reaches its individual cap.
        step = float("inf")
        for usage in links.values():
            active_weight = sum(flow.weight for flow in usage.flows
                                if not frozen[flow.key])
            if active_weight <= _EPSILON:
                continue
            remaining = usage.capacity - sum(
                allocation[flow.key] for flow in usage.flows)
            if remaining <= _EPSILON:
                step = 0.0
                break
            step = min(step, remaining / active_weight)
        for flow in flows:
            if frozen[flow.key]:
                continue
            headroom = flow_cap[flow.key] - allocation[flow.key]
            if headroom <= _EPSILON:
                step = 0.0
                break
            step = min(step, headroom / flow.weight)
        if step == float("inf"):
            # Nothing binds the remaining flows: give each its own cap (an
            # entirely unconstrained flow keeps whatever it has, which can
            # only happen for zero-bandwidth-relevant paths).
            for flow in flows:
                if not frozen[flow.key]:
                    if flow_cap[flow.key] != float("inf"):
                        allocation[flow.key] = flow_cap[flow.key]
                    frozen[flow.key] = True
            break

        for flow in flows:
            if not frozen[flow.key]:
                allocation[flow.key] += flow.weight * step

        # Freeze flows at saturated links or at their own cap.
        for usage in links.values():
            used = sum(allocation[flow.key] for flow in usage.flows)
            if used >= usage.capacity - _EPSILON:
                for flow in usage.flows:
                    frozen[flow.key] = True
        for flow in flows:
            if allocation[flow.key] >= flow_cap[flow.key] - _EPSILON:
                frozen[flow.key] = True
    if recording:
        registry = telemetry.metrics
        registry.counter("sharing.solver_calls").inc()
        registry.counter("sharing.solver_iterations").inc(iterations)
        registry.counter("sharing.solver_seconds").inc(
            telemetry.clock() - started)
        registry.counter("sharing.solver_flows").inc(len(flows))
    return allocation


def paper_two_step_shares(flows: Sequence[FlowDemand],
                          capacities: Mapping[int, float]) -> Dict[Hashable, float]:
    """The paper's literal two-step computation, per link.

    Step 1: every flow on a link gets ``capacity * weight / Σ weights``.
    Step 2 (maximization): flows capped below their share (by demand, path
    bandwidth or a smaller share on another link) release their surplus,
    which is redistributed proportionally to the original shares of the
    remaining flows.  The flow's final rate is the minimum across its links.
    """
    if not flows:
        return {}
    links = _index_links(flows, capacities)
    flow_cap = {flow.key: min(flow.demand, flow.path_bandwidth)
                for flow in flows}

    initial: Dict[int, Dict[Hashable, float]] = {}
    for link_id, usage in links.items():
        total_weight = sum(flow.weight for flow in usage.flows)
        initial[link_id] = {
            flow.key: usage.capacity * flow.weight / total_weight
            for flow in usage.flows}

    # A flow's provisional rate is its smallest per-link share or its cap.
    provisional: Dict[Hashable, float] = {}
    for flow in flows:
        shares = [initial[link_id][flow.key] for link_id in flow.links
                  if link_id in initial]
        provisional[flow.key] = min([flow_cap[flow.key]] + shares)

    # One maximization pass per link: hand surplus to flows whose
    # provisional rate equals their share on this link (i.e. this link is
    # their bottleneck) proportionally to original shares.  A bonus is
    # additionally capped by the remaining headroom on the flow's *other*
    # links — the redistribution must never oversubscribe a neighbour.
    final = dict(provisional)
    used: Dict[int, float] = {
        link_id: sum(final[flow.key] for flow in usage.flows)
        for link_id, usage in links.items()}
    for link_id, usage in links.items():
        surplus = usage.capacity - used[link_id]
        if surplus <= _EPSILON:
            continue
        bottlenecked = [flow for flow in usage.flows
                        if final[flow.key] >= initial[link_id][flow.key] - _EPSILON
                        and final[flow.key] < flow_cap[flow.key] - _EPSILON]
        weight_sum = sum(initial[link_id][flow.key] for flow in bottlenecked)
        if weight_sum <= _EPSILON:
            continue
        for flow in bottlenecked:
            bonus = surplus * initial[link_id][flow.key] / weight_sum
            bonus = min(bonus, flow_cap[flow.key] - final[flow.key])
            for other in flow.links:
                if other in used and other != link_id:
                    bonus = min(bonus,
                                links[other].capacity - used[other])
            if bonus <= 0.0:
                continue
            final[flow.key] += bonus
            for touched in flow.links:
                if touched in used:
                    used[touched] += bonus
    return final
