"""End-to-end property composition along a path (§3).

Given a path ``P = {l1, .., ln}`` the emergent end-to-end properties are::

    Latency(P)      = Σ Latency(li)
    Jitter(P)       = sqrt( Σ Jitter(li)^2 )
    Loss(P)         = 1 - Π (1 - Loss(li))
    maxBandwidth(P) = min Bandwidth(li)

Latencies add; jitters add in variance (independent per-hop delay noise);
loss composes as the complement of per-hop delivery probabilities; the
narrowest link caps bandwidth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.topology.model import LinkProperties

__all__ = ["PathProperties", "compose_path"]


@dataclass(frozen=True)
class PathProperties:
    """End-to-end properties of a collapsed path (SI units)."""

    latency: float
    jitter: float
    loss: float
    bandwidth: float
    hops: int

    def merge_serial(self, other: "PathProperties") -> "PathProperties":
        """Compose two path segments traversed one after the other."""
        return PathProperties(
            latency=self.latency + other.latency,
            jitter=math.sqrt(self.jitter ** 2 + other.jitter ** 2),
            loss=1.0 - (1.0 - self.loss) * (1.0 - other.loss),
            bandwidth=min(self.bandwidth, other.bandwidth),
            hops=self.hops + other.hops,
        )


_EMPTY = PathProperties(latency=0.0, jitter=0.0, loss=0.0,
                        bandwidth=float("inf"), hops=0)


def compose_path(links: Sequence[LinkProperties]) -> PathProperties:
    """Collapse a sequence of link properties into end-to-end properties.

    Inputs and outputs are SI base units: latency/jitter in seconds,
    bandwidth in bits/s, loss a probability in [0, 1].  One pass over the
    links (``O(n)``), pure float arithmetic, no rounding — identical input
    sequences produce bit-identical results, which the collapse memo's
    incremental tier relies on (it must reproduce a full recompute
    exactly; see :mod:`repro.core.collapse`).
    """
    latency = 0.0
    jitter_variance = 0.0
    delivery = 1.0
    bandwidth = float("inf")
    for link in links:
        latency += link.latency
        jitter_variance += link.jitter ** 2
        delivery *= 1.0 - link.loss
        bandwidth = min(bandwidth, link.bandwidth)
    if not links:
        return _EMPTY
    return PathProperties(
        latency=latency,
        jitter=math.sqrt(jitter_variance),
        loss=1.0 - delivery,
        bandwidth=bandwidth,
        hops=len(links),
    )
