"""k-shortest-path multipath collapsing (§6 "Multipath routing", §7).

The released Kollaps discards multipath: one shortest path per container
pair.  The paper sketches the planned extension — (i) specify multiple
paths, (ii) collapse with a k-shortest-paths algorithm, (iii) extend the
emulation model.  This module implements (ii) and the model arithmetic of
(iii):

* :func:`k_shortest_paths` — loop-free k-shortest paths by latency (Yen's
  algorithm over the same deterministic Dijkstra the collapse uses),
* :func:`multipath_collapse` — per container pair, up to ``k`` disjoint-ish
  paths with composed properties,
* :class:`MultipathProperties` — the end-to-end view under equal-split
  multipath routing: aggregate bandwidth is the *sum* of per-path
  bottlenecks, latency/jitter follow the per-packet mixture distribution,
  loss is the traffic-weighted mean.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.collapse import CollapsedPath, _dijkstra, _service_graph
from repro.core.properties import PathProperties, compose_path
from repro.topology.model import Link, Topology

__all__ = ["k_shortest_paths", "multipath_collapse", "MultipathProperties"]


@dataclass(frozen=True)
class MultipathProperties:
    """End-to-end properties when traffic splits evenly over ``paths``."""

    paths: Tuple[PathProperties, ...]

    @property
    def bandwidth(self) -> float:
        """Aggregate capacity: each subflow rides its own bottleneck."""
        return sum(path.bandwidth for path in self.paths)

    @property
    def latency(self) -> float:
        """Mean per-packet latency of the equal-split mixture."""
        return sum(path.latency for path in self.paths) / len(self.paths)

    @property
    def jitter(self) -> float:
        """Mixture standard deviation: within-path variance plus the
        between-path spread (packet reordering across unequal paths shows
        up as jitter to the application)."""
        n = len(self.paths)
        mean = self.latency
        within = sum(path.jitter ** 2 for path in self.paths) / n
        between = sum((path.latency - mean) ** 2 for path in self.paths) / n
        return math.sqrt(within + between)

    @property
    def loss(self) -> float:
        return sum(path.loss for path in self.paths) / len(self.paths)


def k_shortest_paths(topology: Topology, source: str, destination: str,
                     k: int) -> List[List[Link]]:
    """Yen's algorithm: up to ``k`` loop-free latency-shortest paths."""
    if k < 1:
        raise ValueError("k must be >= 1")
    graph = _service_graph(topology)
    first = _dijkstra(graph, source).get(destination)
    if first is None:
        return []
    accepted: List[List[Link]] = [first]
    candidates: List[Tuple[float, int, List[Link]]] = []
    counter = 0

    while len(accepted) < k:
        previous = accepted[-1]
        previous_nodes = _nodes_of(source, previous)
        for spur_index in range(len(previous)):
            spur_node = previous_nodes[spur_index]
            root = previous[:spur_index]
            # Remove edges that would recreate an accepted path, and the
            # root's nodes, then search from the spur node.
            banned_edges = set()
            for path in accepted:
                if path[:spur_index] == root and len(path) > spur_index:
                    banned_edges.add(path[spur_index].key)
            banned_nodes = set(previous_nodes[:spur_index])
            pruned = _pruned_graph(graph, banned_edges, banned_nodes)
            spur = _dijkstra(pruned, spur_node).get(destination)
            if spur is None:
                continue
            candidate = root + spur
            if any(candidate == path for path in accepted):
                continue
            latency = sum(link.properties.latency for link in candidate)
            counter += 1
            heapq.heappush(candidates, (latency, counter, candidate))
        if not candidates:
            break
        while candidates:
            _, _, best = heapq.heappop(candidates)
            if best not in accepted:
                accepted.append(best)
                break
        else:
            break
    return accepted[:k]


def _nodes_of(source: str, path: List[Link]) -> List[str]:
    return [source] + [link.destination for link in path]


def _pruned_graph(graph: Dict[str, List[Link]], banned_edges: set,
                  banned_nodes: set) -> Dict[str, List[Link]]:
    pruned: Dict[str, List[Link]] = {}
    for node, links in graph.items():
        if node in banned_nodes:
            pruned[node] = []
            continue
        pruned[node] = [link for link in links
                        if link.key not in banned_edges
                        and link.destination not in banned_nodes]
    return pruned


def multipath_collapse(topology: Topology, source: str, destination: str,
                       k: int = 2) -> Optional[MultipathProperties]:
    """Collapse up to ``k`` paths between two containers into one view."""
    service = source.split(".")[0]
    target = destination.split(".")[0]
    paths = k_shortest_paths(topology, service, target, k)
    if not paths:
        return None
    return MultipathProperties(paths=tuple(
        compose_path([link.properties for link in path]) for path in paths))
