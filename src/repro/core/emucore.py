"""The Emulation Core: one per application container (§3, §4.1).

A core is attached to its container's network namespace.  It owns the
container's TCAL, samples per-destination bandwidth usage each emulation
loop, and applies the enforcement (htb rates, netem loss) its Emulation
Manager computed.  Cores never talk to remote machines directly — the
Emulation Manager aggregates and disseminates on their behalf.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.tc.tcal import Tcal

__all__ = ["EmulationCore", "UsageSample"]

# Flows slower than this are treated as inactive (no metadata, no share).
ACTIVE_FLOW_THRESHOLD_BPS = 1e3


@dataclass(frozen=True)
class UsageSample:
    """One destination's measured usage over the last loop period.

    ``rate`` is the traffic the chain carried; ``refused_rate`` is offered
    load the htb turned away (back-pressure).  Their sum is the flow's
    *requested* bandwidth — §3's congestion model injects loss when the
    requested total on a link exceeds its capacity.
    """

    destination: str
    rate: float          # bits per second over the period
    htb_rate: float      # the rate that was being enforced meanwhile
    refused_rate: float = 0.0

    @property
    def requested(self) -> float:
        """Offered load: carried plus refused."""
        return self.rate + self.refused_rate

    @property
    def saturating(self) -> bool:
        """Whether the application pushed (close to) its whole allocation."""
        return self.rate >= 0.9 * self.htb_rate


class EmulationCore:
    """Monitor + enforcement agent for a single container."""

    def __init__(self, container: str, tcal: Tcal) -> None:
        self.container = container
        self.tcal = tcal
        self.polls = 0
        self._last_poll_time: float = 0.0

    def sample_usage(self, period: float, *,
                     now: float = None) -> Dict[str, UsageSample]:
        """Step (1)+(2) of the loop: clear state, read TCAL usage counters.

        Rates are computed against the *actual* elapsed time since the
        previous poll (like dividing kernel byte-counter deltas by wall
        clock), not the nominal period — otherwise scheduling drift between
        the poller and the traffic would alias into phantom rate spikes.
        """
        self.polls += 1
        if now is None:
            elapsed = period
        else:
            elapsed = max(now - self._last_poll_time, period * 0.1)
            self._last_poll_time = now
        samples: Dict[str, UsageSample] = {}
        refused_bits = self.tcal.poll_refused()
        for destination, bits in self.tcal.poll_usage().items():
            rate = bits / elapsed
            refused_rate = refused_bits.get(destination, 0.0) / elapsed
            # A fully back-pressured flow carries almost nothing but is
            # very much active: judge activity on the offered load.
            if rate + refused_rate < ACTIVE_FLOW_THRESHOLD_BPS:
                continue
            htb_rate = self.tcal.shaping_for(destination).htb.rate
            # The shaper physically caps egress at its rate; a counter
            # reading above it is sampling aliasing (burst credit, poll
            # drift), not traffic, and must not masquerade as
            # oversubscription — that would inject phantom congestion
            # loss into flows sitting exactly at their allocation.
            rate = min(rate, htb_rate)
            samples[destination] = UsageSample(destination, rate, htb_rate,
                                               refused_rate)
        return samples

    def enforce(self, destination: str, *, bandwidth: Optional[float] = None,
                loss: Optional[float] = None) -> None:
        """Step (5): apply the manager's decision through the TCAL.

        The enforced rate never drops below twice the activity threshold:
        a chain throttled beneath the threshold would stop producing usage
        samples, vanish from the model, and stay throttled forever.
        """
        if destination not in self.tcal.destinations():
            return
        if bandwidth is not None:
            self.tcal.set_bandwidth(
                destination, max(bandwidth, 2 * ACTIVE_FLOW_THRESHOLD_BPS))
        if loss is not None:
            self.tcal.set_netem(destination, loss=min(1.0, max(0.0, loss)))

    def restore(self, destination: str, bandwidth: float,
                loss: float) -> None:
        """Reset a chain to its unconstrained collapsed-path properties.

        Applied to destinations with no active flow: the paper's model
        covers *active* flows only, so an idle chain must offer the path's
        full bandwidth to whatever starts next.
        """
        if destination not in self.tcal.destinations():
            return
        self.tcal.set_bandwidth(destination, bandwidth)
        self.tcal.set_netem(destination, loss=loss)
