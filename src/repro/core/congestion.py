"""Congestion-induced packet loss (§3, "Congestion").

Linux's htb qdisc back-pressures senders instead of dropping packets (TCP
Small Queues prevents queue build-up), so loss-sensitive congestion-control
algorithms would never see losses under pure token-bucket shaping.  Kollaps
therefore injects netem packet loss per flow, proportional to how far the
requested bandwidth exceeds the available share.

The model: when the rate a sender currently pushes (``demand``) exceeds the
share it has been allocated (``share``), the excess fraction of its packets
would have been dropped at the emulated bottleneck, so::

    loss = max(0, 1 - share / demand)

scaled by ``sensitivity`` (default 1.0) so that ablations can weaken the
feedback.  The loss is applied on top of the path's intrinsic loss.
"""

from __future__ import annotations

__all__ = ["congestion_loss", "combine_loss"]


def congestion_loss(demand: float, share: float, *,
                    sensitivity: float = 1.0) -> float:
    """Packet-loss probability exposing oversubscription to TCP.

    ``demand`` — the rate the flow is currently trying to send (bits/s);
    ``share`` — the rate the sharing model granted it.  Returns 0 when the
    flow is within its share.
    """
    if demand <= 0 or share >= demand:
        return 0.0
    if share <= 0:
        return min(1.0, sensitivity)
    excess_fraction = 1.0 - share / demand
    return max(0.0, min(1.0, excess_fraction * sensitivity))


def combine_loss(*probabilities: float) -> float:
    """Combine independent loss probabilities (complement product).

    Each argument is a probability in [0, 1] (values outside are clamped);
    the result is again a probability.  Order-independent up to float
    associativity, so callers must pass a deterministic argument order for
    bit-identical results across managers.
    """
    delivery = 1.0
    for probability in probabilities:
        delivery *= 1.0 - min(1.0, max(0.0, probability))
    return 1.0 - delivery
